"""Crash recovery of an in-flight Remus migration (§3.7).

Two scenarios:

1. The migration machinery crashes *before* T_m commits: no transaction was
   diverted, the partial destination copy is dropped, and the migration is
   retried from scratch.
2. It crashes *after* T_m commits: the destination already owns the shard,
   so recovery resolves residual prepared shadow transactions by their
   source outcome and drives the migration to completion.

In both cases the table ends up complete and consistent.

Run with:  python examples/crash_recovery.py
"""

from repro import Cluster, ClusterConfig
from repro.config import CostModel
from repro.migration import RemusMigration
from repro.migration.recovery import crash_migration, recover_migration
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


def build():
    cluster = Cluster(
        ClusterConfig(num_nodes=3, costs=CostModel(snapshot_scan_per_tuple=2e-3))
    )
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(num_tuples=800, num_shards=6, num_clients=4,
                   tuple_size=256, think_time=0.004),
    )
    workload.create()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    return cluster, workload, pool


def scenario(crash_after_tm):
    cluster, workload, pool = build()
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    migration = RemusMigration(cluster, [shard], "node-1", "node-2")
    proc = cluster.spawn(migration.run(), name="migration")
    if crash_after_tm:
        while migration.stats.tm_commit_ts is None and not proc.finished:
            cluster.run(until=cluster.sim.now + 0.02)
    else:
        cluster.run(until=0.6)  # mid snapshot copy
    if not proc.finished:
        proc.interrupt("injected crash")
    cluster.run(until=cluster.sim.now + 0.1)
    residual = crash_migration(migration)
    print(
        "crash injected at t={:.2f}s (T_m committed: {}) with {} residual "
        "prepared shadow(s)".format(
            cluster.sim.now, migration.stats.tm_commit_ts is not None, len(residual)
        )
    )
    recovery = cluster.spawn(recover_migration(cluster, migration, residual))
    cluster.run(until=cluster.sim.now + 30.0)
    outcome = recovery.result()
    pool.stop()
    cluster.run(until=cluster.sim.now + 1.0)
    print("recovery outcome:", outcome)
    print("shard owner now:", cluster.shard_owner(shard))

    if outcome == "rolled_back":
        retry = RemusMigration(cluster, [shard], "node-1", "node-2")
        retry_proc = cluster.spawn(retry.run())
        cluster.run(until=cluster.sim.now + 30.0)
        retry_proc.result()
        print("retried migration completed; owner:", cluster.shard_owner(shard))

    rows = len(cluster.dump_table("ycsb"))
    assert rows == workload.config.num_tuples, rows
    print("table intact after recovery: {} rows\n".format(rows))


def main():
    print("=== crash BEFORE T_m (roll back and retry) ===")
    scenario(crash_after_tm=False)
    print("=== crash AFTER T_m (continue the migration) ===")
    scenario(crash_after_tm=True)


if __name__ == "__main__":
    main()
