"""Cluster consolidation under hybrid workload A, Remus vs lock-and-abort.

Replays a small version of the paper's §4.4.1 scenario: a uniform YCSB
workload plus a paced batch-ingestion client run while one node's shards are
drained to the rest of the cluster. The script prints a Table-2-style
summary and a Figure-6-style YCSB throughput timeline for each approach, so
the qualitative difference — lock-and-abort killing the batch transactions,
Remus touching nothing — is visible directly in the terminal.

Run with:  python examples/hybrid_consolidation.py
"""

from repro.experiments import registry
from repro.experiments.consolidation import ConsolidationConfig
from repro.metrics.report import render_series, render_table


def small_config():
    return ConsolidationConfig(
        num_tuples=4000,
        num_shards=24,
        ycsb_clients=8,
        batch_tuples=3000,
        num_batches=3,
        warmup=2.0,
        max_sim_time=60.0,
    )


def main():
    rows = []
    for approach in ("remus", "lock_and_abort"):
        result = registry.run("hybrid_a", approach=approach, config=small_config())
        rows.append(
            [
                approach,
                "{:.0%}".format(result.abort_ratio),
                "{:.1f}".format(result.extra["ingest_before"] / 1000.0),
                "{:.1f}".format(result.extra["ingest_during"] / 1000.0),
                "{:.2f}s".format(result.downtime_longest),
            ]
        )
        start, end = result.migration_window
        print(
            render_series(
                "\nYCSB throughput with {} (migration {:.1f}s..{:.1f}s)".format(
                    approach, start, end
                ),
                result.throughput,
                unit=" txn/s",
                markers={start: "<", end: ">"},
            )
        )
    print()
    print(
        render_table(
            "Batch ingestion during consolidation (cf. paper Table 2)",
            ["approach", "abort ratio", "ingest before (K/s)", "during (K/s)", "downtime"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
