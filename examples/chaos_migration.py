"""A consolidation plan surviving injected chaos.

A four-node cluster drains node-1 (Remus consolidation) while a contended
counter workload runs. A scripted fault plan then

1. crashes the migration machinery in the middle of a snapshot copy,
2. crashes a destination node (with replica failover), and
3. partitions a pair of nodes for half a second.

The migration supervisor detects each casualty, runs §3.7 crash recovery,
and retries the affected batches; the invariant checker verifies snapshot
isolation (no lost counter updates), single ownership, cache coherence and
the absence of orphaned PREPARED transactions throughout. The recovery
timeline below is reconstructed purely from the cluster's metric marks.

Run with:  python examples/chaos_migration.py
"""

from repro.experiments.chaos import ChaosConfig, run_chaos

FAULT_SPEC = (
    "mcrash:snapshot_copy@0.5; "  # kill the migration mid-copy
    "crash:node-2@0.9+0.4; "      # crash a destination, failover in 0.4s
    "partition:node-1|node-3@1.6+0.5"
)


def main():
    print("injecting faults:\n  " + FAULT_SPEC.replace("; ", "\n  ") + "\n")
    result = run_chaos(ChaosConfig(seed=7, fault_spec=FAULT_SPEC))

    print("fault / recovery timeline (from cluster metrics):")
    interesting = (
        "fault:", "heal:", "migration_crash", "migration_recovered",
        "batch_skipped", "node_failed", "node_recovered",
    )
    for t, name in result.marks:
        if any(name.startswith(prefix) for prefix in interesting):
            print("  {:>7.3f}s  {}".format(t, name))
    print()
    print("supervisor log:")
    for t, description in result.supervisor_events:
        print("  {:>7.3f}s  {}".format(t, description))
    print()

    stats = result.plan_stats
    print("committed counter increments: {}".format(result.committed))
    print("crash recoveries: {}   batch retries: {}   batches skipped: {}".format(
        stats.crash_recoveries, stats.migration_retries, stats.batches_skipped))
    print("invariant violations: {}".format(len(result.violations)))
    print("plan outcome: {} at t={:.3f}s".format(
        "degraded" if result.degraded else "completed", result.finished_at))

    assert result.violations == []
    assert stats.crash_recoveries >= 1
    print("\nall invariants held; the plan self-healed through the faults.")


if __name__ == "__main__":
    main()
