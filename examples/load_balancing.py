"""Hotspot load balancing with Remus (the paper's §4.5 scenario).

A skewed YCSB workload hammers the shards of one node; Remus migrates most
of those hot shards to the other nodes. Throughput rises as the hotspot
spreads, with zero migration-induced aborts and no downtime.

Run with:  python examples/load_balancing.py
"""

from repro.experiments import registry
from repro.experiments.load_balancing import LoadBalancingConfig
from repro.metrics.report import render_series


def main():
    config = LoadBalancingConfig(
        num_tuples=4000,
        num_shards=24,
        ycsb_clients=8,
        warmup=1.5,
        settle=2.0,
        max_sim_time=60.0,
    )
    result = registry.run("load_balancing", approach="remus", config=config)
    start, end = result.migration_window
    print(
        render_series(
            "YCSB throughput during Remus load balancing "
            "(migrations {:.1f}s..{:.1f}s)".format(start, end),
            result.throughput,
            unit=" txn/s",
            markers={start: "<", end: ">"},
        )
    )
    print()
    print("throughput before balancing: {:.0f} txn/s".format(result.extra["tput_before"]))
    print("throughput after balancing:  {:.0f} txn/s".format(result.extra["tput_after"]))
    print("migration-induced aborts:    {}".format(result.extra["migration_aborts"]))
    print("WW-conflict aborts (normal SI): {}".format(result.extra["ww_aborts"]))
    assert result.extra["migration_aborts"] == 0
    assert result.extra["data_intact"]


if __name__ == "__main__":
    main()
