"""Quickstart: build a cluster, run transactions, live-migrate a shard.

Creates a three-node shared-nothing cluster with snapshot isolation, loads a
small key-value table, runs interactive transactions against it, and then
migrates one shard with Remus while a client keeps writing — demonstrating
zero migration-induced aborts and no data loss.

Run with:  python examples/quickstart.py
"""

from repro import Cluster, ClusterConfig
from repro.migration import MigrationPlan, RemusMigration, run_plan
from repro.workloads.client import ClosedLoopClient


def main():
    # 1. A three-node cluster using decentralized timestamps (DTS).
    cluster = Cluster(ClusterConfig(num_nodes=3, timestamp_scheme="dts"))

    # 2. A hash-sharded table, bulk-loaded with 1000 rows.
    cluster.create_table("accounts", num_shards=6, tuple_size=256)
    cluster.bulk_load("accounts", [(k, {"balance": 100}) for k in range(1000)])

    # 3. A transaction through a session: transfer between two accounts.
    session = cluster.session("node-1")

    def transfer():
        txn = yield from session.begin(label="transfer")
        a = yield from session.read(txn, "accounts", 1)
        b = yield from session.read(txn, "accounts", 2)
        yield from session.update(txn, "accounts", 1, {"balance": a["balance"] - 10})
        yield from session.update(txn, "accounts", 2, {"balance": b["balance"] + 10})
        commit_ts = yield from session.commit(txn)
        return commit_ts

    commit_ts = cluster.sim.run_until_complete(cluster.spawn(transfer()))
    print("transfer committed at timestamp", commit_ts)

    # 4. Keep a writer running while Remus migrates a shard out of node-1.
    rng = cluster.sim.rng("writer")

    def writer_body_factory():
        def body(sess, txn):
            key = rng.randint(0, 999)
            row = yield from sess.read(txn, "accounts", key)
            yield from sess.update(txn, "accounts", key, {"balance": row["balance"] + 1})

        return body

    client = ClosedLoopClient(
        cluster, "node-2", writer_body_factory, label="writer", think_time=0.002
    )
    client.start()
    shard = cluster.shards_on_node("node-1", table="accounts")[0]
    plan = MigrationPlan(RemusMigration, [([shard], "node-1", "node-3")])
    migration = cluster.spawn(run_plan(cluster, plan), name="migration")
    cluster.run(until=10.0)
    client.stop()
    cluster.run(until=11.0)

    assert migration.finished
    stats = plan.stats
    print("shard", tuple(shard), "migrated: node-1 -> node-3")
    print("  tuples copied:        ", stats.tuples_copied)
    print("  changes propagated:   ", stats.records_propagated)
    print("  shadow transactions:  ", stats.shadow_txns)
    print("  sync-wait latency avg: {:.3f} ms".format(stats.avg_sync_wait * 1e3))
    print("client txns committed:  ", client.committed)
    print("migration-induced aborts:", cluster.metrics.abort_count(kind="migration"))
    assert cluster.metrics.abort_count(kind="migration") == 0
    assert len(cluster.dump_table("accounts")) == 1000
    print("all 1000 rows intact — zero downtime, zero aborts.")


if __name__ == "__main__":
    main()
