"""TPC-C scale-out with Remus (the paper's §4.6 scenario, small scale).

A five-node cluster runs TPC-C with one overloaded node holding twice as
many warehouses as the others. A sixth node joins and the extra warehouses
— each one eight collocated shards, one per TPC-C table — are live-migrated
to it with Remus. The script prints the throughput timeline: it rises after
the scale-out, with no downtime and no aborted transactions.

Run with:  python examples/tpcc_scale_out.py
"""

from repro.experiments import registry
from repro.experiments.scale_out import ScaleOutConfig
from repro.metrics.report import render_series


def main():
    config = ScaleOutConfig(
        num_warehouses=8,
        warehouses_to_move=2,
        warehouses_per_batch=1,
        districts_per_warehouse=2,
        customers_per_district=10,
        items=20,
        max_sim_time=80.0,
    )
    result = registry.run("scale_out", approach="remus", config=config)
    start, end = result.migration_window
    print(
        render_series(
            "TPC-C throughput during Remus scale-out (migration {:.1f}s..{:.1f}s)".format(
                start, end
            ),
            result.throughput,
            unit=" txn/s",
            markers={start: "<", end: ">"},
        )
    )
    print()
    print("throughput before scale-out: {:.0f} txn/s".format(result.extra["tput_before"]))
    print("throughput after scale-out:  {:.0f} txn/s".format(result.extra["tput_after"]))
    print("warehouses moved:            {}".format(result.extra["warehouses_moved"]))
    print("shards on the new node:      {}".format(result.extra["new_node_shards"]))
    print("migration-induced aborts:    {}".format(result.extra["migration_aborts"]))


if __name__ == "__main__":
    main()
