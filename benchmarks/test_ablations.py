"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper artefacts; they quantify why the design is the way it
is: parallel replay (§3.6), prepare-wait (§2.2), dual execution (vs
stop-and-copy), cache read-through (§3.5.1) and DTS vs GTS (§2.2).
"""

from repro.experiments.ablations import (
    run_cache_read_through_ablation,
    run_counter_correctness,
    run_downtime_ablation,
    run_parallel_replay_ablation,
    run_timestamp_scheme_ablation,
)
from repro.metrics.report import render_table


def test_ablation_parallel_replay(benchmark):
    def run():
        serial = run_parallel_replay_ablation(parallelism=1)
        parallel = run_parallel_replay_ablation(parallelism=18)
        return serial, parallel

    serial, parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Ablation — transaction-level parallel replay (§3.6)",
            ["replay slots", "catch-up+transfer (s)", "avg sync wait (ms)", "applied"],
            [
                [s["parallelism"], "{:.3f}".format(s["duration"]),
                 "{:.3f}".format(s["avg_sync_wait"] * 1e3), s["records_applied"]]
                for s in (serial, parallel)
            ],
        )
    )
    # Parallel replay never loses to serial on sync-wait latency.
    assert parallel["avg_sync_wait"] <= serial["avg_sync_wait"] * 1.1
    assert parallel["duration"] <= serial["duration"] * 1.1


def test_ablation_prepare_wait(benchmark):
    def run():
        safe = run_counter_correctness(prepare_wait=True)
        unsafe = run_counter_correctness(prepare_wait=False)
        return safe, unsafe

    safe, unsafe = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Ablation — the prepare-wait mechanism (§2.2)",
            ["prepare-wait", "committed increments", "final sum", "lost updates"],
            [
                ["on", safe["committed"], safe["final_sum"], safe["lost_updates"]],
                ["off", unsafe["committed"], unsafe["final_sum"], unsafe["lost_updates"]],
            ],
        )
    )
    # With prepare-wait, SI holds exactly: no lost updates, ever.
    assert safe["lost_updates"] == 0
    # Without it, updates are lost (the reader misses prepared writes whose
    # commit timestamp precedes its snapshot).
    assert unsafe["lost_updates"] > 0


def test_ablation_dual_execution_downtime(benchmark):
    from repro.migration import RemusMigration, StopAndCopyMigration

    def run():
        remus = run_downtime_ablation(RemusMigration)
        stop_copy = run_downtime_ablation(StopAndCopyMigration)
        return remus, stop_copy

    remus, stop_copy = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Ablation — dual execution vs stop-and-copy (downtime axis)",
            ["approach", "longest downtime (s)", "total (s)", "migration aborts"],
            [
                ["remus", "{:.3f}".format(remus["downtime_longest"]),
                 "{:.3f}".format(remus["downtime_total"]), remus["migration_aborts"]],
                ["stop_and_copy", "{:.3f}".format(stop_copy["downtime_longest"]),
                 "{:.3f}".format(stop_copy["downtime_total"]),
                 stop_copy["migration_aborts"]],
            ],
        )
    )
    assert remus["downtime_longest"] < 0.2
    assert stop_copy["downtime_longest"] > remus["downtime_longest"]


def test_ablation_cache_read_through(benchmark):
    def run():
        with_rt = run_cache_read_through_ablation(use_read_through=True)
        without_rt = run_cache_read_through_ablation(use_read_through=False)
        return with_rt, without_rt

    with_rt, without_rt = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Ablation — cache read-through during ordered diversion (§3.5.1)",
            ["read-through", "committed", "final sum", "lost", "routing errors"],
            [
                ["on", with_rt["committed"], with_rt["final_sum"],
                 with_rt["lost_updates"], with_rt["routing_errors"]],
                ["off", without_rt["committed"], without_rt["final_sum"],
                 without_rt["lost_updates"], without_rt["routing_errors"]],
            ],
        )
    )
    # With read-through the migration is exactly correct.
    assert with_rt["lost_updates"] == 0 and with_rt["routing_errors"] == 0
    # Without it, the stale-cache window corrupts the workload.
    assert without_rt["lost_updates"] > 0 or without_rt["routing_errors"] > 0


def test_ablation_gts_vs_dts(benchmark):
    def run():
        dts = run_timestamp_scheme_ablation("dts")
        gts = run_timestamp_scheme_ablation("gts")
        return dts, gts

    dts, gts = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Ablation — decentralized (DTS) vs centralized (GTS) timestamps",
            ["scheme", "throughput (txn/s)", "avg latency (ms)"],
            [
                [s["scheme"], "{:.0f}".format(s["throughput"]),
                 "{:.3f}".format(s["avg_latency"] * 1e3)]
                for s in (dts, gts)
            ],
        )
    )
    # DTS outperforms the sequencer (the paper runs everything on DTS).
    assert dts["throughput"] > gts["throughput"]
    assert dts["avg_latency"] < gts["avg_latency"]
