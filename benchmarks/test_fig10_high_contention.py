"""Figure 10: throughput + CPU usage during a hot-shard Remus migration (§4.8).

Shapes from the paper:
- throughput dips during snapshot copying (version chains grow while the
  copy's snapshot pins vacuum; ~26 % in the paper) and recovers afterwards;
- source CPU rises during the copy (+15 %) and stays slightly elevated for
  update propagation (+6 %);
- destination CPU pays a modest amount for parallel replay (+8 %);
- only a handful of WW-conflicts occur during the short dual execution.
"""

from repro.metrics.report import render_series


def test_fig10_hot_shard_migration(benchmark, high_contention_result):
    result = high_contention_result

    def derive():
        return {
            "tput_baseline": result.extra["tput_baseline"],
            "tput_during_copy": result.extra["tput_during_copy"],
            "tput_after": result.extra["tput_after"],
            "cpu_source_delta": result.extra["cpu_source_copy"]
            - result.extra["cpu_source_baseline"],
            "cpu_dest_delta": result.extra["cpu_dest_migration"]
            - result.extra["cpu_dest_baseline"],
            "ww_dual_exec": result.extra["ww_conflicts_dual_exec"],
        }

    summary = benchmark.pedantic(derive, rounds=1, iterations=1)
    start, end = result.migration_window
    print()
    print(
        render_series(
            "Figure 10a — throughput, high-contention YCSB on the migrating "
            "shard (migration {:.1f}s..{:.1f}s)".format(start, end),
            result.throughput,
            unit="/s",
        )
    )
    print(
        render_series(
            "Figure 10b — source node CPU utilisation",
            result.extra["cpu_source"],
        )
    )
    print(
        render_series(
            "Figure 10c — destination node CPU utilisation",
            result.extra["cpu_dest"],
        )
    )
    print("summary:", summary)

    # Throughput dips during the snapshot copy and recovers afterwards.
    assert summary["tput_during_copy"] < 0.9 * summary["tput_baseline"]
    assert summary["tput_after"] > summary["tput_during_copy"]
    # Source CPU rises during the copy; destination pays for replay.
    assert summary["cpu_source_delta"] > 0.02
    assert summary["cpu_dest_delta"] > 0.005
    # Few WW-conflicts between shadow and destination transactions.
    assert summary["ww_dual_exec"] <= 20
    assert result.extra["data_intact"]
