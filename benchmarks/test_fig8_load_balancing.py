"""Figure 8: YCSB throughput during load balancing of hotspot shards (§4.5).

Shapes from the paper:
- Remus, lock-and-abort, wait-and-remaster: throughput increases gradually
  as hot shards spread over the cluster, with only slight variation.
- lock-and-abort records thousands of migration-induced aborts (plus some
  WW-conflicts); Remus and wait-and-remaster record zero.
- Squall drops considerably and fluctuates (pull blocking + shard-lock
  contention on the hot shards).
"""

from conftest import print_figure


def test_fig8_load_balancing_timeline(benchmark, load_balancing_results):
    def derive():
        return {
            approach: {
                "before": result.extra["tput_before"],
                "after": result.extra["tput_after"],
                "migration_aborts": result.extra["migration_aborts"],
            }
            for approach, result in load_balancing_results.items()
        }

    summary = benchmark.pedantic(derive, rounds=1, iterations=1)
    print_figure(
        "Figure 8 — YCSB throughput during load balancing (hotspot shards)",
        load_balancing_results,
    )
    print("summary:", summary)

    remus = load_balancing_results["remus"]
    lock = load_balancing_results["lock_and_abort"]
    remaster = load_balancing_results["wait_and_remaster"]
    squall = load_balancing_results["squall"]

    # Balancing lifts throughput for the push approaches.
    for result in (remus, lock, remaster):
        assert result.extra["tput_after"] > 1.2 * result.extra["tput_before"], (
            result.approach,
            result.extra["tput_before"],
            result.extra["tput_after"],
        )
    # Migration-induced aborts: only lock-and-abort (and possibly Squall).
    assert remus.extra["migration_aborts"] == 0
    assert remaster.extra["migration_aborts"] == 0
    assert lock.extra["migration_aborts"] > 0
    # Squall runs at a much lower absolute level on the hot shards.
    assert squall.extra["tput_before"] < remus.extra["tput_before"]
    # Nobody loses data.
    for result in load_balancing_results.values():
        assert result.extra["data_intact"]
