"""Figure 9: TPC-C throughput during scale-out (§4.6).

Shapes from the paper:
- All approaches end with higher throughput after the scale-out.
- Remus shows much smaller throughput variation during the consecutive
  migrations than lock-and-abort and wait-and-remaster (their ownership
  transfers block/kill the longer TPC-C transactions).
- Squall is absent: the port does not support multi-key range partitioning.
"""

import pytest

from conftest import print_figure


def test_fig9_tpcc_scale_out_timeline(benchmark, scale_out_results):
    def derive():
        return {
            approach: {
                "before": result.extra["tput_before"],
                "after": result.extra["tput_after"],
                "stddev_during": result.extra.get("tput_stddev_during", 0.0),
                "min_during": result.extra.get("tput_min_during", 0.0),
            }
            for approach, result in scale_out_results.items()
        }

    summary = benchmark.pedantic(derive, rounds=1, iterations=1)
    print_figure(
        "Figure 9 — TPC-C throughput during scale-out (5 -> 6 nodes)",
        scale_out_results,
    )
    print("summary:", summary)

    remus = scale_out_results["remus"]
    lock = scale_out_results["lock_and_abort"]
    remaster = scale_out_results["wait_and_remaster"]

    # Throughput rises after scale-out for every approach.
    for result in scale_out_results.values():
        assert result.extra["tput_after"] > result.extra["tput_before"], result.approach
    # Remus: zero migration-induced aborts; lock-and-abort kills transactions.
    assert remus.extra["migration_aborts"] == 0
    assert remaster.extra["migration_aborts"] == 0
    assert lock.extra["migration_aborts"] > 0
    # Remus fluctuates less than both baselines during the migrations.
    remus_cv = remus.extra["tput_stddev_during"] / max(remus.extra["tput_mean_during"], 1e-9)
    lock_cv = lock.extra["tput_stddev_during"] / max(lock.extra["tput_mean_during"], 1e-9)
    remaster_cv = remaster.extra["tput_stddev_during"] / max(
        remaster.extra["tput_mean_during"], 1e-9
    )
    assert remus_cv <= lock_cv * 1.15
    assert remus_cv <= remaster_cv * 1.15
    # ...and its deepest trough is the shallowest.
    assert remus.extra["tput_min_during"] >= remaster.extra["tput_min_during"]


def test_fig9_squall_unsupported():
    from repro.experiments import registry

    with pytest.raises(ValueError, match="does not support approach 'squall'"):
        registry.run("scale_out", approach="squall")
