"""Table 2: batch-insert abort ratio and ingest throughput (hybrid A, §4.4.1).

Paper's rows (K tuples/s, 1 KB tuples):

    |                         | Lock  | Remaster | Squall | Remus |
    | abort ratio             | 97%   | 0%       | 13%    | 0%    |
    | tput during/before      | 1.8/59| 59/59    | 67/80  | 55/59 |

Shapes we assert: lock-and-abort aborts most batch attempts and its ingest
collapses during consolidation; Remus and wait-and-remaster abort none and
stay steady; Squall aborts some but not most.
"""

from repro.metrics.report import render_table


def test_table2_batch_ingest_during_consolidation(benchmark, hybrid_a_results):
    def derive():
        rows = []
        for approach, result in hybrid_a_results.items():
            rows.append(
                [
                    approach,
                    "{:.0%}".format(result.abort_ratio),
                    "{:.2f}".format(result.extra["ingest_during"] / 1000.0),
                    "{:.2f}".format(result.extra["ingest_before"] / 1000.0),
                    result.extra["batch_aborts"],
                    result.extra["batch_committed"],
                ]
            )
        return rows

    rows = benchmark.pedantic(derive, rounds=1, iterations=1)
    print()
    print(
        render_table(
            "Table 2 — batch insert throughput under hybrid workload A "
            "(K tuples/s, simulator scale)",
            [
                "approach",
                "abort ratio (consolidation)",
                "tput during",
                "tput before",
                "aborts",
                "commits",
            ],
            rows,
        )
    )

    remus = hybrid_a_results["remus"]
    lock = hybrid_a_results["lock_and_abort"]
    remaster = hybrid_a_results["wait_and_remaster"]
    squall = hybrid_a_results["squall"]

    # Zero migration-induced aborts for Remus and wait-and-remaster.
    assert remus.abort_ratio == 0.0
    assert remaster.abort_ratio == 0.0
    # Lock-and-abort kills most batch attempts (97 % in the paper).
    assert lock.abort_ratio > 0.5
    # Squall aborts some, but fewer than lock-and-abort.
    assert 0.0 < squall.abort_ratio < lock.abort_ratio
    # Lock-and-abort's ingest collapses during consolidation; Remus holds up.
    assert lock.extra["ingest_during"] < 0.5 * lock.extra["ingest_before"]
    assert remus.extra["ingest_during"] > 0.6 * remus.extra["ingest_before"]
    # No data is lost by anyone.
    for result in hybrid_a_results.values():
        assert result.extra["data_intact"]
