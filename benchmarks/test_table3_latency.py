"""Table 3: average latency increase caused by Remus vs lock-and-abort (§4.7).

Paper's rows (ms):

    | workload       | Remus | lock-and-abort | txn latency |
    | hybrid A       | 1.9   | 27             | 2.1         |
    | hybrid B       | 1.7   | 33             | 2.1         |
    | load balancing | 6.6   | 51             | 2.8         |
    | scale-out      | 4.1   | 94             | 4-15        |

Shape: Remus' latency increase stays within the same order of magnitude as
the baseline transaction latency; lock-and-abort's is roughly an order of
magnitude larger than Remus' (blocked writers + replay of final updates +
the 2PC shard-map update).

The scenario executions are shared with the figure benchmarks via the
session cache, so this target only derives the table.
"""

from repro.metrics.report import render_table

_SCENARIOS = (
    ("hybrid_a", "hybrid_a_results"),
    ("hybrid_b", "hybrid_b_results"),
    ("load_balancing", "load_balancing_results"),
    ("scale_out", "scale_out_results"),
)


def test_table3_latency_increase(
    benchmark,
    hybrid_a_results,
    hybrid_b_results,
    load_balancing_results,
    scale_out_results,
):
    all_results = {
        "hybrid_a": hybrid_a_results,
        "hybrid_b": hybrid_b_results,
        "load_balancing": load_balancing_results,
        "scale_out": scale_out_results,
    }

    def derive():
        table = {}
        for scenario, results in all_results.items():
            table[scenario] = {
                "remus": results["remus"].latency_increase,
                "lock_and_abort": results["lock_and_abort"].latency_increase,
                "baseline": results["remus"].avg_latency_before,
            }
        return table

    table = benchmark.pedantic(derive, rounds=1, iterations=1)
    rows = [
        [
            scenario,
            "{:.3f}".format(row["remus"] * 1e3),
            "{:.3f}".format(row["lock_and_abort"] * 1e3),
            "{:.3f}".format(row["baseline"] * 1e3),
        ]
        for scenario, row in table.items()
    ]
    print()
    print(
        render_table(
            "Table 3 — average latency increase (ms) during migration",
            ["workload", "Remus", "lock-and-abort", "txn latency"],
            rows,
        )
    )

    for scenario, row in table.items():
        # Remus' increase stays within ~the baseline latency's order of
        # magnitude (the paper: 1.7-6.6 ms against 2.1-2.8 ms baselines).
        assert row["remus"] <= 5 * max(row["baseline"], 1e-4), scenario
        # lock-and-abort hurts at least as much as Remus everywhere, and
        # clearly more in at least one scenario.
    assert any(
        row["lock_and_abort"] > 2 * row["remus"] + 1e-4 for row in table.values()
    )
