"""Figure 7: YCSB throughput timeline during consolidation, hybrid B (§4.4.2).

Shapes from the paper:
- Remus and lock-and-abort: marginal impact while the analytical transaction
  runs (it is read-only, so lock-and-abort kills nothing).
- wait-and-remaster: throughput drops to zero from consolidation start until
  the analytical transaction completes (ownership transfer waits for it).
- Squall: YCSB at zero while the analytical transaction holds every shard
  lock; fluctuation afterwards from migration pulls.
- The analytical duplicate check finds a consistent database throughout.
"""

from conftest import print_figure


def test_fig7_ycsb_timeline_hybrid_b(benchmark, hybrid_b_results):
    def derive():
        return {
            approach: {
                "downtime": result.downtime_longest,
                "analytical_window": result.workload_window,
                "duplicates": result.extra["duplicates"],
            }
            for approach, result in hybrid_b_results.items()
        }

    summary = benchmark.pedantic(derive, rounds=1, iterations=1)
    print_figure(
        "Figure 7 — YCSB throughput under hybrid workload B during consolidation",
        hybrid_b_results,
    )
    print("summary:", summary)

    remus = hybrid_b_results["remus"]
    lock = hybrid_b_results["lock_and_abort"]
    remaster = hybrid_b_results["wait_and_remaster"]
    squall = hybrid_b_results["squall"]

    # Remus / lock-and-abort: marginal impact, no downtime.
    assert remus.downtime_longest == 0.0
    assert remus.avg_throughput_during > 0.9 * remus.avg_throughput_before
    assert lock.downtime_longest < 1.0
    # Wait-and-remaster: blocked until the analytical txn completes.
    assert remaster.downtime_longest > 2.0
    analytical_end = remaster.workload_window[1]
    migration_start = remaster.migration_window[0]
    # The zero-throughput stretch spans from migration start toward the
    # analytical completion.
    assert analytical_end > migration_start
    # Squall: drastically lower YCSB while the analytical txn holds locks.
    assert squall.avg_throughput_during < 0.5 * remus.avg_throughput_during
    # Consistency: the duplicate-primary-key check passes for everyone.
    for result in hybrid_b_results.values():
        assert result.extra["duplicates"] == 0
        assert result.extra["data_intact"]
