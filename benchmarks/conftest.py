"""Shared machinery for the benchmark suite.

Each benchmark module regenerates one table or figure from the paper's
evaluation (§4). Several artefacts derive from the same scenario run (e.g.
Table 1, Table 2 and Figure 6 all come from hybrid-A consolidation), so the
scenario executions are cached per session: the first benchmark that needs a
scenario pays for it, the others reuse the results.

Absolute numbers are simulator-scale; the assertions check the paper's
*qualitative shapes* — who aborts, who has downtime, who stays flat.
"""

import pytest

from repro.experiments.common import APPROACH_ORDER

_cache = {}


def cached(key, factory):
    if key not in _cache:
        _cache[key] = factory()
    return _cache[key]


@pytest.fixture(scope="session")
def hybrid_a_results():
    from repro.experiments import registry

    def factory():
        return {a: registry.run("hybrid_a", approach=a) for a in APPROACH_ORDER}

    return cached("hybrid_a", factory)


@pytest.fixture(scope="session")
def hybrid_b_results():
    from repro.experiments import registry

    def factory():
        return {a: registry.run("hybrid_b", approach=a) for a in APPROACH_ORDER}

    return cached("hybrid_b", factory)


@pytest.fixture(scope="session")
def load_balancing_results():
    from repro.experiments import registry

    def factory():
        return {
            a: registry.run("load_balancing", approach=a) for a in APPROACH_ORDER
        }

    return cached("load_balancing", factory)


@pytest.fixture(scope="session")
def scale_out_results():
    from repro.experiments import registry

    def factory():
        return {
            a: registry.run("scale_out", approach=a)
            for a in ("remus", "lock_and_abort", "wait_and_remaster")
        }

    return cached("scale_out", factory)


@pytest.fixture(scope="session")
def high_contention_result():
    from repro.experiments import registry

    return cached(
        "high_contention", lambda: registry.run("high_contention", approach="remus")
    )


def print_figure(title, results, markers_from=None):
    """Render one timeline per approach under a shared title."""
    from repro.metrics.report import render_series

    lines = ["", "=" * 72, title, "=" * 72]
    for approach, result in results.items():
        start, end = result.migration_window
        markers = {}
        if start is not None:
            markers[start] = "<mig"
        if end is not None:
            markers[end] = "mig>"
        lines.append(
            render_series(
                "-- {} --".format(approach), result.throughput, unit="/s", markers=markers
            )
        )
    print("\n".join(lines))
