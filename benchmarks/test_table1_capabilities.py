"""Table 1: the qualitative capability matrix, derived from measured runs.

The paper's Table 1 compares the approaches on downtime, transaction aborts,
OLTP and batch throughput drop, and concurrency-control basis. Instead of
restating the paper, we *derive* each cell from the measured hybrid-A
consolidation runs (shared with Table 2 / Figure 6).

Paper's expectations:

    |                  | Lock | Remaster | Squall  | Remus |
    | downtime         | Yes  | Yes*     | No/Yes† | No    |
    | txn abort        | Yes  | No       | Yes     | No    |
    | OLTP tput drop   | Low  | High w/ long txns | High | Low |
    | batch tput drop  | High | Low      | Median  | Low   |

    * remaster's downtime materialises with long transactions (hybrid A).
    † Squall has no transfer downtime but its shard locks stall OLTP.
"""

from repro.experiments.capability import CC_BASIS, classify
from repro.metrics.report import render_table


def test_table1_capability_matrix(benchmark, hybrid_a_results):
    def derive():
        return {a: classify(r) for a, r in hybrid_a_results.items()}

    matrix = benchmark.pedantic(derive, rounds=1, iterations=1)
    rows = [
        [
            approach,
            row["downtime"],
            row["txn_abort"],
            row["oltp_drop"],
            row["batch_drop"],
            row["cc"],
        ]
        for approach, row in matrix.items()
    ]
    print()
    print(
        render_table(
            "Table 1 — capability matrix derived from measured hybrid-A runs",
            ["approach", "downtime", "txn abort", "OLTP drop", "batch drop", "CC"],
            rows,
        )
    )

    assert matrix["remus"]["downtime"] == "No"
    assert matrix["remus"]["txn_abort"] == "No"
    assert matrix["remus"]["oltp_drop"] == "Low"
    assert matrix["remus"]["batch_drop"] == "Low"
    assert matrix["lock_and_abort"]["txn_abort"] == "Yes"
    assert matrix["lock_and_abort"]["batch_drop"] == "High"
    assert matrix["wait_and_remaster"]["txn_abort"] == "No"
    # Under hybrid A (long batch txns), wait-and-remaster shows downtime.
    assert matrix["wait_and_remaster"]["downtime"] == "Yes"
    assert matrix["squall"]["txn_abort"] == "Yes"
    assert CC_BASIS["squall"] == "Partition Lock"
