"""Figure 6: YCSB throughput timeline during consolidation, hybrid A (§4.4.1).

Shapes from the paper:
- (a) Remus: slight variation only; no downtime.
- (b) wait-and-remaster: sharp drops — down to zero — while the batch
  transactions run (each migration waits for them).
- (c) Squall: YCSB near zero while batch inserts hold all shard locks, and a
  much lower absolute level throughout (shard-lock concurrency control).
- lock-and-abort: slight variation (it kills the batches instead).
"""

from conftest import print_figure


def test_fig6_ycsb_timeline_hybrid_a(benchmark, hybrid_a_results):
    def derive():
        return {
            approach: {
                "downtime": result.downtime_longest,
                "before": result.avg_throughput_before,
                "during": result.avg_throughput_during,
            }
            for approach, result in hybrid_a_results.items()
        }

    summary = benchmark.pedantic(derive, rounds=1, iterations=1)
    print_figure(
        "Figure 6 — YCSB throughput under hybrid workload A during consolidation",
        hybrid_a_results,
    )
    print("summary:", summary)

    remus = hybrid_a_results["remus"]
    lock = hybrid_a_results["lock_and_abort"]
    remaster = hybrid_a_results["wait_and_remaster"]
    squall = hybrid_a_results["squall"]

    # Remus and lock-and-abort: no downtime, marginal throughput variation.
    assert remus.downtime_longest == 0.0
    assert remus.avg_throughput_during > 0.9 * remus.avg_throughput_before
    assert lock.downtime_longest < 1.0
    assert lock.avg_throughput_during > 0.8 * lock.avg_throughput_before
    # Wait-and-remaster: zero-throughput troughs while batches run.
    assert remaster.downtime_longest > 1.0
    assert remaster.avg_throughput_during < 0.8 * remaster.avg_throughput_before
    # Squall: much lower absolute YCSB level (shard locks + batch blocking).
    assert squall.avg_throughput_before < 0.3 * remus.avg_throughput_before
