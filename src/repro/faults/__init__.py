"""Deterministic fault injection (the chaos harness).

Faults are scheduled on the *simulated* clock from a declarative
:class:`~repro.faults.plan.FaultPlan` — parsed from a compact spec string or
generated from a seeded RNG stream — and injected by a
:class:`~repro.faults.nemesis.Nemesis` process. Because every fault fires at
a deterministic virtual time, a chaos run is exactly replayable: same seed,
same fault schedule, same event timeline.

:class:`~repro.faults.invariants.InvariantChecker` rides along and
continuously asserts the safety properties that must hold *through* faults
and recovery: a single owner per shard, shard-map replica/cache coherence,
no orphaned PREPARED transactions, and (via its final check) snapshot
isolation's no-lost-updates guarantee.
"""

from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.nemesis import Nemesis
from repro.faults.plan import Fault, FaultPlan

__all__ = [
    "Fault",
    "FaultPlan",
    "InvariantChecker",
    "InvariantViolation",
    "Nemesis",
]
