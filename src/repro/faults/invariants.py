"""Continuous safety checking under fault injection.

The checker is a background process that inspects cluster state every
``interval`` simulated seconds and records violations of the invariants that
must survive any combination of faults and recoveries:

* **single owner** — every shard has exactly one live owning node, and the
  latest committed shard-map replica rows agree with it;
* **cache coherence** — no coordinator cache entry claims an ownership
  version *newer* than the authoritative shard map (stale-but-older entries
  are legal by design: §3.5.1's read-through + T_m commit-timestamp ordering
  makes them safe);
* **no orphaned PREPARED** — every PREPARED CLOG entry is referenced by a
  live transaction, a residual shadow awaiting resolution, or gets resolved
  within a grace period (2PC decisions may legitimately be in flight across
  a partition);
* **no lost updates** (snapshot isolation) — checked at the end against a
  counter workload: the committed counter sum must equal the number of
  committed increments (:meth:`final_check`).

Transient in-flight states are exempted with a *suspect/confirm* scheme: a
condition only becomes a violation after it persists for ``grace`` seconds,
and checks that migrations legitimately perturb are skipped while the
supervisor reports a migration or recovery in flight.
"""

from repro.cluster.shardmap import BOOTSTRAP_XID, SHARDMAP_SHARD
from repro.storage.clog import TxnStatus


class InvariantViolation(AssertionError):
    """Raised by :meth:`InvariantChecker.assert_ok`."""


class InvariantChecker:
    """Background safety checker."""

    def __init__(self, cluster, supervisor=None, interval=0.25, grace=2.0):
        self.cluster = cluster
        self.sim = cluster.sim
        self.supervisor = supervisor
        self.interval = interval
        self.grace = grace
        self.violations = []  # (time, description)
        self.checks_run = 0
        self._suspects = {}  # suspect key -> first time seen

    # ------------------------------------------------------------------
    def run(self):
        """Generator: check forever (detached background process)."""
        while True:
            yield self.interval
            self.check_once()

    def check_once(self):
        self.checks_run += 1
        self._check_single_owner()
        self._check_cache_coherence()
        self._check_prepared_orphans()
        self._check_replication()

    def assert_ok(self):
        if self.violations:
            lines = "\n".join(
                "  t={:.3f}: {}".format(t, d) for t, d in self.violations
            )
            raise InvariantViolation(
                "{} invariant violation(s):\n{}".format(len(self.violations), lines)
            )

    def final_check(self, table, expected_sum, field="n"):
        """No-lost-updates: committed state of ``table`` must sum to the
        number of committed increments (counter workload)."""
        total = sum(row[field] for row in self.cluster.dump_table(table).values())
        if total != expected_sum:
            self._violate(
                "lost updates on {!r}: committed sum {} != {} committed increments".format(
                    table, total, expected_sum
                )
            )
        self.assert_ok()

    def final_replication_check(self):
        """At quiescence every live follower must hold exactly the leader's
        committed key -> value map, and every live replica must have applied
        the entire group log (replica convergence)."""
        for group in self.cluster.replication.sorted_groups():
            leader_node = self.cluster.nodes[group.leader_node_id]
            want = dict(group._committed_rows(leader_node))
            for replica in group.live_replicas():
                if replica.next_index != len(group.log):
                    self._violate(
                        "replica {} of {} stopped at log index {} of {}".format(
                            replica.node_id, group.shard_id,
                            replica.next_index, len(group.log),
                        )
                    )
                if replica.replica_id == group.leader_id:
                    continue
                node = self.cluster.nodes[replica.node_id]
                got = dict(group._committed_rows(node))
                if got != want:
                    extra = sorted(set(got) - set(want))[:3]
                    missing = sorted(set(want) - set(got))[:3]
                    differ = sorted(
                        k for k in sorted(set(got) & set(want))
                        if got[k] != want[k]
                    )[:3]
                    self._violate(
                        "replica divergence on {}: follower {} vs leader {} "
                        "(missing={} extra={} differ={})".format(
                            group.shard_id, replica.node_id,
                            group.leader_node_id, missing, extra, differ,
                        )
                    )
        self.assert_ok()

    # ------------------------------------------------------------------
    def _migration_in_flight(self):
        supervisor = self.supervisor
        return supervisor is not None and supervisor.current is not None

    def _check_single_owner(self):
        owners = self.cluster.shard_owners
        for shard_id, owner in owners.items():
            if owner not in self.cluster.nodes:
                self._violate(
                    "shard {} owned by unknown node {!r}".format(shard_id, owner)
                )
        if self._migration_in_flight():
            # T_m / recovery may be flipping replica rows right now.
            self._clear_suspects("replica:")
            return
        for node_id, node in self.cluster.nodes.items():
            heap = node.heap_for(SHARDMAP_SHARD)
            for shard_id, owner in owners.items():
                if shard_id == SHARDMAP_SHARD:
                    continue
                row_owner = _latest_committed_owner(heap, node.clog, shard_id)
                key = "replica:{}:{}".format(node_id, shard_id)
                if row_owner is not None and row_owner != owner:
                    self._suspect(
                        key,
                        "shard-map replica on {} says {} owns {}, "
                        "authoritative owner is {}".format(
                            node_id, row_owner, shard_id, owner
                        ),
                    )
                else:
                    self._suspects.pop(key, None)

    def _check_cache_coherence(self):
        """A cache entry must never be newer than the authoritative map."""
        owners = self.cluster.shard_owners
        if self._migration_in_flight():
            self._clear_suspects("cache:")
            return
        for node_id, node in self.cluster.nodes.items():
            cache = node.shardmap_cache
            for shard_id, owner in owners.items():
                if shard_id == SHARDMAP_SHARD:
                    continue
                if cache.is_read_through(shard_id):
                    continue
                try:
                    cached_owner, _cts = cache.entry(shard_id)
                except KeyError:
                    continue
                key = "cache:{}:{}".format(node_id, shard_id)
                if cached_owner != owner:
                    # Stale caches heal on the next refresh broadcast; only a
                    # *persistently* wrong entry is a coherence bug.
                    self._suspect(
                        key,
                        "cache on {} routes {} to {}, owner is {}".format(
                            node_id, shard_id, cached_owner, owner
                        ),
                    )
                else:
                    self._suspects.pop(key, None)

    def _check_prepared_orphans(self):
        referenced = set()
        for txn in self.cluster.active_txns.values():
            for participant in txn.participants.values():
                referenced.add((participant.node_id, participant.xid))
        if self.supervisor is not None:
            for migration in getattr(self.supervisor.plan, "migrations", []):
                propagation = getattr(migration, "propagation", None)
                if propagation is None:
                    continue
                for shadow, _entry in propagation._validated.values():
                    for participant in shadow.participants.values():
                        referenced.add((participant.node_id, participant.xid))
        for node_id, node in self.cluster.nodes.items():
            for xid, status in node.clog.statuses():
                key = "prepared:{}:{}".format(node_id, xid)
                if status is not TxnStatus.PREPARED:
                    self._suspects.pop(key, None)
                    continue
                if (node_id, xid) in referenced:
                    self._suspects.pop(key, None)
                    continue
                self._suspect(
                    key,
                    "orphaned PREPARED xid {} on {} (no live transaction "
                    "references it)".format(xid, node_id),
                )

    def _check_replication(self):
        """Replication-group safety under faults:

        * **no dual leader** — each group has exactly one leader, and (when
          no migration/recovery is perturbing routing) the authoritative
          shard map routes the shard to that leader's node;
        * **log-prefix consistency** — no replica claims to have applied
          more entries than the group log holds, and a replica's rolling
          fingerprint matches the log entry at its applied position (a
          mismatch means it applied a *different* prefix — divergence).
        """
        for group in self.cluster.replication.sorted_groups():
            log_len = len(group.log)
            for replica in group.replicas:
                if replica.next_index > log_len:
                    self._violate(
                        "replica {} of {} ahead of the group log "
                        "({} > {})".format(
                            replica.node_id, group.shard_id,
                            replica.next_index, log_len,
                        )
                    )
                elif replica.next_index > 0:
                    entry = group.log[replica.next_index - 1]
                    if replica.applied_sig != entry.sig:
                        self._violate(
                            "replica {} of {} diverged: fingerprint {} != "
                            "log fingerprint {} at index {}".format(
                                replica.node_id, group.shard_id,
                                replica.applied_sig, entry.sig,
                                replica.next_index - 1,
                            )
                        )
            leaders = [
                r for r in group.replicas if r.replica_id == group.leader_id
            ]
            if len(leaders) != 1:
                self._violate(
                    "group {} has {} leaders".format(group.shard_id, len(leaders))
                )
                continue
            if self._migration_in_flight():
                self._clear_suspects("leader:")
                continue
            owner = self.cluster.shard_owner(group.shard_id)
            key = "leader:{}".format(group.shard_id)
            if owner != group.leader_node_id:
                # Transiently legal mid-election (the epoch-bumped shard-map
                # install is in flight); persistent disagreement means two
                # nodes can both believe they master the shard.
                self._suspect(
                    key,
                    "shard map routes {} to {} but group leader is {} "
                    "(epoch {})".format(
                        group.shard_id, owner, group.leader_node_id, group.epoch
                    ),
                )
            else:
                self._suspects.pop(key, None)

    # ------------------------------------------------------------------
    def _suspect(self, key, description):
        first = self._suspects.setdefault(key, self.sim.now)
        if self.sim.now - first >= self.grace:
            self._violate(description)
            del self._suspects[key]

    def _clear_suspects(self, prefix):
        for key in [k for k in self._suspects if k.startswith(prefix)]:
            del self._suspects[key]

    def _violate(self, description):
        self.violations.append((self.sim.now, description))


def _latest_committed_owner(heap, clog, shard_id):
    """Peek the newest committed shard-map row for ``shard_id`` without
    paying MVCC costs or prepare-waiting (pure introspection)."""
    for version in heap.chain(shard_id):
        if version.xmin == BOOTSTRAP_XID:
            return version.value
        if clog.status(version.xmin) is TxnStatus.COMMITTED:
            return version.value
    return None
