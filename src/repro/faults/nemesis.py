"""The nemesis: a simulated process that injects scheduled faults.

The nemesis walks a :class:`~repro.faults.plan.FaultPlan` on the virtual
clock. Each fault is started in its own process so a long-lived fault (a
partition waiting to heal, a migration crash waiting for its target phase)
never delays the faults scheduled after it. Every injection and heal is
recorded both on the nemesis timeline and as a metrics mark
(``fault:...`` / ``heal:...``) so recovery timelines can be reconstructed
from the ordinary metrics stream.
"""


class Nemesis:
    """Injects a fault plan into a running cluster."""

    def __init__(self, cluster, plan, supervisor=None, phase_wait=8.0):
        """``supervisor`` is the :class:`MigrationSupervisor` whose in-flight
        migration ``crash_migration`` faults target; without one those faults
        are no-ops. ``phase_wait`` bounds how long a phase-targeted crash
        polls for its phase before giving up."""
        self.cluster = cluster
        self.sim = cluster.sim
        self.plan = plan
        self.supervisor = supervisor
        self.phase_wait = phase_wait
        self.timeline = []  # (time, description)

    def run(self):
        """Generator: start every fault at its scheduled time."""
        for fault in self.plan.faults:
            if fault.at > self.sim.now:
                yield fault.at - self.sim.now
            self.cluster.spawn(
                self._inject(fault), name="nemesis:{}".format(fault.kind)
            )

    # ------------------------------------------------------------------
    def _inject(self, fault):
        handler = getattr(self, "_inject_" + fault.kind)
        yield from handler(fault)

    def _inject_crash_node(self, fault):
        if self.cluster.nodes[fault.node].failed:
            # Crashing a node that is already down is an idempotent no-op:
            # random plans may double-target a node, and re-crashing it would
            # restart its failover clock and double-fire recovery hooks.
            self._note("fault:crash_node:{}:noop (already down)".format(fault.node))
            return
        self._note("fault:crash_node:{}".format(fault.node))
        supervisor = self.supervisor
        if supervisor is not None and supervisor.current is not None:
            migration = supervisor.current
            if fault.node in (migration.source, migration.dest):
                # The machinery driving the migration lived on that node.
                supervisor.crash_current("node {} crashed".format(fault.node))
        self.cluster.fail_node(fault.node, failover_time=fault.failover)
        return
        yield  # pragma: no cover - makes this a generator

    def _inject_crash_leader(self, fault):
        yield from self._crash_replica(fault, leader=True)

    def _inject_crash_follower(self, fault):
        yield from self._crash_replica(fault, leader=False)

    def _crash_replica(self, fault, leader):
        """Crash one member of a shard's replication group, heal it after
        ``fault.duration``. Leader crashes exercise lease-based election and
        the 2PC stale-epoch retry path; follower crashes exercise quorum
        commit with a degraded group and catch-up on heal. A ``phase`` on
        the fault delays the crash until a supervised migration enters that
        phase (bounded by ``phase_wait``) — how soaks land a replica crash
        exactly mid-copy or mid-propagation."""
        from repro.cluster.shard import ShardId

        kind = "crash_leader" if leader else "crash_follower"
        if fault.phase is not None and self.supervisor is not None:
            from repro.sim.events import AnyOf, Timeout

            if self.supervisor.current_phase() != fault.phase:
                yield AnyOf(
                    [self.supervisor.phase_event(fault.phase), Timeout(self.phase_wait)]
                )
        shard_id = ShardId(*fault.shard)
        group = self.cluster.replication.group_for(shard_id)
        if group is None:
            self._note("fault:{}:skipped (unreplicated {})".format(kind, shard_id))
            return
        if leader:
            target = group.leader
        else:
            followers = [r for r in group.live_followers()]
            if not followers:
                self._note("fault:{}:skipped (no live follower)".format(kind))
                return
            target = min(followers, key=lambda r: r.replica_id)
        if group.replica_down(target):
            self._note("fault:{}:noop (already down)".format(kind))
            return
        node_id = target.node_id
        self._note("fault:{}:{}:{}".format(kind, shard_id, node_id))
        supervisor = self.supervisor
        if supervisor is not None and supervisor.current is not None:
            migration = supervisor.current
            if node_id in (migration.source, migration.dest):
                supervisor.crash_current(
                    "replica {} crashed".format(node_id)
                )
        group.crash_replica(node_id)
        if fault.duration:
            yield fault.duration
            group.heal_replica(node_id)
            self._note("heal:{}:{}:{}".format(kind, shard_id, node_id))

    def _inject_partition(self, fault):
        network = self.cluster.network
        network.partition(fault.node, fault.peer)
        self._note("fault:partition:{}|{}".format(fault.node, fault.peer))
        yield fault.duration
        network.heal_partition(fault.node, fault.peer)
        self._note("heal:partition:{}|{}".format(fault.node, fault.peer))

    def _inject_loss(self, fault):
        network = self.cluster.network
        network.set_loss(fault.node, fault.peer, fault.value)
        self._note("fault:loss:{}|{}:{:.2f}".format(fault.node, fault.peer, fault.value))
        yield fault.duration
        network.set_loss(fault.node, fault.peer, 0.0)
        self._note("heal:loss:{}|{}".format(fault.node, fault.peer))

    def _inject_latency(self, fault):
        network = self.cluster.network
        network.set_extra_latency(fault.node, fault.peer, fault.value)
        self._note(
            "fault:latency:{}|{}:{:.3f}".format(fault.node, fault.peer, fault.value)
        )
        yield fault.duration
        network.set_extra_latency(fault.node, fault.peer, 0.0)
        self._note("heal:latency:{}|{}".format(fault.node, fault.peer))

    def _inject_degrade(self, fault):
        """Brown out one topology tier: every matching trunk's bandwidth is
        scaled by ``fault.value`` (the tier name rides in ``fault.node``),
        then restored after ``fault.duration``. Healing resets the whole
        tier rather than stacking, matching :meth:`Network.set_tier_degrade`
        last-writer-wins semantics."""
        network = self.cluster.network
        network.set_tier_degrade(fault.node, bandwidth_factor=fault.value)
        self._note("fault:degrade:{}:{:.2f}".format(fault.node, fault.value))
        yield fault.duration
        network.set_tier_degrade(fault.node)
        self._note("heal:degrade:{}".format(fault.node))

    def _inject_stall(self, fault):
        manager = self.cluster.nodes[fault.node].manager
        until = self.sim.now + fault.duration
        manager.flush_stall_until = max(manager.flush_stall_until, until)
        self._note("fault:stall:{}:{:.2f}".format(fault.node, fault.duration))
        return
        yield  # pragma: no cover - makes this a generator

    def _inject_crash_migration(self, fault):
        from repro.sim.events import AnyOf, Timeout

        supervisor = self.supervisor
        if supervisor is None:
            self._note("fault:crash_migration:skipped (no supervisor)")
            return
        if fault.phase is not None and supervisor.current_phase() != fault.phase:
            # Phases can be far shorter than any poll interval; wait on the
            # supervisor's phase-entry event (bounded by phase_wait).
            yield AnyOf([supervisor.phase_event(fault.phase), Timeout(self.phase_wait)])
        else:
            deadline = self.sim.now + self.phase_wait
            while supervisor.current is None and self.sim.now < deadline:
                yield 0.05
        reason = "nemesis crash"
        if fault.phase is not None:
            reason = "nemesis crash at {}".format(fault.phase)
        if supervisor.crash_current(reason):
            self._note("fault:crash_migration:{}".format(fault.phase or "any"))
        else:
            self._note("fault:crash_migration:missed")

    def _note(self, description):
        self.timeline.append((self.sim.now, description))
        self.cluster.metrics.mark(description)
