"""Declarative fault schedules on the simulated clock.

A :class:`FaultPlan` is an ordered list of :class:`Fault` records. Plans come
from three places:

* hand-written in code (tests pin exact scenarios);
* parsed from a compact spec string (the CLI's ``--fault-plan``), e.g.::

      crash:node-1@1.0; partition:node-0|node-2@2.0+0.5; mcrash:snapshot_copy@0.2

* drawn from a seeded RNG stream (:meth:`FaultPlan.random`) for soak tests —
  the same seed always yields the same plan.

Spec grammar, one fault per ``;``-separated token::

    crash:<node>@<at>[+<failover>]          crash + replica failover
    partition:<a>|<b>@<at>+<duration>       cut the link, heal after duration
    loss:<a>|<b>:<p>@<at>+<duration>        drop each message with prob. p
    latency:<a>|<b>:<extra>@<at>+<duration> add extra seconds per message
    stall:<node>@<at>+<duration>            WAL flushes block until at+duration
    mcrash@<at>                             crash the in-flight migration
    mcrash:<phase>@<at>                     ... once it reaches <phase>
    crash_leader:<table>:<idx>@<at>+<dur>   crash the shard's group leader
    crash_follower:<table>:<idx>@<at>+<dur> crash its lowest live follower
    crash_leader:<table>:<idx>:<phase>@<at>+<dur>  ... once a supervised
                                            migration reaches <phase>
    degrade:<tier>:<factor>@<at>+<duration> scale every <tier> trunk's
                                            bandwidth by <factor> (a brown-out
                                            of e.g. the inter-AZ trunk), heal
                                            after duration
"""

from dataclasses import dataclass, field

from repro.sim.topology import TIERS

KINDS = (
    "crash_node",
    "partition",
    "loss",
    "latency",
    "stall",
    "crash_migration",
    "crash_leader",
    "crash_follower",
    "degrade",
)

_ALIASES = {"crash": "crash_node", "mcrash": "crash_migration"}

# Remus phase names a phase-targeted migration crash may wait for.
PHASES = ("snapshot_copy", "async_propagation", "mode_change", "dual_execution")


@dataclass
class Fault:
    """One scheduled fault."""

    kind: str
    at: float
    node: str = None  # crash/stall target
    peer: str = None  # partition/loss/latency: the link is (node, peer)
    duration: float = 0.0  # how long the fault persists before healing
    value: float = 0.0  # loss probability / extra latency seconds
    phase: str = None  # crash_migration: fire when this phase is reached
    failover: float = 0.5  # crash_node: replica promotion delay
    shard: tuple = None  # crash_leader/crash_follower: (table, index) target

    def describe(self):
        parts = ["{:>8.3f}s {}".format(self.at, self.kind)]
        if self.node is not None:
            parts.append(self.node)
        if self.peer is not None:
            parts.append("<->" + self.peer)
        if self.shard is not None:
            parts.append("{}:{}".format(self.shard[0], self.shard[1]))
        if self.phase is not None:
            parts.append("phase=" + self.phase)
        if self.value:
            parts.append("value={}".format(self.value))
        if self.duration:
            parts.append("for {}s".format(self.duration))
        return " ".join(parts)


@dataclass
class FaultPlan:
    """An ordered schedule of faults."""

    faults: list = field(default_factory=list)

    def __post_init__(self):
        for fault in self.faults:
            if fault.kind not in KINDS:
                raise ValueError("unknown fault kind {!r}".format(fault.kind))
        self.faults.sort(key=lambda f: f.at)

    def describe(self):
        if not self.faults:
            return "(no faults)"
        return "\n".join(f.describe() for f in self.faults)

    def kinds(self):
        return {f.kind for f in self.faults}

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec):
        """Parse a compact ``;``-separated spec string (grammar above)."""
        faults = []
        for token in spec.split(";"):
            token = token.strip()
            if not token:
                continue
            faults.append(_parse_fault(token))
        return cls(faults)

    @classmethod
    def random(cls, rng, node_ids, horizon, extra_faults=2):
        """Draw a randomized plan from a seeded stream.

        Every random plan contains at least a mid-migration crash, a network
        partition and a node crash (the chaos soak test's required mix), plus
        ``extra_faults`` additional draws across all kinds.
        """
        node_ids = list(node_ids)

        def pair():
            return rng.sample(node_ids, 2)

        faults = []
        # Guaranteed mix: migration crash (often phase-targeted), partition,
        # node crash.
        phase = rng.choice((None,) + PHASES)
        faults.append(
            Fault(
                "crash_migration",
                at=rng.uniform(0.05, horizon * 0.5),
                phase=phase,
            )
        )
        a, b = pair()
        faults.append(
            Fault(
                "partition",
                at=rng.uniform(0.05, horizon * 0.7),
                node=a,
                peer=b,
                duration=rng.uniform(0.2, min(1.5, horizon * 0.3)),
            )
        )
        faults.append(
            Fault(
                "crash_node",
                at=rng.uniform(0.05, horizon * 0.7),
                node=rng.choice(node_ids),
                failover=rng.uniform(0.2, 0.6),
            )
        )
        for _ in range(extra_faults):
            kind = rng.choice(("loss", "latency", "stall", "partition"))
            at = rng.uniform(0.05, horizon * 0.8)
            duration = rng.uniform(0.1, min(1.0, horizon * 0.2))
            if kind == "stall":
                faults.append(
                    Fault(kind, at=at, node=rng.choice(node_ids), duration=duration)
                )
                continue
            a, b = pair()
            if kind == "loss":
                value = rng.uniform(0.05, 0.4)
            elif kind == "latency":
                value = rng.uniform(0.005, 0.05)
            else:
                value = 0.0
            faults.append(
                Fault(kind, at=at, node=a, peer=b, duration=duration, value=value)
            )
        return cls(faults)

    @classmethod
    def random_replicated(cls, rng, node_ids, shards, horizon, extra_faults=1):
        """Randomized plan for replicated-shard soaks.

        A separate constructor (not new draws inside :meth:`random`) because
        tests pin :meth:`random`'s exact RNG draw sequence. Every plan
        contains a leader crash, a follower crash and a phase-targeted
        migration crash over the replicated ``shards``, plus ``extra_faults``
        network draws.
        """
        node_ids = list(node_ids)
        shards = [tuple(s) for s in shards]
        faults = [
            Fault(
                "crash_leader",
                at=rng.uniform(0.1, horizon * 0.5),
                shard=rng.choice(shards),
                duration=rng.uniform(0.5, min(2.0, horizon * 0.4)),
            ),
            Fault(
                "crash_follower",
                at=rng.uniform(0.1, horizon * 0.7),
                shard=rng.choice(shards),
                duration=rng.uniform(0.3, min(1.5, horizon * 0.3)),
            ),
            Fault(
                "crash_migration",
                at=rng.uniform(0.05, horizon * 0.5),
                phase=rng.choice(PHASES),
            ),
        ]
        for _ in range(extra_faults):
            kind = rng.choice(("loss", "latency", "partition"))
            a, b = rng.sample(node_ids, 2)
            duration = rng.uniform(0.1, min(1.0, horizon * 0.2))
            if kind == "loss":
                value = rng.uniform(0.05, 0.3)
            elif kind == "latency":
                value = rng.uniform(0.005, 0.05)
            else:
                value = 0.0
            faults.append(
                Fault(
                    kind,
                    at=rng.uniform(0.05, horizon * 0.8),
                    node=a,
                    peer=b,
                    duration=duration,
                    value=value,
                )
            )
        return cls(faults)


def _parse_fault(token):
    if "@" not in token:
        raise ValueError("fault {!r} missing '@<time>'".format(token))
    head, timing = token.rsplit("@", 1)
    try:
        if "+" in timing:
            at_text, dur_text = timing.split("+", 1)
            at, duration = float(at_text), float(dur_text)
        else:
            at, duration = float(timing), 0.0
    except ValueError:
        raise ValueError(
            "bad timing {!r} in {!r}; expected '@<at>' or '@<at>+<dur>'".format(
                timing, token
            )
        ) from None
    parts = head.split(":")
    kind = _ALIASES.get(parts[0], parts[0])
    if kind not in KINDS:
        raise ValueError("unknown fault kind {!r} in {!r}".format(parts[0], token))

    if kind == "crash_node":
        _expect(parts, 2, token)
        failover = duration if duration else 0.5
        return Fault(kind, at=at, node=parts[1], failover=failover)
    if kind == "stall":
        _expect(parts, 2, token)
        return Fault(kind, at=at, node=parts[1], duration=duration)
    if kind == "crash_migration":
        phase = parts[1] if len(parts) > 1 else None
        if phase is not None and phase not in PHASES:
            raise ValueError("unknown phase {!r} in {!r}".format(phase, token))
        return Fault(kind, at=at, phase=phase)
    if kind in ("crash_leader", "crash_follower"):
        if len(parts) not in (3, 4):
            raise ValueError("malformed fault {!r}".format(token))
        try:
            index = int(parts[2])
        except ValueError:
            raise ValueError(
                "bad shard index {!r} in {!r}".format(parts[2], token)
            ) from None
        phase = parts[3] if len(parts) == 4 else None
        if phase is not None and phase not in PHASES:
            raise ValueError("unknown phase {!r} in {!r}".format(phase, token))
        return Fault(
            kind, at=at, shard=(parts[1], index), duration=duration, phase=phase
        )
    if kind == "degrade":
        _expect(parts, 3, token)
        tier = parts[1]
        if tier not in TIERS:
            raise ValueError("unknown tier {!r} in {!r}".format(tier, token))
        factor = float(parts[2])
        if factor <= 0.0:
            raise ValueError(
                "degrade factor must be positive in {!r}; use partition to "
                "cut links".format(token)
            )
        return Fault(kind, at=at, node=tier, duration=duration, value=factor)
    if kind == "partition":
        _expect(parts, 2, token)
        a, b = _parse_link(parts[1], token)
        return Fault(kind, at=at, node=a, peer=b, duration=duration)
    # loss / latency carry a numeric value after the link.
    _expect(parts, 3, token)
    a, b = _parse_link(parts[1], token)
    return Fault(kind, at=at, node=a, peer=b, duration=duration, value=float(parts[2]))


def _parse_link(text, token):
    if "|" not in text:
        raise ValueError("fault {!r} needs a '<a>|<b>' link".format(token))
    a, b = text.split("|", 1)
    return a, b


def _expect(parts, count, token):
    if len(parts) != count:
        raise ValueError("malformed fault {!r}".format(token))
