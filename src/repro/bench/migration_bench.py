"""Migration data-path microbenchmarks: fast path vs the frozen legacy.

Three storms, each isolating one prong of the migration fast path
(``fastpath.migration_scan`` / ``migration_pump`` / ``migration_replay``)
against the frozen pre-optimization loops in
:mod:`repro.bench._legacy_migration`:

- ``snapshot_copy_storm`` — repeated snapshot-copy passes over a shard
  whose version chains carry aborted and after-snapshot junk (the Figure 10
  regime). The legacy loop re-sorts the key set per pass and pays one
  simulated CPU event plus one blocking visibility generator per tuple; the
  indexed scan walks the incrementally sorted index, decides visibility
  inline and coalesces the CPU charges. CI pins this storm's speedup at
  >= 2x.
- ``propagation_replay_storm`` — a WAL backlog where only a fraction of the
  change records touch the migrating shard, drained through a live
  :class:`~repro.migration.propagation.Propagation` with real shadow-
  transaction replay on the destination. The legacy pump visits every
  record; the routed pump consumes only the relevant ones and replays
  coalesced change vectors.
- ``crash_retry_storm`` — many small copy passes over one shard with fresh
  rows landing between passes, the §3.7 crash-retry shape: the legacy
  per-retry re-sort is exactly what the persistent key index amortises.

Fast runs use the shipped flag configuration (all fast paths on); legacy
runs use :func:`repro.fastpath.all_disabled` plus the frozen loops.
``repro bench`` serializes the payload as ``BENCH_migration.json`` and
gates it against the committed baseline like the kernel and txn payloads.
"""

from __future__ import annotations

import sys

from repro import fastpath
from repro.bench._legacy_migration import legacy_copy_shard_snapshot, legacy_pump
from repro.bench.txn_bench import _measure, _versus
from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.migration.base import MigrationStats
from repro.migration.propagation import Propagation
from repro.migration.snapshot_copy import copy_shard_snapshot
from repro.storage.wal import WalRecord, WalRecordKind

#: (tuples, passes) / (txns, rounds) / (tuples, retries) per mode.
_COPY_SCALE = {"smoke": (1200, 6), "full": (3000, 10)}
_PUMP_SCALE = {"smoke": (700, 4), "full": (2000, 8)}
_RETRY_SCALE = {"smoke": (300, 8), "full": (800, 20)}

#: Shards in the pump storm's source WAL (one of them migrating).
_PUMP_SHARDS = 8

#: Pump storm shape: every ``_PUMP_MIGRATING_EVERY``-th transaction writes
#: the migrating shard (and replays for real); the rest are pump noise with
#: ``_PUMP_NOISE_CHANGES`` change records each.
_PUMP_MIGRATING_EVERY = 16
_PUMP_NOISE_CHANGES = 10

_TABLE = "bench"
_SNAPSHOT_TS = 10
#: Clog xids for the version-chain churn, far above any live allocation.
_XID_CHURN = 900_001
_XID_JUNK = 900_002


def _build_cluster(num_tuples, num_shards, tuple_size=128):
    cluster = Cluster(ClusterConfig(num_nodes=2, seed=0))
    schema = cluster.create_table(_TABLE, num_shards=num_shards, tuple_size=tuple_size)
    cluster.bulk_load(_TABLE, [(key, {"f0": key}) for key in range(num_tuples)])
    return cluster, schema


def _largest_shard(cluster, schema, num_tuples):
    """The (shard_id, source, dest, keys) of the best-populated shard."""
    keys_by_shard = {}
    for key in range(num_tuples):
        keys_by_shard.setdefault(schema.shard_for_key(key), []).append(key)
    shard_id = max(sorted(keys_by_shard), key=lambda s: len(keys_by_shard[s]))
    source = cluster.shard_owners[shard_id]
    dest = next(n for n in cluster.node_ids() if n != source)
    return shard_id, source, dest, keys_by_shard[shard_id]


def _churn_chains(cluster, shard_id, source, keys):
    """Deepen the shard's version chains: committed updates + aborted junk."""
    node = cluster.nodes[source]
    clog = node.clog
    clog.begin(_XID_CHURN)
    clog.set_committed(_XID_CHURN, _SNAPSHOT_TS // 2)
    clog.begin(_XID_JUNK)
    clog.set_aborted(_XID_JUNK)
    heap = node.heap_for(shard_id)
    for key in keys:
        heap.put_version(key, {"f0": key + 1}, _XID_CHURN)
        heap.put_version(key, {"f0": -key}, _XID_JUNK)
        heap.put_version(key, {"f0": -key}, _XID_JUNK)


def _run_copy_passes(copy_fn, cluster, shard_id, source, dest, passes):
    sim = cluster.sim
    copied = 0
    for _ in range(passes):
        stats = MigrationStats()
        proc = cluster.spawn(
            copy_fn(cluster, shard_id, source, dest, _SNAPSHOT_TS, stats)
        )
        sim.run_until_complete(proc)
        copied += stats.tuples_copied
    return copied


def _copy_storm(tuples, passes, fast):
    cluster, schema = _build_cluster(tuples, num_shards=1)
    shard_id, source, dest, keys = _largest_shard(cluster, schema, tuples)
    _churn_chains(cluster, shard_id, source, keys)
    copy_fn = copy_shard_snapshot if fast else legacy_copy_shard_snapshot
    if fast:
        return _run_copy_passes(copy_fn, cluster, shard_id, source, dest, passes)
    with fastpath.all_disabled():
        return _run_copy_passes(copy_fn, cluster, shard_id, source, dest, passes)


def _copy_storm_fast(tuples, passes):
    return _copy_storm(tuples, passes, fast=True)


def _copy_storm_legacy(tuples, passes):
    return _copy_storm(tuples, passes, fast=False)


def _pump_storm(txns, rounds, fast):
    cluster, schema = _build_cluster(num_tuples=_PUMP_SHARDS, num_shards=_PUMP_SHARDS)
    del schema
    source = cluster.node_ids()[0]
    dest = cluster.node_ids()[1]
    shard_ids = cluster.shards_on_node(source, table=_TABLE)
    if not shard_ids:
        source, dest = dest, source
        shard_ids = cluster.shards_on_node(source, table=_TABLE)
    migrating = shard_ids[:1]
    wal = cluster.nodes[source].wal
    backlog_from = wal.tail_lsn
    # Backlog (appended once, drained ``rounds`` times by fresh pipelines):
    # every _PUMP_MIGRATING_EVERY-th txn writes the migrating shard and
    # commits after the snapshot, so it replays for real through the
    # destination manager; the rest are pump noise on the source's other
    # shards, which the routed pump never visits.
    noise_shards = [s for s in shard_ids if s not in migrating] or migrating
    for index in range(txns):
        xid = 500_000 + index
        if index % _PUMP_MIGRATING_EVERY == 0:
            shard_id = migrating[0]
            changes = 2
        else:
            shard_id = noise_shards[index % len(noise_shards)]
            changes = _PUMP_NOISE_CHANGES
        for column in range(changes):
            wal.append(
                WalRecord(
                    WalRecordKind.INSERT,
                    xid=xid,
                    shard_id=shard_id,
                    key=(index, column),
                    value={"f0": index},
                    size=128,
                    start_ts=_SNAPSHOT_TS,
                )
            )
        wal.append(
            WalRecord(
                WalRecordKind.COMMIT,
                xid=xid,
                commit_ts=_SNAPSHOT_TS + 1 + index,
            )
        )

    def drain():
        consumed = 0
        for _ in range(rounds):
            stats = MigrationStats()
            propagation = Propagation(
                cluster, migrating, source, dest, _SNAPSHOT_TS, backlog_from, stats
            )
            if fast:
                propagation.start()
            else:
                cluster.sim.spawn(legacy_pump(propagation), name="legacy-pump")
            cluster.sim.run()
            consumed += propagation.records_seen + stats.records_applied
        return consumed

    if fast:
        return drain()
    with fastpath.all_disabled():
        return drain()


def _pump_storm_fast(txns, rounds):
    return _pump_storm(txns, rounds, fast=True)


def _pump_storm_legacy(txns, rounds):
    return _pump_storm(txns, rounds, fast=False)


def _retry_storm(tuples, retries, fast):
    cluster, schema = _build_cluster(tuples, num_shards=2)
    shard_id, source, dest, keys = _largest_shard(cluster, schema, tuples)
    del keys
    node = cluster.nodes[source]
    copy_fn = copy_shard_snapshot if fast else legacy_copy_shard_snapshot

    def run():
        copied = 0
        for retry in range(retries):
            # Fresh rows between retries: the legacy path re-sorts the whole
            # key set; the index absorbs them with bisect insertions.
            node.bulk_install(
                shard_id,
                [(tuples + retry * 8 + j, {"f0": j}) for j in range(8)],
            )
            copied += _run_copy_passes(copy_fn, cluster, shard_id, source, dest, 1)
        return copied

    if fast:
        return run()
    with fastpath.all_disabled():
        return run()


def _retry_storm_fast(tuples, retries):
    return _retry_storm(tuples, retries, fast=True)


def _retry_storm_legacy(tuples, retries):
    return _retry_storm(tuples, retries, fast=False)


def run_migration_bench(smoke: bool = False, repeats: int = 3) -> dict:
    """Run every storm; returns the ``BENCH_migration.json`` payload."""
    mode = "smoke" if smoke else "full"
    copy = _versus(
        _measure(_copy_storm_fast, *_COPY_SCALE[mode], repeats=repeats),
        _measure(_copy_storm_legacy, *_COPY_SCALE[mode], repeats=repeats),
    )
    pump = _versus(
        _measure(_pump_storm_fast, *_PUMP_SCALE[mode], repeats=repeats),
        _measure(_pump_storm_legacy, *_PUMP_SCALE[mode], repeats=repeats),
    )
    retry = _versus(
        _measure(_retry_storm_fast, *_RETRY_SCALE[mode], repeats=repeats),
        _measure(_retry_storm_legacy, *_RETRY_SCALE[mode], repeats=repeats),
    )
    return {
        "bench": "migration",
        "mode": mode,
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
        "storms": {
            "snapshot_copy_storm": copy,
            "propagation_replay_storm": pump,
            "crash_retry_storm": retry,
        },
        "speedup_vs_legacy": copy["speedup"],
    }
