"""Frozen pre-fast-path migration data path, kept as the benchmark reference.

These are byte-for-byte copies of the migration hot loops as they stood
before the ``repro.fastpath`` migration flags landed (commit history:
``snapshot_copy.copy_shard_snapshot`` and ``Propagation._pump``), so
``repro.bench.migration_bench`` measures the real before/after instead of
trusting the flag-gated live module to still contain the old code. Do not
"fix" or modernize them — the magic constants (256-tuple ship batches, the
64-record CPU charge, the 64-byte tuple fallback) are part of what is
frozen; the live path sources them from :class:`repro.config.ClusterConfig`.

They run against the *live* cluster/heap/WAL objects: the legacy scan sorts
the heap's key set per copy and pays one simulated CPU charge plus one
blocking visibility generator per tuple; the legacy pump visits every WAL
record regardless of shard.
"""

from repro.sim.errors import Interrupt

_BATCH_TUPLES = 256
_PUMP_BATCH = 64


def legacy_copy_shard_snapshot(cluster, shard_id, source, dest, snapshot_ts, stats):
    """Generator: the pre-index, per-tuple snapshot copy loop."""
    source_node = cluster.nodes[source]
    dest_node = cluster.nodes[dest]
    heap = source_node.heap_for(shard_id)
    tuple_size = (
        cluster.tables[shard_id.table].tuple_size
        if shard_id.table in cluster.tables
        else 64
    )
    costs = cluster.config.costs
    snapshot = source_node.manager.read_snapshot(snapshot_ts)

    copied = 0
    keys = sorted(heap.keys())
    batch = []
    for key in keys:
        yield source_node.cpu.use(costs.snapshot_scan_per_tuple)
        version, _traversed = yield from heap.visible_version(key, snapshot)
        if version is None:
            continue
        batch.append((key, version.value))
        if len(batch) >= _BATCH_TUPLES:
            copied += yield from _legacy_ship_batch(
                cluster, batch, source, dest_node, shard_id, tuple_size, costs
            )
            batch = []
    if batch:
        copied += yield from _legacy_ship_batch(
            cluster, batch, source, dest_node, shard_id, tuple_size, costs
        )
    stats.tuples_copied += copied
    stats.bytes_copied += copied * tuple_size
    return copied


def _legacy_ship_batch(cluster, batch, source, dest_node, shard_id, tuple_size, costs):
    yield from cluster.rpc_send(source, dest_node.node_id, len(batch) * tuple_size)
    yield dest_node.cpu.use(costs.snapshot_scan_per_tuple * len(batch))
    dest_node.bulk_install(shard_id, batch)
    return len(batch)


def legacy_pump(propagation):
    """Generator: the unrouted send loop — visits every WAL record."""
    try:
        while True:
            record = yield from propagation.reader.next_record()
            propagation.records_seen += 1
            propagation._since_cpu_charge += 1
            if propagation._since_cpu_charge >= _PUMP_BATCH:
                yield propagation.source_node.cpu.use(
                    propagation.costs.cpu_propagate * propagation._since_cpu_charge
                )
                propagation._since_cpu_charge = 0
            propagation._handle(record)
    except Interrupt:
        return
