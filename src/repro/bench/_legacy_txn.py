"""FROZEN pre-fast-path transaction-layer reference. DO NOT OPTIMIZE.

Faithful copies of the MVCC visibility generators, heap read path and row
lock table as they stood before the transaction fast path landed (no hint
bits, no snapshot caching, generator sub-frames on every visibility check,
a named event per lock acquire). :mod:`repro.bench.txn_bench` runs the same
storms against these and against the live modules; the ratio is the
speedup number the CI gate pins.

Kept separate from the live code on purpose, mirroring
:mod:`repro.bench._legacy_kernel`: the live modules will keep evolving,
and the benchmark needs a stable "before" to compare against.
"""

from collections import deque

from repro.storage.clog import TxnStatus


class LegacyTupleVersion:
    """Pre-hint-bit tuple header: no ``cts_min``/``cts_max`` slots."""

    __slots__ = ("key", "value", "xmin", "xmax")

    def __init__(self, key, value, xmin, xmax=None):
        self.key = key
        self.value = value
        self.xmin = xmin
        self.xmax = xmax


class LegacySnapshot:
    __slots__ = ("start_ts", "xid")

    def __init__(self, start_ts, xid=None):
        self.start_ts = start_ts
        self.xid = xid


def legacy_creation_visible(version, snapshot, clog):
    """Generator: the pre-fast-path creation-visibility check."""
    if snapshot.xid is not None and version.xmin == snapshot.xid:
        return True
    while True:
        status = clog.status(version.xmin)
        if status is TxnStatus.ABORTED:
            return False
        if status is TxnStatus.IN_PROGRESS:
            return False
        if status is TxnStatus.PREPARED:
            if not clog.prepare_wait_enabled:
                return False
            yield clog.wait_completion(version.xmin)
            continue
        return clog.commit_ts(version.xmin) <= snapshot.start_ts


def legacy_deletion_visible(version, snapshot, clog):
    """Generator: the pre-fast-path deletion-visibility check."""
    if version.xmax is None:
        return False
    if snapshot.xid is not None and version.xmax == snapshot.xid:
        return True
    while True:
        status = clog.status(version.xmax)
        if status in (TxnStatus.ABORTED, TxnStatus.IN_PROGRESS):
            return False
        if status is TxnStatus.PREPARED:
            if not clog.prepare_wait_enabled:
                return False
            yield clog.wait_completion(version.xmax)
            continue
        return clog.commit_ts(version.xmax) <= snapshot.start_ts


class LegacyHeapTable:
    """The pre-fast-path MVCC read path: generator frames per version."""

    def __init__(self, clog):
        self.clog = clog
        self._chains = {}

    def put_version(self, key, value, xmin):
        version = LegacyTupleVersion(key, value, xmin)
        self._chains.setdefault(key, []).insert(0, version)
        return version

    def chain(self, key):
        return self._chains.get(key, [])

    def visible_version(self, key, snapshot):
        traversed = 0
        for version in list(self.chain(key)):
            traversed += 1
            created = yield from legacy_creation_visible(version, snapshot, self.clog)
            if not created:
                continue
            deleted = yield from legacy_deletion_visible(version, snapshot, self.clog)
            if deleted:
                return None, traversed
            return version, traversed
        return None, traversed

    def read(self, key, snapshot):
        version, traversed = yield from self.visible_version(key, snapshot)
        if version is None:
            return None, traversed
        return version.value, traversed


class LegacyRowLockTable:
    """The pre-fast-path row lock table: one named event per acquire."""

    def __init__(self, sim, name=""):
        self.sim = sim
        self.name = name
        self._owners = {}
        self._queues = {}

    def acquire(self, key, owner):
        event = self.sim.event(name="rowlock:{}:{}".format(self.name, key))
        current = self._owners.get(key)
        if current is None:
            self._owners[key] = owner
            event.succeed(None)
        elif current == owner:
            event.succeed(None)
        else:
            self._queues.setdefault(key, deque()).append((owner, event))
        return event

    def release(self, key, owner):
        queue = self._queues.get(key)
        while queue:
            next_owner, event = queue.popleft()
            if event.triggered:
                continue
            self._owners[key] = next_owner
            event.succeed(None)
            if not queue:
                del self._queues[key]
            return
        if queue is not None and not queue:
            del self._queues[key]
        del self._owners[key]
