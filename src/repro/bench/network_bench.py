"""Contended-network microbenchmarks and the pump-share demonstration.

Two wall-clock storms exercise the fair-share transfer machinery that the
clean-link RPC fast path bypasses (``rpc_storm`` in
:mod:`repro.bench.kernel_bench` guards that path):

- ``contended_trunk_storm`` — sender processes on both sides of a
  ``multi_az`` topology push mixed-size, mixed-class messages across the
  inter-AZ trunks, so nearly every send joins or leaves a shared link and
  pays a settle + re-share pass over the in-flight set.
- ``reshare_churn_storm`` — short staggered transfers on a single trunk
  with a capped ``MIGRATION_CLASS`` flow always in flight: the worst case
  for the waterfill re-division, every arrival and departure re-prices the
  whole link.

``run_pump_share_sweep`` is not a timing benchmark: it reruns the
``cross_az`` experiment across descending ``pump_share`` values and
records the foreground dip during the snapshot-copy phase. The committed
``BENCH_network.json`` carries the sweep as the repository's standing
demonstration that the dip shrinks monotonically as the migration class is
throttled (the paper's copy-speed/interference trade-off), and the CI
smoke job fails if a change breaks that monotonicity.
"""

from __future__ import annotations

import sys

from repro.bench.kernel_bench import _measure
from repro.config import TierProfiles
from repro.experiments import registry
from repro.sim.kernel import Simulator
from repro.sim.network import MIGRATION_CLASS, Network
from repro.sim.rpc import reliable_roundtrip, reliable_send
from repro.sim.topology import make_topology

#: (senders, messages) per mode for the trunk storm.
_TRUNK_SCALE = {"smoke": (24, 40), "full": (64, 120)}
#: (flows, rounds) per mode for the churn storm.
_CHURN_SCALE = {"smoke": (16, 50), "full": (32, 200)}

#: Descending migration-class caps swept by the demonstration.
PUMP_SHARES = (1.0, 0.5, 0.25)

#: Scaled-down cross_az config for the CI smoke sweep (seconds per share).
_SWEEP_SMOKE_OVERRIDES = {
    "num_tuples": 2000,
    "num_shards": 16,
    "ycsb_clients": 6,
    "warmup": 1.5,
    "settle": 1.0,
}


def _contended_network(sim: Simulator, num_nodes: int) -> Network:
    nodes = ["node-{}".format(i + 1) for i in range(num_nodes)]
    topology = make_topology("multi_az", nodes, TierProfiles().as_profiles())
    return Network.from_topology(sim, topology)


def _contended_trunk_storm(sim: Simulator, senders: int, messages: int) -> int:
    """Mixed-class cross-AZ RPC traffic; returns completed sends."""
    network = _contended_network(sim, num_nodes=8)
    network.set_class_cap(MIGRATION_CLASS, 0.5)
    executed = [0]

    def sender(index: int):
        # Odd senders push AZ 2 -> AZ 1, so both trunk directions carry
        # overlapping flows and every completion re-shares a busy link.
        src = "node-{}".format(index % 4 + 1 if index % 2 == 0 else index % 4 + 5)
        dst = "node-{}".format(index % 4 + 5 if index % 2 == 0 else index % 4 + 1)
        cls = MIGRATION_CLASS if index % 3 == 0 else None
        for hop in range(messages):
            executed[0] += 1
            size = 256 + (index * 37 + hop * 101) % 4096
            if hop % 4 == 0:
                yield from reliable_roundtrip(
                    network, src, dst, size, 64, traffic_class=cls
                )
            else:
                yield from reliable_send(network, src, dst, size, traffic_class=cls)

    for index in range(senders):
        sim.spawn(sender(index), name="trunk-sender")
    sim.run()
    return executed[0]


def _reshare_churn_storm(sim: Simulator, flows: int, rounds: int) -> int:
    """Staggered joins/leaves against a capped bulk flow; returns arrivals."""
    network = _contended_network(sim, num_nodes=4)
    network.set_class_cap(MIGRATION_CLASS, 0.25)
    executed = [0]

    def bulk():
        # A long capped transfer that is always in flight: every foreground
        # arrival and departure below re-divides the trunk around it.
        for _ in range(rounds // 10 + 1):
            yield network.send("node-1", "node-3", 512 * 1024, MIGRATION_CLASS)
            executed[0] += 1

    def churn(index: int):
        yield 0.0001 * index  # staggered joins
        for round_no in range(rounds):
            size = 128 + (index * 53 + round_no * 29) % 1024
            yield network.send("node-2", "node-4", size)
            executed[0] += 1

    sim.spawn(bulk(), name="bulk-flow")
    for index in range(flows):
        sim.spawn(churn(index), name="churn-flow")
    sim.run()
    return executed[0]


def run_network_bench(smoke: bool = False, repeats: int = 3) -> dict:
    """Run the contended storms; returns the ``BENCH_network.json`` payload
    (without the pump-share sweep — ``run_pump_share_sweep`` adds it)."""
    mode = "smoke" if smoke else "full"
    storms = {
        "contended_trunk_storm": _measure(
            _contended_trunk_storm, Simulator, *_TRUNK_SCALE[mode], repeats=repeats
        ),
        "reshare_churn_storm": _measure(
            _reshare_churn_storm, Simulator, *_CHURN_SCALE[mode], repeats=repeats
        ),
    }
    return {
        "bench": "network",
        "mode": mode,
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
        "storms": storms,
    }


def run_pump_share_sweep(smoke: bool = False, seed: int = 0) -> dict:
    """Sweep ``cross_az`` over descending pump shares (see module docstring).

    Returns ``{"shares": [...], "monotonic": bool}`` where each share row
    carries the copy-phase foreground dip and the copy duration. The dip
    must shrink (and the copy stretch) as the share drops; ``monotonic``
    asserts the dip half of that trade-off.
    """
    overrides = dict(_SWEEP_SMOKE_OVERRIDES) if smoke else {}
    rows = []
    for share in PUMP_SHARES:
        result = registry.run(
            "cross_az", approach="remus", seed=seed, pump_share=share, **overrides
        )
        rows.append(
            {
                "pump_share": share,
                "fg_before": round(result.avg_throughput_before, 2),
                "fg_during_copy": round(result.extra["fg_during_copy"], 2),
                "fg_dip": round(result.extra["fg_dip"], 2),
                "copy_duration": round(result.extra["copy_duration"], 4),
                "migration_duration": round(result.extra["migration_duration"], 4),
            }
        )
    dips = [row["fg_dip"] for row in rows]
    return {
        "scenario": "cross_az",
        "approach": "remus",
        "seed": seed,
        "smoke": smoke,
        "shares": rows,
        "monotonic": all(a > b for a, b in zip(dips, dips[1:])),
    }
