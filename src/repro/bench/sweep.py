"""Parallel seed sweep over (scenario, approach) experiment cells.

Fans N seeds x M cells across a :class:`multiprocessing.Pool` and proves the
parallelism is *free*: every cell's :meth:`ExperimentResult.to_dict` payload
is canonicalized (sorted keys, no whitespace) and byte-compared against a
serial rerun when ``verify_serial`` is on. Simulation results depend only on
the seed — never on worker scheduling — so the comparison must be exact.

Aggregation reports mean/p5/p50/p95/p99 of the headline metrics per cell,
which is what the paper-figure benchmarks consume; wall-clock runtimes per
seed ride along so ``BENCH_experiments.json`` doubles as a performance
trajectory.

When the platform cannot start a :class:`multiprocessing.Pool` (sandboxed
CI runners, missing ``/dev/shm`` semaphores), ``run_jobs`` falls back to
in-process serial execution — results are byte-identical either way, so
the fallback only changes wall-clock, never output.
"""

from __future__ import annotations

import json
import multiprocessing
import time

from repro.bench.stats import percentile
from repro.experiments import registry

#: Tiny-scale overrides per scenario, mirroring tests/test_experiments_smoke.py,
#: so ``repro bench --smoke`` finishes in seconds while driving the exact same
#: harness code paths as the calibrated runs.
SMOKE_OVERRIDES = {
    "hybrid_a": dict(
        num_tuples=1200, num_shards=12, ycsb_clients=4, batch_tuples=600,
        num_batches=2, warmup=1.0, settle=1.0, snapshot_cost=3e-4,
        max_sim_time=60.0,
    ),
    "hybrid_b": dict(
        num_tuples=1200, num_shards=12, ycsb_clients=4, batch_tuples=600,
        num_batches=2, warmup=1.0, settle=1.0, snapshot_cost=3e-4,
        analytical_row_cost=5e-4, max_sim_time=60.0,
    ),
    "load_balancing": dict(
        num_tuples=1200, num_shards=12, ycsb_clients=4, warmup=1.0,
        settle=1.0, max_sim_time=60.0,
    ),
    "scale_out": dict(
        num_warehouses=6, warehouses_to_move=2, districts_per_warehouse=2,
        customers_per_district=6, items=12, warmup=1.0, settle=1.0,
        max_sim_time=60.0,
    ),
    "high_contention": dict(
        shard_tuples=800, hot_tuples=40, num_clients=8, warmup=1.0,
        run_after=1.0, max_sim_time=30.0,
    ),
    "cross_az": dict(
        num_tuples=2000, num_shards=16, ycsb_clients=6, warmup=1.5,
        settle=1.0, max_sim_time=60.0,
    ),
}

#: Headline metrics aggregated per cell (taken from the result payload).
_HEADLINE_KEYS = (
    "downtime_longest",
    "downtime_total",
    "avg_throughput_before",
    "avg_throughput_during",
    "avg_latency_before",
    "avg_latency_during",
    "abort_ratio",
)


def canonical_json(payload) -> str:
    """Byte-stable serialization used for cross-worker identity checks."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _run_cell(job):
    """Worker entry point: run one (scenario, approach, seed) cell.

    Top-level (picklable) on purpose; receives a plain dict and returns a
    plain dict so the Pool transport stays trivially serializable.
    """
    started = time.perf_counter()
    result = registry.run(
        job["scenario"],
        approach=job["approach"],
        seed=job["seed"],
        **job.get("overrides", {}),
    )
    runtime = time.perf_counter() - started
    return {
        "scenario": job["scenario"],
        "approach": job["approach"],
        "seed": job["seed"],
        "runtime": runtime,
        "payload": result.to_dict(),
    }


# Kept as a module name for existing callers/tests; one implementation in
# repro.bench.stats so bench and sweep percentiles can never diverge.
_percentile = percentile


def _aggregate(values):
    return {
        "mean": sum(values) / len(values),
        "p5": _percentile(values, 5),
        "p50": _percentile(values, 50),
        "p95": _percentile(values, 95),
        "p99": _percentile(values, 99),
    }


def make_jobs(cells, seeds, overrides_by_scenario=None):
    """Expand (scenario, approach) cells x seed list into worker jobs."""
    overrides_by_scenario = overrides_by_scenario or {}
    jobs = []
    for scenario, approach in cells:
        for seed in seeds:
            jobs.append({
                "scenario": scenario,
                "approach": approach,
                "seed": seed,
                "overrides": overrides_by_scenario.get(scenario, {}),
            })
    return jobs


def run_jobs(jobs, jobs_in_parallel=1):
    """Run every job, across a worker pool when ``jobs_in_parallel > 1``.

    Returns results in job order regardless of worker scheduling, so the
    output is invariant to the pool size. If the pool cannot even start
    (sandboxes without working semaphores or fork support raise ``OSError``
    or ``PermissionError`` from :class:`multiprocessing.Pool`), the sweep
    degrades to in-process serial execution: cells depend only on their
    seed, so the aggregation bytes are identical either way.
    """
    if jobs_in_parallel <= 1 or len(jobs) <= 1:
        return [_run_cell(job) for job in jobs]
    workers = min(jobs_in_parallel, len(jobs))
    try:
        pool = multiprocessing.Pool(processes=workers)
    except (OSError, PermissionError, ImportError, ValueError):
        return [_run_cell(job) for job in jobs]
    with pool:
        return pool.map(_run_cell, jobs)


def run_sweep(
    cells,
    seeds,
    jobs_in_parallel=1,
    overrides_by_scenario=None,
    verify_serial=False,
):
    """Sweep seeds x cells; returns the ``BENCH_experiments.json`` payload.

    With ``verify_serial``, every cell is rerun serially in-process and the
    canonical JSON payloads must match the pool's byte for byte — the proof
    that the parallel fan-out cannot change any result.
    """
    jobs = make_jobs(cells, seeds, overrides_by_scenario)
    results = run_jobs(jobs, jobs_in_parallel=jobs_in_parallel)

    serial_identical = None
    if verify_serial:
        serial = [_run_cell(job) for job in jobs]
        mismatches = [
            "{}/{} seed {}".format(p["scenario"], p["approach"], p["seed"])
            for p, s in zip(results, serial)
            if canonical_json(p["payload"]) != canonical_json(s["payload"])
        ]
        if mismatches:
            raise AssertionError(
                "parallel sweep diverged from serial on: " + ", ".join(mismatches)
            )
        serial_identical = True

    by_cell = {}
    for item in results:
        key = "{}/{}".format(item["scenario"], item["approach"])
        by_cell.setdefault(key, []).append(item)

    cells_payload = {}
    for key, items in by_cell.items():
        items.sort(key=lambda item: item["seed"])
        runtimes = [item["runtime"] for item in items]
        metrics = {}
        for metric in _HEADLINE_KEYS:
            values = [item["payload"].get(metric) for item in items]
            values = [v for v in values if isinstance(v, (int, float))]
            if values:
                metrics[metric] = _aggregate(values)
        cells_payload[key] = {
            "seeds": [item["seed"] for item in items],
            "runtime_sec": {
                "per_seed": [round(r, 4) for r in runtimes],
                **{k: round(v, 4) for k, v in _aggregate(runtimes).items()},
            },
            "metrics": metrics,
        }

    return {
        "bench": "experiments",
        "seeds": list(seeds),
        "jobs": jobs_in_parallel,
        "serial_identical": serial_identical,
        "cells": cells_payload,
    }


def default_cells(scenarios=None, approaches=None, smoke=False):
    """(scenario, approach) product restricted to what each scenario supports.

    ``smoke`` keeps one representative approach per scenario ("remus") so the
    CI smoke sweep stays fast; otherwise every registered approach runs.
    """
    cells = []
    for name in scenarios or registry.names():
        spec = registry.get(name)
        if smoke and not approaches:
            wanted = (spec.default_approach,)
        else:
            wanted = approaches or spec.approaches
        for approach in wanted:
            if approach in spec.approaches:
                cells.append((name, approach))
    return cells
