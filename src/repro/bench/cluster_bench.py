"""Storm-scale cluster benchmark: ``repro bench --cluster``.

The ROADMAP's storm target — 100+ nodes, 1M+ simulated clients, a live
migration in flight — is unreachable with one generator process per client:
the per-client driver pays O(population) processes for O(arrivals) work.
This bench measures the two mechanisms that close the gap, end to end on a
real cluster (sessions, MVCC, 2PC, the Remus migration — nothing mocked):

- ``per_client_storm`` — the legacy driving shape
  (:class:`~repro.workloads.batch.PopulationWorkload` with
  ``fastpath.batch_workload`` off), run at a **reference population**
  (``population / PER_CLIENT_DIVISOR``) because materializing a million
  pacer processes is exactly the cost being removed; the ratio of clients
  to transactions matches the full storm, so per-transaction overhead —
  and therefore events/sec — is comparable across the scales.
- ``batch_storm`` — the vectorized arrival engine (``batch_workload`` on)
  at the **full** population. The acceptance floor
  (:data:`MIN_BATCH_SPEEDUP`) pins batch events/sec at >= 5x the
  per-client reference.
- ``partitioned_storm`` — the batch engine on the partitioned event loop
  (:class:`~repro.sim.partition.PartitionedSimulator`, one partition per
  AZ), reported separately: same spec, windowed conservative drain.
- ``parallel_reference_storm`` / ``parallel_storm_wN`` — the parallel
  drain cells (``fastpath.parallel_drain``): a *partition-closed* variant
  of the storm (key-routed coordinators, no migration) run once on the
  single loop as the identity reference, then on
  :class:`~repro.sim.parallel.ParallelSimulator` workers at 1/2/4 worker
  counts. Every parallel cell's merged sorted timeline must hash to the
  reference's digest (``identity_ok``), and the ``parallel`` block records
  worker-count scaling plus the floor :func:`check_parallel_gate`
  enforces on multi-core hosts.

"Events" here are **completed transactions** (committed + aborted), the
storm's unit of useful work; raw kernel event counts ride along as
``kernel_events``. Simulated commit-latency percentiles (p50/p95/p99) come
from the cluster metrics, and wall-clock repeat percentiles from
:func:`repro.bench.stats.wall_stats` — both storm-scale trend lines the
ISSUE asks ``BENCH_cluster.json`` to carry.

The storm includes a flash-crowd ramp, hot-key drift, and a Remus
migration of ``migrate_shards`` shards off ``node-1`` while arrivals are
in flight. Arrivals capped by ``storm_batch_cap`` are counted
(``capped_arrivals``), never silently dropped.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
from dataclasses import asdict, dataclass, replace

from repro import fastpath
from repro.bench.stats import (
    distribution,
    per_window_rates,
    wall_stats,
    worker_utilization,
)
from repro.bench.sweep import canonical_json
from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, TierProfiles
from repro.migration import MigrationPlan, RemusMigration, run_plan
from repro.sim.parallel import ParallelSimulator, deal_partitions, run_partition_jobs
from repro.sim.partition import PartitionedSimulator
from repro.sim.topology import Topology
from repro.workloads.batch import TABLE, PopulationConfig, PopulationWorkload

#: Full-storm population over the per-client reference population. The
#: clients-per-transaction ratio is what this preserves: both storms spawn
#: the same driver overhead per unit of work, so events/sec compares fairly.
PER_CLIENT_DIVISOR = 20

#: Acceptance floor: batch events/sec over the per-client reference.
MIN_BATCH_SPEEDUP = 5.0

#: Worker counts measured by the parallel-drain cells.
PARALLEL_WORKER_COUNTS = (1, 2, 4)

#: Scaling floor: best multi-worker events/sec over the one-worker cell.
#: Enforced by :func:`check_parallel_gate` only for runs that actually
#: fanned out on a multi-core host — a single-core runner measures pure
#: process overhead, not scaling.
MIN_PARALLEL_SCALING = 1.15


@dataclass(frozen=True)
class StormSpec:
    """One storm's scale knobs (committed into ``BENCH_cluster.json``)."""

    name: str
    num_nodes: int
    num_groups: int  # AZs; partitions under the partitioned loop
    population: int
    rate_per_client: float  # txns per second per client
    duration: float  # virtual seconds of arrivals
    tick: float  # arrival-draw tick (ClusterConfig.storm_arrival_tick)
    batch_cap: int  # arrivals admitted per tick (storm_batch_cap)
    num_tuples: int
    num_shards: int
    read_ratio: float
    zipf_theta: float
    drift_keys_per_sec: float
    ramps: tuple  # flash-crowd (time, multiplier) breakpoints
    migrate_shards: int  # shards moved off node-1 mid-storm (0 = none)
    migrate_at: float
    seed: int = 0
    route_by_key: bool = False  # key-owner coordinators (partition-closed)


#: The committed storm: 100 nodes in 10 AZs, 1M clients, migration at t=2.
FULL_SPEC = StormSpec(
    name="storm_full",
    num_nodes=100,
    num_groups=10,
    population=1_000_000,
    rate_per_client=0.0002,
    duration=10.0,
    tick=0.05,
    batch_cap=8192,
    num_tuples=20_000,
    num_shards=200,
    read_ratio=0.8,
    zipf_theta=0.99,
    drift_keys_per_sec=50.0,
    ramps=((0.0, 1.0), (5.0, 1.0), (6.0, 4.0), (8.0, 4.0), (9.0, 1.0)),
    migrate_shards=2,
    migrate_at=2.0,
)

#: CI scale: same clients-per-transaction ratio (rate x duration matches
#: the full spec), ~1/4 the node count, 1/4 the population.
SMOKE_SPEC = StormSpec(
    name="storm_smoke",
    num_nodes=20,
    num_groups=4,
    population=250_000,
    rate_per_client=0.0005,
    duration=4.0,
    tick=0.05,
    batch_cap=8192,
    num_tuples=5_000,
    num_shards=40,
    read_ratio=0.8,
    zipf_theta=0.99,
    drift_keys_per_sec=50.0,
    ramps=((0.0, 1.0), (2.0, 1.0), (2.5, 4.0), (3.2, 4.0), (3.6, 1.0)),
    migrate_shards=2,
    migrate_at=1.0,
)


def storm_topology(spec: StormSpec) -> Topology:
    """One region, ``num_groups`` AZs of one rack each, nodes dealt
    contiguously — uncontended, as the partitioned loop requires."""
    node_ids = ["node-{}".format(i + 1) for i in range(spec.num_nodes)]
    base, extra = divmod(len(node_ids), spec.num_groups)
    azs = {}
    cursor = 0
    for index in range(spec.num_groups):
        count = base + (1 if index < extra else 0)
        azs["az-{}".format(index + 1)] = {"rack-1": node_ids[cursor : cursor + count]}
        cursor += count
    return Topology.build(
        {"region-1": azs},
        TierProfiles().as_profiles(),
        contended=False,
        name="storm",
    )


def _build_cluster(spec: StormSpec, partitioned: bool, sim=None) -> Cluster:
    topology = storm_topology(spec)
    config = ClusterConfig(
        num_nodes=spec.num_nodes,
        topology=topology,
        storm_population=spec.population,
        storm_arrival_tick=spec.tick,
        storm_batch_cap=spec.batch_cap,
        seed=spec.seed,
    )
    if sim is None and partitioned:
        sim = PartitionedSimulator.for_topology(topology, seed=spec.seed)
    return Cluster(config, sim=sim)


def _population_config(spec: StormSpec) -> PopulationConfig:
    return PopulationConfig(
        rate_per_client=spec.rate_per_client,
        num_tuples=spec.num_tuples,
        num_shards=spec.num_shards,
        read_ratio=spec.read_ratio,
        zipf_theta=spec.zipf_theta,
        drift_keys_per_sec=spec.drift_keys_per_sec,
        ramps=spec.ramps,
        route_by_key=spec.route_by_key,
    )


def _sorted_timelines(cluster) -> tuple[list, list]:
    """The storm's sorted commit/abort timelines — the identity unit.

    Transaction ids and kernel sequence numbers never appear: they depend
    on which partitions a worker drains. What is compared is what the
    paper's figures are made of — when transactions finished, with what
    latency, and how the table ended up.
    """
    commits = sorted(
        (record.time, record.label, record.latency, record.weight)
        for record in cluster.metrics.commits
    )
    aborts = sorted(
        (record.time, record.label, record.kind)
        for record in cluster.metrics.aborts
    )
    return commits, aborts


def _identity_payload(cluster, workload) -> dict:
    commits, aborts = _sorted_timelines(cluster)
    return {
        "commits": commits,
        "aborts": aborts,
        "committed": workload.committed,
        "aborted": workload.aborted,
        "dispatched": workload.dispatched,
        "capped_arrivals": workload.capped_arrivals,
        "dump": sorted(cluster.dump_table(TABLE).items()),
    }


def timeline_digest(identity: dict) -> str:
    """Short sha256 of the canonical identity payload (the pinned unit in
    ``tests/test_fastpath_equivalence.py``)."""
    return hashlib.sha256(canonical_json(identity).encode()).hexdigest()[:16]


def _migration_driver(cluster, spec, finished):
    yield spec.migrate_at
    shards = cluster.shards_on_node("node-1", table=TABLE)[: spec.migrate_shards]
    plan = MigrationPlan(RemusMigration, [(shards, "node-1", "node-2")])
    yield from run_plan(cluster, plan)
    finished.append(cluster.sim.now)


def run_storm(spec: StormSpec, mode: str, collect_identity: bool = False) -> dict:
    """Run one storm; returns its raw measurement (single repeat).

    ``mode``: ``per_client`` (batch_workload off), ``batch`` (on), or
    ``partitioned`` (on, over a :class:`PartitionedSimulator`).
    ``collect_identity`` adds the sorted-timeline identity payload the
    parallel cells are compared against.
    """
    if mode not in ("per_client", "batch", "partitioned"):
        raise ValueError("unknown storm mode {!r}".format(mode))
    partitioned = mode == "partitioned"
    with fastpath.overridden(
        batch_workload=mode != "per_client", partitioned_loop=partitioned
    ):
        cluster = _build_cluster(spec, partitioned)
        workload = PopulationWorkload(cluster, _population_config(spec))
        workload.create()
        migration_done = []
        if spec.migrate_shards:
            cluster.spawn(
                _migration_driver(cluster, spec, migration_done),
                name="storm-migration",
            )
        started = time.perf_counter()
        workload.start(until=spec.duration)
        cluster.run(until=spec.duration)
        seconds = time.perf_counter() - started
        workload.stop()
        latencies = [record.latency for record in cluster.metrics.commits]
        events = workload.committed + workload.aborted
        result = {
            "events": events,
            "seconds": round(seconds, 6),
            "committed": workload.committed,
            "aborted": workload.aborted,
            "dispatched": workload.dispatched,
            "capped_arrivals": workload.capped_arrivals,
            "kernel_events": cluster.sim._seq,
            "population": workload.population,
            "latency": distribution(latencies) if latencies else None,
            "migration_finished_at": (
                round(migration_done[0], 6) if migration_done else None
            ),
        }
        if collect_identity:
            result["identity"] = _identity_payload(cluster, workload)
        return result


def _measure_storm(
    spec: StormSpec, mode: str, repeats: int, collect_identity: bool = False
) -> dict:
    """Best-of-``repeats`` with the p50/p95/p99 wall distribution."""
    samples = []
    best = None
    for _ in range(repeats):
        result = run_storm(spec, mode, collect_identity=collect_identity)
        samples.append(result["seconds"])
        if best is None or result["seconds"] < best["seconds"]:
            best = result
    best = dict(best)
    best["events_per_sec"] = round(best["events"] / best["seconds"], 1)
    best["wall"] = wall_stats(samples)
    return best


# ----------------------------------------------------------------------
# Parallel drain cells (fastpath.parallel_drain)
# ----------------------------------------------------------------------
def _parallel_worker(job: dict) -> dict:
    """Pool entry point: one worker's replica of the storm.

    Top-level and dict-in/dict-out on purpose (the ``repro sweep``
    shuttle contract). Rebuilds the whole cluster deterministically from
    the spec, drains only the owned partitions, and reports this worker's
    slice of the timeline plus its replicated control-plane totals.
    """
    spec = StormSpec(**job["spec"])
    owned = [int(pid) for pid in job["owned"]]
    with fastpath.overridden(
        batch_workload=True, partitioned_loop=True, parallel_drain=True
    ):
        topology = storm_topology(spec)
        sim = ParallelSimulator.for_topology(topology, seed=spec.seed, owned=owned)
        cluster = _build_cluster(spec, partitioned=True, sim=sim)
        workload = PopulationWorkload(cluster, _population_config(spec))
        workload.create()
        started = time.perf_counter()
        workload.start(until=spec.duration)
        cluster.run(until=spec.duration)
        busy = time.perf_counter() - started
        workload.stop()
        owned_set = set(owned)
        shards = [
            shard_id
            for shard_id in cluster.tables[TABLE].shard_ids()
            if sim.node_partition(cluster.shard_owner(shard_id)) in owned_set
        ]
        commits, aborts = _sorted_timelines(cluster)
        return {
            "owned": owned,
            "busy_seconds": round(busy, 6),
            "commits": commits,
            "aborts": aborts,
            "committed": workload.committed,
            "aborted": workload.aborted,
            "dispatched": workload.dispatched,
            "capped_arrivals": workload.capped_arrivals,
            "population": workload.population,
            "events_drained": sim.events_drained,
            "windows": sim.drain.windows,
            "barrier_msgs": sim.drain.barrier_msgs,
            "barrier_exchanges": sim.drain.barrier_exchanges,
            "reflected_msgs": sim.drain.reflected_msgs,
            "dump": sorted(cluster.dump_table(TABLE, shards=shards).items()),
        }


def _merge_parallel_reports(reports: list) -> dict:
    """Merge per-worker reports into the single-loop identity payload.

    Raises when the shared-nothing invariants are violated: overlapping
    ownership, or a replicated control plane that diverged (every worker
    runs the same dispatcher, so ``dispatched``/``capped_arrivals`` must
    be bit-equal across workers).
    """
    owned_all = sorted(pid for report in reports for pid in report["owned"])
    if len(set(owned_all)) != len(owned_all):
        raise AssertionError(
            "parallel workers own overlapping partitions: {}".format(owned_all)
        )
    first = reports[0]
    for report in reports[1:]:
        if (
            report["dispatched"] != first["dispatched"]
            or report["capped_arrivals"] != first["capped_arrivals"]
        ):
            raise AssertionError(
                "replicated control plane diverged across workers: "
                "dispatched {} vs {}, capped {} vs {}".format(
                    report["dispatched"],
                    first["dispatched"],
                    report["capped_arrivals"],
                    first["capped_arrivals"],
                )
            )
    commits = sorted(tuple(c) for report in reports for c in report["commits"])
    aborts = sorted(tuple(a) for report in reports for a in report["aborts"])
    dump: dict = {}
    for report in reports:
        for key, value in report["dump"]:
            dump[key] = value
    return {
        "commits": commits,
        "aborts": aborts,
        "committed": sum(report["committed"] for report in reports),
        "aborted": sum(report["aborted"] for report in reports),
        "dispatched": first["dispatched"],
        "capped_arrivals": first["capped_arrivals"],
        "dump": sorted(dump.items()),
    }


def run_parallel_storm(spec: StormSpec, workers: int) -> dict:
    """Run the storm under the parallel window drain; single repeat.

    With ``fastpath.parallel_drain`` off (the default) or one worker, the
    whole storm runs as a single in-process job owning every partition —
    exactly the serial windowed drain — so the flag's default cannot change
    any result, only deny the fan-out.
    """
    num_partitions = spec.num_groups
    serial_job = {"spec": asdict(spec), "owned": list(range(1, num_partitions + 1))}
    if workers <= 1 or not fastpath.parallel_drain:
        jobs = [serial_job]
    else:
        jobs = [
            {"spec": asdict(spec), "owned": owned}
            for owned in deal_partitions(num_partitions, workers)
        ]
    reports, pool_used, seconds = run_partition_jobs(
        jobs, _parallel_worker, serial_job
    )
    identity = _merge_parallel_reports(reports)
    events = identity["committed"] + identity["aborted"]
    busy = [report["busy_seconds"] for report in reports]
    events_drained = sum(report["events_drained"] for report in reports)
    latencies = [commit[2] for commit in identity["commits"]]
    return {
        "events": events,
        "seconds": round(seconds, 6),
        "committed": identity["committed"],
        "aborted": identity["aborted"],
        "dispatched": identity["dispatched"],
        "capped_arrivals": identity["capped_arrivals"],
        "population": reports[0]["population"],
        "workers": len(jobs),
        "pool_used": pool_used,
        "windows": reports[0]["windows"],
        "barrier_msgs": sum(report["barrier_msgs"] for report in reports),
        "barrier_exchanges": sum(report["barrier_exchanges"] for report in reports),
        "reflected_msgs": sum(report["reflected_msgs"] for report in reports),
        "events_drained": events_drained,
        "window_rate": per_window_rates(
            events_drained, reports[0]["windows"], seconds
        ),
        "utilization": worker_utilization(busy, seconds),
        "latency": distribution(latencies) if latencies else None,
        "identity": identity,
    }


def _measure_parallel_storm(spec: StormSpec, workers: int, repeats: int) -> dict:
    samples = []
    best = None
    for _ in range(repeats):
        result = run_parallel_storm(spec, workers)
        samples.append(result["seconds"])
        if best is None or result["seconds"] < best["seconds"]:
            best = result
    best = dict(best)
    best["events_per_sec"] = round(best["events"] / best["seconds"], 1)
    best["wall"] = wall_stats(samples)
    return best


def check_parallel_gate(payload: dict, baseline: dict | None = None) -> list:
    """CI gate over the parallel-drain cells; returns failure strings.

    Identity is absolute: the merged parallel timeline must hash to the
    single-loop reference in *this* run, at any scale, pool or fallback.
    The scaling floor applies to a payload only when its own run fanned
    out on a pool with enough host cores to mean anything — checked for
    the current payload and for the committed full-scale ``baseline``.
    """
    failures = []
    block = payload.get("parallel")
    if block is None:
        return failures
    if not block["identity_ok"]:
        failures.append(
            "cluster parallel drain timeline diverged from the single loop "
            "(reference digest {})".format(block["timeline_digest"])
        )
    for label, candidate in (("", block), (" (baseline)", (baseline or {}).get("parallel"))):
        if not candidate:
            continue
        if not candidate.get("pool_used") or candidate.get("host_cpus", 1) < 2:
            continue
        if candidate["speedup_best_vs_w1"] < candidate["min_scaling"]:
            failures.append(
                "cluster parallel drain scales only {:.2f}x over one worker"
                "{} (floor {:.2f}x at {} cpus)".format(
                    candidate["speedup_best_vs_w1"],
                    label,
                    candidate["min_scaling"],
                    candidate.get("host_cpus", 1),
                )
            )
    return failures


def run_cluster_bench(smoke: bool = False, repeats: int = 3) -> dict:
    """Run every storm mode; returns the ``BENCH_cluster.json`` payload."""
    spec = SMOKE_SPEC if smoke else FULL_SPEC
    reference = replace(
        spec,
        name=spec.name + "_reference",
        population=spec.population // PER_CLIENT_DIVISOR,
    )
    storms = {
        "per_client_storm": _measure_storm(reference, "per_client", repeats),
        "batch_storm": _measure_storm(spec, "batch", repeats),
        "partitioned_storm": _measure_storm(spec, "partitioned", repeats),
    }

    # Parallel drain: the partition-closed storm variant (key-routed
    # coordinators, no migration — see repro.sim.parallel), first on the
    # single loop as the identity reference, then per worker count.
    parallel_spec = replace(
        spec, name=spec.name + "_parallel", migrate_shards=0, route_by_key=True
    )
    parallel_reference = _measure_storm(
        parallel_spec, "batch", repeats, collect_identity=True
    )
    reference_digest = timeline_digest(parallel_reference.pop("identity"))
    parallel_reference["timeline_digest"] = reference_digest
    storms["parallel_reference_storm"] = parallel_reference

    identity_ok = True
    pool_used = False
    by_workers = {}
    with fastpath.overridden(parallel_drain=True):
        for workers in PARALLEL_WORKER_COUNTS:
            cell = _measure_parallel_storm(parallel_spec, workers, repeats)
            digest = timeline_digest(cell.pop("identity"))
            cell["timeline_digest"] = digest
            cell["identity_ok"] = (
                digest == reference_digest and cell["reflected_msgs"] == 0
            )
            identity_ok = identity_ok and cell["identity_ok"]
            pool_used = pool_used or cell["pool_used"]
            by_workers[workers] = cell["events_per_sec"]
            storms["parallel_storm_w{}".format(workers)] = cell

    multi = [by_workers[w] for w in by_workers if w > 1]
    speedup_best = round(max(multi) / by_workers[1], 3) if multi else 1.0

    per_client = storms["per_client_storm"]["events_per_sec"]
    batch = storms["batch_storm"]["events_per_sec"]
    partitioned = storms["partitioned_storm"]["events_per_sec"]
    return {
        "bench": "cluster",
        "mode": "smoke" if smoke else "full",
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
        "spec": asdict(spec),
        "reference_population": reference.population,
        "min_batch_speedup": MIN_BATCH_SPEEDUP,
        "storms": storms,
        "speedup_batch_vs_per_client": round(batch / per_client, 3),
        "speedup_partitioned_vs_per_client": round(partitioned / per_client, 3),
        "parallel": {
            "identity_ok": identity_ok,
            "timeline_digest": reference_digest,
            "worker_counts": list(PARALLEL_WORKER_COUNTS),
            "events_per_sec_by_workers": {
                str(w): rate for w, rate in sorted(by_workers.items())
            },
            "speedup_best_vs_w1": speedup_best,
            "min_scaling": MIN_PARALLEL_SCALING,
            "host_cpus": os.cpu_count() or 1,
            "pool_used": pool_used,
        },
    }
