"""Storm-scale cluster benchmark: ``repro bench --cluster``.

The ROADMAP's storm target — 100+ nodes, 1M+ simulated clients, a live
migration in flight — is unreachable with one generator process per client:
the per-client driver pays O(population) processes for O(arrivals) work.
This bench measures the two mechanisms that close the gap, end to end on a
real cluster (sessions, MVCC, 2PC, the Remus migration — nothing mocked):

- ``per_client_storm`` — the legacy driving shape
  (:class:`~repro.workloads.batch.PopulationWorkload` with
  ``fastpath.batch_workload`` off), run at a **reference population**
  (``population / PER_CLIENT_DIVISOR``) because materializing a million
  pacer processes is exactly the cost being removed; the ratio of clients
  to transactions matches the full storm, so per-transaction overhead —
  and therefore events/sec — is comparable across the scales.
- ``batch_storm`` — the vectorized arrival engine (``batch_workload`` on)
  at the **full** population. The acceptance floor
  (:data:`MIN_BATCH_SPEEDUP`) pins batch events/sec at >= 5x the
  per-client reference.
- ``partitioned_storm`` — the batch engine on the partitioned event loop
  (:class:`~repro.sim.partition.PartitionedSimulator`, one partition per
  AZ), reported separately: same spec, windowed conservative drain.

"Events" here are **completed transactions** (committed + aborted), the
storm's unit of useful work; raw kernel event counts ride along as
``kernel_events``. Simulated commit-latency percentiles (p50/p95/p99) come
from the cluster metrics, and wall-clock repeat percentiles from
:func:`repro.bench.stats.wall_stats` — both storm-scale trend lines the
ISSUE asks ``BENCH_cluster.json`` to carry.

The storm includes a flash-crowd ramp, hot-key drift, and a Remus
migration of ``migrate_shards`` shards off ``node-1`` while arrivals are
in flight. Arrivals capped by ``storm_batch_cap`` are counted
(``capped_arrivals``), never silently dropped.
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict, dataclass, replace

from repro import fastpath
from repro.bench.stats import distribution, wall_stats
from repro.cluster.cluster import Cluster
from repro.config import ClusterConfig, TierProfiles
from repro.migration import MigrationPlan, RemusMigration, run_plan
from repro.sim.partition import PartitionedSimulator
from repro.sim.topology import Topology
from repro.workloads.batch import TABLE, PopulationConfig, PopulationWorkload

#: Full-storm population over the per-client reference population. The
#: clients-per-transaction ratio is what this preserves: both storms spawn
#: the same driver overhead per unit of work, so events/sec compares fairly.
PER_CLIENT_DIVISOR = 20

#: Acceptance floor: batch events/sec over the per-client reference.
MIN_BATCH_SPEEDUP = 5.0


@dataclass(frozen=True)
class StormSpec:
    """One storm's scale knobs (committed into ``BENCH_cluster.json``)."""

    name: str
    num_nodes: int
    num_groups: int  # AZs; partitions under the partitioned loop
    population: int
    rate_per_client: float  # txns per second per client
    duration: float  # virtual seconds of arrivals
    tick: float  # arrival-draw tick (ClusterConfig.storm_arrival_tick)
    batch_cap: int  # arrivals admitted per tick (storm_batch_cap)
    num_tuples: int
    num_shards: int
    read_ratio: float
    zipf_theta: float
    drift_keys_per_sec: float
    ramps: tuple  # flash-crowd (time, multiplier) breakpoints
    migrate_shards: int  # shards moved off node-1 mid-storm (0 = none)
    migrate_at: float
    seed: int = 0


#: The committed storm: 100 nodes in 10 AZs, 1M clients, migration at t=2.
FULL_SPEC = StormSpec(
    name="storm_full",
    num_nodes=100,
    num_groups=10,
    population=1_000_000,
    rate_per_client=0.0002,
    duration=10.0,
    tick=0.05,
    batch_cap=8192,
    num_tuples=20_000,
    num_shards=200,
    read_ratio=0.8,
    zipf_theta=0.99,
    drift_keys_per_sec=50.0,
    ramps=((0.0, 1.0), (5.0, 1.0), (6.0, 4.0), (8.0, 4.0), (9.0, 1.0)),
    migrate_shards=2,
    migrate_at=2.0,
)

#: CI scale: same clients-per-transaction ratio (rate x duration matches
#: the full spec), ~1/4 the node count, 1/4 the population.
SMOKE_SPEC = StormSpec(
    name="storm_smoke",
    num_nodes=20,
    num_groups=4,
    population=250_000,
    rate_per_client=0.0005,
    duration=4.0,
    tick=0.05,
    batch_cap=8192,
    num_tuples=5_000,
    num_shards=40,
    read_ratio=0.8,
    zipf_theta=0.99,
    drift_keys_per_sec=50.0,
    ramps=((0.0, 1.0), (2.0, 1.0), (2.5, 4.0), (3.2, 4.0), (3.6, 1.0)),
    migrate_shards=2,
    migrate_at=1.0,
)


def storm_topology(spec: StormSpec) -> Topology:
    """One region, ``num_groups`` AZs of one rack each, nodes dealt
    contiguously — uncontended, as the partitioned loop requires."""
    node_ids = ["node-{}".format(i + 1) for i in range(spec.num_nodes)]
    base, extra = divmod(len(node_ids), spec.num_groups)
    azs = {}
    cursor = 0
    for index in range(spec.num_groups):
        count = base + (1 if index < extra else 0)
        azs["az-{}".format(index + 1)] = {"rack-1": node_ids[cursor : cursor + count]}
        cursor += count
    return Topology.build(
        {"region-1": azs},
        TierProfiles().as_profiles(),
        contended=False,
        name="storm",
    )


def _build_cluster(spec: StormSpec, partitioned: bool) -> Cluster:
    topology = storm_topology(spec)
    config = ClusterConfig(
        num_nodes=spec.num_nodes,
        topology=topology,
        storm_population=spec.population,
        storm_arrival_tick=spec.tick,
        storm_batch_cap=spec.batch_cap,
        seed=spec.seed,
    )
    sim = None
    if partitioned:
        sim = PartitionedSimulator.for_topology(topology, seed=spec.seed)
    return Cluster(config, sim=sim)


def _migration_driver(cluster, spec, finished):
    yield spec.migrate_at
    shards = cluster.shards_on_node("node-1", table=TABLE)[: spec.migrate_shards]
    plan = MigrationPlan(RemusMigration, [(shards, "node-1", "node-2")])
    yield from run_plan(cluster, plan)
    finished.append(cluster.sim.now)


def run_storm(spec: StormSpec, mode: str) -> dict:
    """Run one storm; returns its raw measurement (single repeat).

    ``mode``: ``per_client`` (batch_workload off), ``batch`` (on), or
    ``partitioned`` (on, over a :class:`PartitionedSimulator`).
    """
    if mode not in ("per_client", "batch", "partitioned"):
        raise ValueError("unknown storm mode {!r}".format(mode))
    partitioned = mode == "partitioned"
    with fastpath.overridden(
        batch_workload=mode != "per_client", partitioned_loop=partitioned
    ):
        cluster = _build_cluster(spec, partitioned)
        workload = PopulationWorkload(
            cluster,
            PopulationConfig(
                rate_per_client=spec.rate_per_client,
                num_tuples=spec.num_tuples,
                num_shards=spec.num_shards,
                read_ratio=spec.read_ratio,
                zipf_theta=spec.zipf_theta,
                drift_keys_per_sec=spec.drift_keys_per_sec,
                ramps=spec.ramps,
            ),
        )
        workload.create()
        migration_done = []
        if spec.migrate_shards:
            cluster.spawn(
                _migration_driver(cluster, spec, migration_done),
                name="storm-migration",
            )
        started = time.perf_counter()
        workload.start(until=spec.duration)
        cluster.run(until=spec.duration)
        seconds = time.perf_counter() - started
        workload.stop()
        latencies = [record.latency for record in cluster.metrics.commits]
        events = workload.committed + workload.aborted
        return {
            "events": events,
            "seconds": round(seconds, 6),
            "committed": workload.committed,
            "aborted": workload.aborted,
            "dispatched": workload.dispatched,
            "capped_arrivals": workload.capped_arrivals,
            "kernel_events": cluster.sim._seq,
            "population": workload.population,
            "latency": distribution(latencies) if latencies else None,
            "migration_finished_at": (
                round(migration_done[0], 6) if migration_done else None
            ),
        }


def _measure_storm(spec: StormSpec, mode: str, repeats: int) -> dict:
    """Best-of-``repeats`` with the p50/p95/p99 wall distribution."""
    samples = []
    best = None
    for _ in range(repeats):
        result = run_storm(spec, mode)
        samples.append(result["seconds"])
        if best is None or result["seconds"] < best["seconds"]:
            best = result
    best = dict(best)
    best["events_per_sec"] = round(best["events"] / best["seconds"], 1)
    best["wall"] = wall_stats(samples)
    return best


def run_cluster_bench(smoke: bool = False, repeats: int = 3) -> dict:
    """Run every storm mode; returns the ``BENCH_cluster.json`` payload."""
    spec = SMOKE_SPEC if smoke else FULL_SPEC
    reference = replace(
        spec,
        name=spec.name + "_reference",
        population=spec.population // PER_CLIENT_DIVISOR,
    )
    storms = {
        "per_client_storm": _measure_storm(reference, "per_client", repeats),
        "batch_storm": _measure_storm(spec, "batch", repeats),
        "partitioned_storm": _measure_storm(spec, "partitioned", repeats),
    }
    per_client = storms["per_client_storm"]["events_per_sec"]
    batch = storms["batch_storm"]["events_per_sec"]
    partitioned = storms["partitioned_storm"]["events_per_sec"]
    return {
        "bench": "cluster",
        "mode": "smoke" if smoke else "full",
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
        "spec": asdict(spec),
        "reference_population": reference.population,
        "min_batch_speedup": MIN_BATCH_SPEEDUP,
        "storms": storms,
        "speedup_batch_vs_per_client": round(batch / per_client, 3),
        "speedup_partitioned_vs_per_client": round(partitioned / per_client, 3),
    }
