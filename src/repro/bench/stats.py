"""Shared percentile helpers for bench and sweep reporting.

One interpolated-percentile implementation used by every bench payload
(kernel/txn/migration/network/cluster storms and the experiment sweep), so
``p50`` means the same thing in every JSON file and text table.
"""

from __future__ import annotations

#: The load-test-style report columns every bench emits.
REPORT_QUANTILES = (50, 95, 99)


def percentile(values, q):
    """Interpolated percentile (q in [0, 100]) of a non-empty sequence."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def distribution(values, digits=6):
    """``{"p50": ..., "p95": ..., "p99": ...}`` of a non-empty sequence."""
    return {
        "p{}".format(q): round(percentile(values, q), digits)
        for q in REPORT_QUANTILES
    }


def per_window_rates(events_drained, windows, seconds, digits=3):
    """Window-granularity throughput for the partitioned/parallel drain.

    ``events_drained`` kernel events executed, ``windows`` conservative
    windows run, ``seconds`` host wall clock. Separates "how much work a
    window carries" (events/window) from "how fast windows turn over"
    (windows/sec) — a scaling loss shows up in the second number when
    barrier overhead dominates, in the first when partitions are starved.
    """
    if not windows or not seconds:
        return None
    return {
        "windows": windows,
        "events_per_window": round(events_drained / windows, digits),
        "windows_per_sec": round(windows / seconds, 1),
    }


def worker_utilization(busy_seconds, wall_seconds, digits=4):
    """Per-worker busy fractions of one parallel exchange.

    ``busy_seconds`` is each worker's build+run wall clock; ``wall_seconds``
    the parent's wall around the whole shuttle (pool start, runs,
    transport, merge). The gap between ``mean_busy_fraction`` and 1.0 is
    where barrier/transport time goes.
    """
    if not busy_seconds or not wall_seconds:
        return None
    fractions = [round(min(1.0, b / wall_seconds), digits) for b in busy_seconds]
    return {
        "per_worker_busy_sec": [round(b, 6) for b in busy_seconds],
        "busy_fraction": fractions,
        "mean_busy_fraction": round(sum(fractions) / len(fractions), digits),
    }


def wall_stats(samples, digits=6):
    """Wall-clock repeat summary: best + p50/p95/p99 + the sample count.

    ``samples`` are the per-repeat wall-clock seconds of one storm. The
    headline events/sec stays best-of (least-noise), but the distribution
    rides along so ``BENCH_*.json`` doubles as a noise record.
    """
    return dict(
        distribution(samples, digits=digits),
        best=round(min(samples), digits),
        repeats=len(samples),
    )
