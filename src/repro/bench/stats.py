"""Shared percentile helpers for bench and sweep reporting.

One interpolated-percentile implementation used by every bench payload
(kernel/txn/migration/network/cluster storms and the experiment sweep), so
``p50`` means the same thing in every JSON file and text table.
"""

from __future__ import annotations

#: The load-test-style report columns every bench emits.
REPORT_QUANTILES = (50, 95, 99)


def percentile(values, q):
    """Interpolated percentile (q in [0, 100]) of a non-empty sequence."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def distribution(values, digits=6):
    """``{"p50": ..., "p95": ..., "p99": ...}`` of a non-empty sequence."""
    return {
        "p{}".format(q): round(percentile(values, q), digits)
        for q in REPORT_QUANTILES
    }


def wall_stats(samples, digits=6):
    """Wall-clock repeat summary: best + p50/p95/p99 + the sample count.

    ``samples`` are the per-repeat wall-clock seconds of one storm. The
    headline events/sec stays best-of (least-noise), but the distribution
    rides along so ``BENCH_*.json`` doubles as a noise record.
    """
    return dict(
        distribution(samples, digits=digits),
        best=round(min(samples), digits),
        repeats=len(samples),
    )
