"""``repro bench`` and ``repro sweep``: the benchmark harness entry points.

``repro bench`` runs the kernel and transaction-layer microbenchmarks
(and, unless skipped, a seed sweep over the experiment cells) and writes
``BENCH_kernel.json``, ``BENCH_txn.json`` and ``BENCH_experiments.json``;
``--migration`` adds the migration data-path storms
(``BENCH_migration.json``) and ``--cluster`` the storm-scale cluster
benchmark (``BENCH_cluster.json``: 100-node / 1M-client storms driving
the vectorized workload engine and the partitioned event loop, with a
migration in flight). With ``--baseline`` / ``--baseline-txn`` /
``--baseline-migration`` / ``--baseline-cluster`` it gates each storm's
events/sec against a committed baseline file — the CI smoke job fails a
PR that regresses a hot loop by more than ``--max-regression``. The
cluster gate additionally enforces the batch-vs-per-client speedup floor
(:data:`repro.bench.cluster_bench.MIN_BATCH_SPEEDUP`) and the
parallel-drain gate: the merged multi-worker timeline digest must match
the single-loop reference (identity smoke), and worker-count scaling must
clear :data:`repro.bench.cluster_bench.MIN_PARALLEL_SCALING` on payloads
that fanned out on a multi-core host. Every storm line prints the
wall-clock repeat percentiles (p50/p95/p99) next to the best-of headline.

``repro sweep`` is the standalone fan-out: seeds x (scenario, approach)
cells across a worker pool, with ``--verify-serial`` proving byte-identical
results versus a serial rerun.
"""

from __future__ import annotations

import json
import os
import sys

from repro.bench.cluster_bench import (
    MIN_BATCH_SPEEDUP,
    check_parallel_gate,
    run_cluster_bench,
)
from repro.bench.kernel_bench import check_against_baseline, run_kernel_bench
from repro.bench.migration_bench import run_migration_bench
from repro.bench.network_bench import run_network_bench, run_pump_share_sweep
from repro.bench.sweep import SMOKE_OVERRIDES, default_cells, run_sweep
from repro.bench.txn_bench import run_txn_bench
from repro.experiments import registry


def add_bench_arguments(parser):
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scales + one approach per scenario (CI-friendly)",
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        help="directory for BENCH_kernel.json / BENCH_experiments.json",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=max(1, min(4, os.cpu_count() or 1)),
        help="worker processes for the experiment sweep (default: up to 4)",
    )
    parser.add_argument(
        "--seeds", type=int, default=3, help="seeds per experiment cell"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N kernel timing repeats"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_kernel.json to gate events/sec against",
    )
    parser.add_argument(
        "--baseline-txn",
        default=None,
        help="committed BENCH_txn.json to gate txn storm events/sec against",
    )
    parser.add_argument(
        "--migration",
        action="store_true",
        help="also run the migration data-path storms (BENCH_migration.json)",
    )
    parser.add_argument(
        "--baseline-migration",
        default=None,
        help="committed BENCH_migration.json to gate migration storms against"
        " (implies --migration)",
    )
    parser.add_argument(
        "--network",
        action="store_true",
        help="also run the contended-network storms and the cross_az "
        "pump-share sweep (BENCH_network.json)",
    )
    parser.add_argument(
        "--baseline-network",
        default=None,
        help="committed BENCH_network.json to gate network storms against"
        " (implies --network; also fails if the pump-share dip sweep is "
        "no longer monotonic)",
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="also run the storm-scale cluster benchmark: vectorized "
        "workload engine + partitioned event loop with a migration in "
        "flight (BENCH_cluster.json)",
    )
    parser.add_argument(
        "--baseline-cluster",
        default=None,
        help="committed BENCH_cluster.json to gate cluster storms against"
        " (implies --cluster; also enforces the batch-vs-per-client "
        "speedup floor, the parallel-drain identity smoke, and the "
        "parallel scaling floor)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="allowed fractional events/sec drop vs --baseline (default 0.30)",
    )
    parser.add_argument(
        "--skip-experiments",
        action="store_true",
        help="kernel microbenchmark only; do not run the experiment sweep",
    )


def _wall_columns(storm):
    """`` wall p50/p95/p99 a/b/c s`` for storms measured with repeats."""
    wall = storm.get("wall")
    if not wall:
        return ""
    return "  wall p50/p95/p99 {:.3f}/{:.3f}/{:.3f}s".format(
        wall["p50"], wall["p95"], wall["p99"]
    )


def run_bench_command(args):
    kernel = run_kernel_bench(smoke=args.smoke, repeats=args.repeats)
    kernel_path = os.path.join(args.out_dir, "BENCH_kernel.json")
    _write_json(kernel_path, kernel)
    storm = kernel["storms"]["callback_storm"]
    print(
        "kernel: {:,.0f} events/s (legacy {:,.0f}) -> {:.2f}x speedup{}".format(
            storm["events_per_sec"],
            storm["legacy"]["events_per_sec"],
            kernel["speedup_vs_legacy"],
            _wall_columns(storm),
        )
    )
    print("wrote {}".format(kernel_path))

    txn = run_txn_bench(smoke=args.smoke, repeats=args.repeats)
    txn_path = os.path.join(args.out_dir, "BENCH_txn.json")
    _write_json(txn_path, txn)
    for name, storm in sorted(txn["storms"].items()):
        print(
            "txn {:<22} {:,.0f} events/s (legacy {:,.0f}) -> {:.2f}x{}".format(
                name,
                storm["events_per_sec"],
                storm["legacy"]["events_per_sec"],
                storm["speedup"],
                _wall_columns(storm),
            )
        )
    print("wrote {}".format(txn_path))

    migration = None
    if args.migration or args.baseline_migration:
        migration = run_migration_bench(smoke=args.smoke, repeats=args.repeats)
        migration_path = os.path.join(args.out_dir, "BENCH_migration.json")
        _write_json(migration_path, migration)
        for name, storm in sorted(migration["storms"].items()):
            print(
                "migration {:<24} {:,.0f} events/s (legacy {:,.0f}) -> {:.2f}x{}".format(
                    name,
                    storm["events_per_sec"],
                    storm["legacy"]["events_per_sec"],
                    storm["speedup"],
                    _wall_columns(storm),
                )
            )
        print("wrote {}".format(migration_path))

    network = None
    if args.network or args.baseline_network:
        network = run_network_bench(smoke=args.smoke, repeats=args.repeats)
        network["pump_share_sweep"] = run_pump_share_sweep(smoke=args.smoke)
        network_path = os.path.join(args.out_dir, "BENCH_network.json")
        _write_json(network_path, network)
        for name, storm in sorted(network["storms"].items()):
            print(
                "network {:<24} {:,.0f} events/s{}".format(
                    name, storm["events_per_sec"], _wall_columns(storm)
                )
            )
        sweep = network["pump_share_sweep"]
        for row in sweep["shares"]:
            print(
                "network pump_share={:<5} fg_dip {:8.1f} txns/s  copy {:6.2f}s".format(
                    row["pump_share"], row["fg_dip"], row["copy_duration"]
                )
            )
        print(
            "network dip monotonic in pump_share: {}".format(sweep["monotonic"])
        )
        print("wrote {}".format(network_path))

    cluster = None
    if args.cluster or args.baseline_cluster:
        cluster = run_cluster_bench(smoke=args.smoke, repeats=args.repeats)
        cluster_path = os.path.join(args.out_dir, "BENCH_cluster.json")
        _write_json(cluster_path, cluster)
        for name, storm in sorted(cluster["storms"].items()):
            print(
                "cluster {:<18} {:>9,.0f} events/s  ({:,} clients, "
                "{:,} txns){}".format(
                    name,
                    storm["events_per_sec"],
                    storm["population"],
                    storm["events"],
                    _wall_columns(storm),
                )
            )
        print(
            "cluster batch vs per-client: {:.2f}x (floor {:.1f}x), "
            "partitioned {:.2f}x".format(
                cluster["speedup_batch_vs_per_client"],
                MIN_BATCH_SPEEDUP,
                cluster["speedup_partitioned_vs_per_client"],
            )
        )
        parallel = cluster.get("parallel")
        if parallel:
            print(
                "cluster parallel drain: identity {}  digest {}  best "
                "{:.2f}x vs 1 worker (floor {:.2f}x, {} host cpu{}, "
                "pool {})".format(
                    "ok" if parallel["identity_ok"] else "MISMATCH",
                    parallel["timeline_digest"],
                    parallel["speedup_best_vs_w1"],
                    parallel["min_scaling"],
                    parallel["host_cpus"],
                    "" if parallel["host_cpus"] == 1 else "s",
                    "used" if parallel["pool_used"] else "unavailable",
                )
            )
        print("wrote {}".format(cluster_path))

    status = 0
    # The kernel, txn, migration, network and cluster payloads share one
    # shape (storms -> events_per_sec), so a single gate function covers all.
    for payload, baseline_path in (
        (kernel, args.baseline),
        (txn, args.baseline_txn),
        (migration, args.baseline_migration),
        (network, args.baseline_network),
        (cluster, args.baseline_cluster),
    ):
        if not baseline_path:
            continue
        with open(baseline_path) as handle:
            baseline = json.load(handle)
        failures = check_against_baseline(payload, baseline, args.max_regression)
        for failure in failures:
            print("REGRESSION {}".format(failure), file=sys.stderr)
        if failures:
            status = 1
    if (
        cluster is not None
        and args.baseline_cluster
        and cluster["speedup_batch_vs_per_client"] < MIN_BATCH_SPEEDUP
    ):
        print(
            "REGRESSION cluster batch storm is only {:.2f}x the per-client "
            "reference (floor {:.1f}x)".format(
                cluster["speedup_batch_vs_per_client"], MIN_BATCH_SPEEDUP
            ),
            file=sys.stderr,
        )
        status = 1
    if cluster is not None and args.baseline_cluster:
        # Parallel-drain gate: identity smoke on this run, scaling floor on
        # whichever payload (this run or the committed baseline) fanned out
        # on a multi-core host.
        with open(args.baseline_cluster) as handle:
            cluster_baseline = json.load(handle)
        for failure in check_parallel_gate(cluster, baseline=cluster_baseline):
            print("REGRESSION {}".format(failure), file=sys.stderr)
            status = 1
    if network is not None and not network["pump_share_sweep"]["monotonic"]:
        print(
            "REGRESSION cross_az foreground dip is no longer monotonic in "
            "pump_share: {}".format(
                [row["fg_dip"] for row in network["pump_share_sweep"]["shares"]]
            ),
            file=sys.stderr,
        )
        status = 1

    if not args.skip_experiments:
        cells = default_cells(smoke=args.smoke)
        overrides = SMOKE_OVERRIDES if args.smoke else {}
        sweep = run_sweep(
            cells,
            seeds=list(range(args.seeds)),
            jobs_in_parallel=args.jobs,
            overrides_by_scenario=overrides,
            verify_serial=False,
        )
        sweep_path = os.path.join(args.out_dir, "BENCH_experiments.json")
        _write_json(sweep_path, sweep)
        for key, cell in sweep["cells"].items():
            runtime = cell["runtime_sec"]
            print(
                "  {:<28} mean {:.2f}s p50/p95/p99 {:.2f}/{:.2f}/{:.2f}s "
                "over seeds {}".format(
                    key, runtime["mean"], runtime["p50"], runtime["p95"],
                    runtime["p99"], cell["seeds"]
                )
            )
        print("wrote {}".format(sweep_path))
    return status


def add_sweep_arguments(parser):
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="scenario to sweep (repeatable; default: all registered)",
    )
    parser.add_argument(
        "--approach",
        action="append",
        default=None,
        help="approach to include (repeatable; default: all the scenario supports)",
    )
    parser.add_argument("--seeds", type=int, default=4, help="seeds per cell")
    parser.add_argument(
        "--jobs",
        type=int,
        default=max(1, min(4, os.cpu_count() or 1)),
        help="worker processes (default: up to 4)",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny-scale configs (seconds per cell)"
    )
    parser.add_argument(
        "--out", default=None, help="write the aggregate payload to this JSON file"
    )
    parser.add_argument(
        "--verify-serial",
        action="store_true",
        help="rerun every cell serially and require byte-identical payloads",
    )


def run_sweep_command(args):
    try:
        for name in args.scenario or ():
            registry.get(name)  # fail fast with the scenario list
        cells = default_cells(
            scenarios=args.scenario, approaches=args.approach, smoke=args.smoke
        )
    except ValueError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    if not cells:
        print("error: no (scenario, approach) cells selected", file=sys.stderr)
        return 2
    overrides = SMOKE_OVERRIDES if args.smoke else {}
    payload = run_sweep(
        cells,
        seeds=list(range(args.seeds)),
        jobs_in_parallel=args.jobs,
        overrides_by_scenario=overrides,
        verify_serial=args.verify_serial,
    )
    for key, cell in payload["cells"].items():
        runtime = cell["runtime_sec"]
        line = "{:<28} mean {:.2f}s  p50/p95/p99 {:.2f}/{:.2f}/{:.2f}s  seeds {}".format(
            key, runtime["mean"], runtime["p50"], runtime["p95"],
            runtime["p99"], cell["seeds"]
        )
        print(line)
    if args.verify_serial:
        print("parallel == serial: byte-identical payloads for all cells")
    if args.out:
        _write_json(args.out, payload)
        print("wrote {}".format(args.out))
    return 0


def _write_json(path, payload):
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
