"""Kernel event-storm microbenchmarks.

Measures the DES core in events per second of *wall-clock* time, on three
storms of increasing stack depth:

- ``callback_storm`` — kernel only: self-rescheduling timer chains plus
  same-time FIFO bursts and a slice of cancellations. This storm also runs
  on the frozen pre-optimization kernel
  (:mod:`repro.bench._legacy_kernel`), and the ratio is the **speedup**
  number that guards the fast path: the optimized kernel must stay ≥1.5×
  the legacy kernel on this storm.
- ``process_storm`` — generator processes ping-ponging on events and
  timeouts (exercises :mod:`repro.sim.process` wake/detach paths).
- ``rpc_storm`` — processes doing :func:`repro.sim.rpc.reliable_send` /
  ``reliable_roundtrip`` hops over a fault-free network (exercises the
  clean-link fast path end to end).

``repro bench`` serializes the result as ``BENCH_kernel.json`` so every PR
leaves a wall-clock trajectory behind; the CI smoke job gates on the
``callback_storm`` events/sec against the committed baseline.
"""

from __future__ import annotations

import sys
import time

from repro.bench._legacy_kernel import LegacySimulator
from repro.bench.stats import wall_stats
from repro.sim.kernel import Simulator
from repro.sim.network import Network, NetworkConfig
from repro.sim.rpc import reliable_roundtrip, reliable_send
from repro.sim.topology import LinkProfile, Topology

#: (chains, depth) per mode; events ~ chains * (depth + burst work).
_CALLBACK_SCALE = {"smoke": (300, 60), "full": (1500, 150)}
_PROCESS_SCALE = {"smoke": (120, 40), "full": (600, 120)}
_RPC_SCALE = {"smoke": (60, 30), "full": (300, 100)}


def _callback_storm(sim, chains: int, depth: int) -> int:
    """Kernel-only storm; returns the number of callbacks executed.

    Uses only ``schedule``/``cancel``-free kernel surface shared with the
    legacy kernel: timer chains with co-prime periods (heap churn), bursts
    of same-time events (FIFO tie-breaks) and one-shot leaf events.
    """
    executed = [0]

    def tick(chain: int, remaining: int) -> None:
        executed[0] += 1
        if remaining > 0:
            sim.schedule(0.001 * (chain % 7 + 1), tick, chain, remaining - 1)
            if remaining % 16 == 0:
                # A burst of same-time leaves: stresses FIFO tie-breaking.
                for _ in range(4):
                    sim.schedule(0.0005, leaf)

    def leaf() -> None:
        executed[0] += 1

    for chain in range(chains):
        sim.schedule(0.0001 * chain, tick, chain, depth)
    sim.run()
    return executed[0]


def _process_storm(sim, pairs: int, rounds: int) -> int:
    """Event/timeout ping-pong between process pairs; returns resumptions.

    Each consumer parks on a fresh event; its producer wakes it on a timer.
    Exercises the generator drive path (timeout scheduling, event callbacks,
    process resumption) on top of the kernel.
    """
    executed = [0]

    def consumer(mailbox):
        for _ in range(rounds):
            event = sim.event()
            mailbox.append(event)
            yield event
            executed[0] += 1

    def producer(mailbox):
        for _ in range(rounds):
            yield 0.0002
            executed[0] += 1
            mailbox.pop().succeed(None)

    for _ in range(pairs):
        mailbox = []
        # Consumer first: it parks its event before the producer's timer fires.
        sim.spawn(consumer(mailbox), name="consumer")
        sim.spawn(producer(mailbox), name="producer")
    sim.run()
    return executed[0]


def _rpc_storm(sim, senders: int, hops: int) -> int:
    """Fault-free reliable RPC chains across a two-node network."""
    config = NetworkConfig()
    network = Network.from_topology(
        sim, Topology.single(LinkProfile(config.base_latency, config.bandwidth))
    )
    executed = [0]

    def sender(index: int):
        src = "node-{}".format(index % 4)
        dst = "node-{}".format((index + 1) % 4)
        for hop in range(hops):
            executed[0] += 1
            if hop % 3 == 0:
                yield from reliable_roundtrip(network, src, dst, 128, 64)
            else:
                yield from reliable_send(network, src, dst, 256)

    for index in range(senders):
        sim.spawn(sender(index), name="rpc-sender")
    sim.run()
    return executed[0]


def _measure(storm, sim_factory, a: int, b: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall-clock measurement of one storm.

    The headline events/sec uses the best repeat (least scheduler noise);
    the full repeat distribution rides along under ``"wall"`` as
    p50/p95/p99 seconds.
    """
    samples = []
    events = 0
    for _ in range(repeats):
        sim = sim_factory()
        started = time.perf_counter()
        events = storm(sim, a, b)
        samples.append(time.perf_counter() - started)
    best = min(samples)
    return {
        "events": events,
        "seconds": round(best, 6),
        "events_per_sec": round(events / best, 1),
        "wall": wall_stats(samples),
    }


def run_kernel_bench(smoke: bool = False, repeats: int = 3) -> dict:
    """Run every storm; returns the ``BENCH_kernel.json`` payload."""
    mode = "smoke" if smoke else "full"
    callback_scale = _CALLBACK_SCALE[mode]
    fast = _measure(_callback_storm, Simulator, *callback_scale, repeats=repeats)
    legacy = _measure(_callback_storm, LegacySimulator, *callback_scale, repeats=repeats)
    speedup = fast["events_per_sec"] / legacy["events_per_sec"]
    storms = {
        "callback_storm": dict(fast, legacy=legacy, speedup=round(speedup, 3)),
        "process_storm": _measure(
            _process_storm, Simulator, *_PROCESS_SCALE[mode], repeats=repeats
        ),
        "rpc_storm": _measure(_rpc_storm, Simulator, *_RPC_SCALE[mode], repeats=repeats),
    }
    return {
        "bench": "kernel",
        "mode": mode,
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
        "storms": storms,
        "speedup_vs_legacy": round(speedup, 3),
    }


def check_against_baseline(payload: dict, baseline: dict, max_regression: float = 0.30):
    """Compare a fresh kernel bench against a committed baseline.

    Returns a list of human-readable failure strings (empty = pass). A storm
    fails if its events/sec fell more than ``max_regression`` below the
    baseline's; storms absent from the baseline are skipped.
    """
    failures = []
    for name, measured in payload["storms"].items():
        reference = baseline.get("storms", {}).get(name)
        if not reference:
            continue
        floor = reference["events_per_sec"] * (1.0 - max_regression)
        if measured["events_per_sec"] < floor:
            failures.append(
                "{}: {:.0f} events/s is below the {:.0f} floor "
                "({:.0f} baseline - {:.0%} tolerance)".format(
                    name,
                    measured["events_per_sec"],
                    floor,
                    reference["events_per_sec"],
                    max_regression,
                )
            )
    return failures
