"""Benchmark harness: kernel microbenchmarks and parallel seed sweeps.

- :mod:`repro.bench.kernel_bench` — event-storm microbenchmarks of the DES
  core, including a speedup comparison against the frozen pre-optimization
  kernel (:mod:`repro.bench._legacy_kernel`);
- :mod:`repro.bench.sweep` — seeds x (scenario, approach) fan-out across a
  multiprocessing pool with serial byte-identity verification;
- :mod:`repro.bench.cli` — the ``repro bench`` / ``repro sweep`` wiring.
"""
