"""The pre-optimization DES kernel, frozen as a benchmark reference.

This is a verbatim copy of ``repro.sim.kernel`` as it stood before the
fast-path rewrite (object heap entries with a Python ``__lt__``, a
``step()`` call per event inside ``run``, and an O(n) ``pending_events``
scan). The kernel microbenchmark (:mod:`repro.bench.kernel_bench`) runs the
same callback event storm against this class and the live
:class:`repro.sim.kernel.Simulator` to report the speedup ratio, so the
fast path is guarded by a measurement rather than by folklore.

Only the kernel surface used by the storms is exercised here (``schedule``,
``step``, ``run``); process/event helpers are kept for completeness but the
live :class:`~repro.sim.process.Process` now requires ``Simulator.cancel``
and is not supported on the legacy kernel.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.errors import SimulationError
from repro.sim.rng import RngStream, SeedSequence


class _LegacyScheduledCall:
    """A heap entry. Ordered by (time, sequence) so ties are FIFO."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., object],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "_LegacyScheduledCall") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class LegacySimulator:
    """The pre-fast-path simulator: one Python method call per comparison."""

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self._heap: list[_LegacyScheduledCall] = []
        self._seq = 0
        self._seeds = SeedSequence(seed)
        self.failed_processes: list = []

    def schedule(
        self, delay: float, callback: Callable[..., object], *args: Any
    ) -> _LegacyScheduledCall:
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay={})".format(delay))
        self._seq += 1
        entry = _LegacyScheduledCall(self.now + delay, self._seq, callback, args)
        heapq.heappush(self._heap, entry)
        return entry

    def rng(self, label: str) -> RngStream:
        return self._seeds.stream(label)

    def step(self) -> bool:
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            if entry.time < self.now:
                raise SimulationError("time went backwards")
            self.now = entry.time
            entry.callback(*entry.args)
            return True
        return False

    def run(self, until: float | None = None) -> float:
        if until is None:
            while self.step():
                pass
            return self.now
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > until:
                break
            self.step()
        self.now = max(self.now, until)
        return self.now

    @property
    def pending_events(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)
