"""Transaction-layer microbenchmarks: the fast path vs the frozen legacy.

Three storms, each isolating one tentpole of the transaction fast path:

- ``visibility_storm`` — MVCC point reads over version chains seeded with
  committed / aborted / superseded / in-progress writers. The driver
  exhausts the read generators directly (no simulator events), so the
  number is pure visibility-check CPU. Runs against the frozen
  pre-fast-path read path (:mod:`repro.bench._legacy_txn`); hint bits +
  the non-blocking check make repeat reads skip the CLOG and the
  per-version generator frames, and CI pins the speedup at >= 2x.
- ``commit_storm`` — aligned committers appending commit records and
  flushing the WAL on one node. Exercises group commit
  (:class:`repro.storage.wal.FlushCoalescer`): N same-instant flushes
  collapse into 2 kernel events. The reference run disables the
  ``group_commit`` flag.
- ``contended_lock_storm`` — workers hammering one hot row plus private
  rows. Exercises the O(1) uncontended lock fast path against the frozen
  always-allocate-a-named-event lock table.

``repro bench`` serializes the payload as ``BENCH_txn.json`` next to
``BENCH_kernel.json`` and gates both against committed baselines.
"""

from __future__ import annotations

import sys
import time

from repro import fastpath
from repro.bench.stats import wall_stats
from repro.bench._legacy_txn import (
    LegacyHeapTable,
    LegacyRowLockTable,
    LegacySnapshot,
)
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.storage.clog import Clog
from repro.storage.heap import HeapTable
from repro.storage.snapshot import Snapshot
from repro.storage.wal import Wal, WalRecord, WalRecordKind
from repro.txn.manager import NodeTxnManager

#: (keys, rounds) / (committers, rounds) / (workers, rounds) per mode.
_VISIBILITY_SCALE = {"smoke": (200, 30), "full": (600, 120)}
_COMMIT_SCALE = {"smoke": (24, 60), "full": (64, 250)}
_LOCK_SCALE = {"smoke": (16, 120), "full": (48, 400)}

#: Snapshot timestamp and the writer population for the visibility storm.
_SNAPSHOT_TS = 15
_XID_OLD_COMMIT = 1  # committed at ts 10 (visible)
_XID_NEW_COMMIT = 2  # committed at ts 20 (after the snapshot)
_XID_ABORTED = 3
_XID_IN_PROGRESS = 4


def _drain(generator):
    """Exhaust a visibility generator that never actually blocks."""
    while True:
        try:
            next(generator)
        except StopIteration as stop:
            return stop.value


def _seed_clog(sim) -> Clog:
    clog = Clog(sim, "bench")
    for xid in (_XID_OLD_COMMIT, _XID_NEW_COMMIT, _XID_ABORTED, _XID_IN_PROGRESS):
        clog.begin(xid)
    clog.set_committed(_XID_OLD_COMMIT, 10)
    clog.set_committed(_XID_NEW_COMMIT, 20)
    clog.set_aborted(_XID_ABORTED)
    return clog


def _seed_chains(heap, keys: int) -> None:
    """Long version chains mixing every writer fate, newest first.

    This is the shape vacuum-held chains take during a migration snapshot
    scan (the paper's Figure 10 regime): a stack of aborted and
    after-snapshot versions a reader must wade through before reaching the
    visible base. Walk order per key: [in-progress (every 8th key),
    4 x aborted, 2 x committed-after-snapshot, visible base (superseded
    after the snapshot)].
    """
    for index in range(keys):
        base = heap.put_version(index, {"f0": index}, _XID_OLD_COMMIT)
        base.xmax = _XID_NEW_COMMIT  # superseded, but after our snapshot
        heap.put_version(index, {"f0": index + 1}, _XID_NEW_COMMIT)
        heap.put_version(index, {"f0": index + 2}, _XID_NEW_COMMIT)
        for junk in range(4):
            heap.put_version(index, {"f0": -junk}, _XID_ABORTED)
        if index % 8 == 0:
            heap.put_version(index, {"f0": -2}, _XID_IN_PROGRESS)


def _visibility_fast(keys: int, rounds: int) -> int:
    sim = Simulator(seed=0)
    clog = _seed_clog(sim)
    heap = HeapTable(sim, clog)
    _seed_chains(heap, keys)
    snapshot = Snapshot(_SNAPSHOT_TS)
    reads = 0
    for _ in range(rounds):
        for key in range(keys):
            value, _traversed = _drain(heap.read(key, snapshot))
            if value is None:
                raise AssertionError("visibility storm must see the base version")
            reads += 1
    return reads


def _visibility_legacy(keys: int, rounds: int) -> int:
    sim = Simulator(seed=0)
    clog = _seed_clog(sim)
    heap = LegacyHeapTable(clog)
    _seed_chains(heap, keys)
    snapshot = LegacySnapshot(_SNAPSHOT_TS)
    reads = 0
    for _ in range(rounds):
        for key in range(keys):
            value, _traversed = _drain(heap.read(key, snapshot))
            if value is None:
                raise AssertionError("visibility storm must see the base version")
            reads += 1
    return reads


class _FlushCosts:
    """Minimal cost table for the commit storm's manager."""

    wal_flush = 5e-5


def _commit_storm(committers: int, rounds: int) -> int:
    sim = Simulator(seed=0)
    manager = NodeTxnManager(
        sim,
        "bench",
        Clog(sim, "bench"),
        Wal(sim, "bench"),
        None,
        _FlushCosts(),
        lambda shard_id: None,
    )
    flushed = [0]

    def committer(xid: int):
        for _ in range(rounds):
            manager.wal.append(WalRecord(WalRecordKind.COMMIT, xid=xid))
            yield from manager.flush_wal()
            flushed[0] += 1

    for index in range(committers):
        sim.spawn(committer(index), name="committer")
    sim.run()
    return flushed[0]


def _commit_storm_legacy(committers: int, rounds: int) -> int:
    with fastpath.overridden(group_commit=False):
        return _commit_storm(committers, rounds)


def _lock_key(owner: int, round_index: int):
    if round_index % 4 == 0:
        return "hot"
    return (owner, round_index % 8)


def _lock_storm_fast(workers: int, rounds: int) -> int:
    from repro.txn.locks import RowLockTable

    sim = Simulator(seed=0)
    table = RowLockTable(sim, name="bench")
    acquired = [0]

    def worker(owner: int):
        for round_index in range(rounds):
            key = _lock_key(owner, round_index)
            if fastpath.lock_fastpath and table.try_acquire(key, owner):
                event = Event(sim)
                event.succeed(None)
                yield event
            else:
                yield table.acquire(key, owner)
            acquired[0] += 1
            yield 0.0  # hold across a tick so the hot key actually queues
            table.release(key, owner)

    for owner in range(workers):
        sim.spawn(worker(owner), name="locker")
    sim.run()
    return acquired[0]


def _lock_storm_legacy(workers: int, rounds: int) -> int:
    sim = Simulator(seed=0)
    table = LegacyRowLockTable(sim, name="bench")
    acquired = [0]

    def worker(owner: int):
        for round_index in range(rounds):
            key = _lock_key(owner, round_index)
            yield table.acquire(key, owner)
            acquired[0] += 1
            yield 0.0
            table.release(key, owner)

    for owner in range(workers):
        sim.spawn(worker(owner), name="locker")
    sim.run()
    return acquired[0]


def _measure(storm, a: int, b: int, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall-clock measurement of one storm.

    Headline events/sec from the best repeat; the repeat distribution
    (p50/p95/p99 seconds) rides along under ``"wall"``.
    """
    samples = []
    events = 0
    for _ in range(repeats):
        started = time.perf_counter()
        events = storm(a, b)
        samples.append(time.perf_counter() - started)
    best = min(samples)
    return {
        "events": events,
        "seconds": round(best, 6),
        "events_per_sec": round(events / best, 1),
        "wall": wall_stats(samples),
    }


def _versus(fast: dict, legacy: dict) -> dict:
    speedup = fast["events_per_sec"] / legacy["events_per_sec"]
    return dict(fast, legacy=legacy, speedup=round(speedup, 3))


def run_txn_bench(smoke: bool = False, repeats: int = 3) -> dict:
    """Run every storm; returns the ``BENCH_txn.json`` payload."""
    mode = "smoke" if smoke else "full"
    visibility = _versus(
        _measure(_visibility_fast, *_VISIBILITY_SCALE[mode], repeats=repeats),
        _measure(_visibility_legacy, *_VISIBILITY_SCALE[mode], repeats=repeats),
    )
    commit = _versus(
        _measure(_commit_storm, *_COMMIT_SCALE[mode], repeats=repeats),
        _measure(_commit_storm_legacy, *_COMMIT_SCALE[mode], repeats=repeats),
    )
    locks = _versus(
        _measure(_lock_storm_fast, *_LOCK_SCALE[mode], repeats=repeats),
        _measure(_lock_storm_legacy, *_LOCK_SCALE[mode], repeats=repeats),
    )
    return {
        "bench": "txn",
        "mode": mode,
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
        "storms": {
            "visibility_storm": visibility,
            "commit_storm": commit,
            "contended_lock_storm": locks,
        },
        "speedup_vs_legacy": visibility["speedup"],
    }
