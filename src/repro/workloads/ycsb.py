"""The YCSB workload of §4.3.

50 % reads / 50 % updates over a keyspace of 1 KB tuples, executed in
multi-statement interactive mode: each read/update statement is its own
BEGIN/COMMIT transaction, so the write set is unknown before execution
(which is what forces wait-and-remaster to wait for *every* on-the-fly
transaction).

Three access patterns:

- ``uniform`` — keys drawn uniformly (hybrid workloads A/B, §4.4);
- ``zipfian`` — zipf-distributed keys;
- ``hotspot`` — a fraction of accesses targets the shards of one node (the
  load-balancing scenario of §4.5, "50 hotspot shards on one of six nodes").
"""

from dataclasses import dataclass

from repro.workloads.client import ClientPool, ClosedLoopClient
from repro.workloads.zipf import ZipfGenerator

TABLE = "ycsb"


@dataclass
class YcsbConfig:
    num_tuples: int = 10_000
    tuple_size: int = 1024
    num_shards: int = 36
    read_ratio: float = 0.5
    distribution: str = "uniform"  # uniform | zipfian | hotspot
    zipf_theta: float = 0.99
    hotspot_fraction: float = 0.9  # share of ops hitting the hot shards
    num_clients: int = 40
    think_time: float = 0.0


class YcsbWorkload:
    """Builds the YCSB table and its closed-loop clients."""

    def __init__(self, cluster, config=None):
        self.cluster = cluster
        self.config = config or YcsbConfig()
        self.schema = None
        self._zipf = None
        self._keys_by_shard = None
        self.hot_shards = []
        self.pool = None
        self.max_key = self.config.num_tuples - 1

    # ------------------------------------------------------------------
    def create(self):
        cfg = self.config
        self.schema = self.cluster.create_table(
            TABLE, num_shards=cfg.num_shards, tuple_size=cfg.tuple_size
        )
        rows = [(key, {"f0": key}) for key in range(cfg.num_tuples)]
        self.cluster.bulk_load(TABLE, rows)
        if cfg.distribution == "zipfian":
            self._zipf = ZipfGenerator(cfg.num_tuples, cfg.zipf_theta)
        if cfg.distribution == "hotspot":
            self._keys_by_shard = {}
            for key in range(cfg.num_tuples):
                shard = self.schema.shard_for_key(key)
                self._keys_by_shard.setdefault(shard, []).append(key)
        return self.schema

    def set_hot_node(self, node_id, num_hot_shards=None):
        """Make ``node_id``'s shards the hotspot (load-balancing scenario).

        Only shards that actually hold keys qualify — at small scale a
        consistent-hash shard can be empty.
        """
        if self._keys_by_shard is None:
            self._keys_by_shard = {}
            for key in range(self.config.num_tuples):
                shard = self.schema.shard_for_key(key)
                self._keys_by_shard.setdefault(shard, []).append(key)
        shards = [
            s
            for s in self.cluster.shards_on_node(node_id, table=TABLE)
            if self._keys_by_shard.get(s)
        ]
        if num_hot_shards is not None:
            shards = shards[:num_hot_shards]
        self.hot_shards = shards

    # ------------------------------------------------------------------
    def pick_key(self, rng):
        cfg = self.config
        if cfg.distribution == "zipfian":
            return self._zipf.sample(rng)
        if cfg.distribution == "hotspot" and self.hot_shards:
            if rng.random() < cfg.hotspot_fraction:
                shard = rng.choice(self.hot_shards)
                return rng.choice(self._keys_by_shard[shard])
            return rng.randint(0, cfg.num_tuples - 1)
        return rng.randint(0, cfg.num_tuples - 1)

    def body_factory(self, rng):
        """One interactive YCSB transaction: a single read or update."""

        def factory():
            def body(session, txn):
                key = self.pick_key(rng)
                if rng.random() < self.config.read_ratio:
                    yield from session.read(txn, TABLE, key)
                else:
                    yield from session.update(txn, TABLE, key, {"f0": rng.randint(0, 1 << 30)})

            return body

        return factory

    def make_clients(self, label="ycsb", num_clients=None, nodes=None):
        cfg = self.config
        num_clients = num_clients or cfg.num_clients
        nodes = nodes or self.cluster.node_ids()
        clients = []
        for i in range(num_clients):
            rng = self.cluster.sim.rng("ycsb-client-{}".format(i))
            clients.append(
                ClosedLoopClient(
                    self.cluster,
                    nodes[i % len(nodes)],
                    self.body_factory(rng),
                    label,
                    think_time=cfg.think_time,
                )
            )
        self.pool = ClientPool(clients)
        return self.pool
