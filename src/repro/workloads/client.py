"""Closed-loop workload clients with abort/retry handling.

A client owns a session on one coordinator node and repeatedly runs a
transaction *body* — a generator taking ``(session, txn)`` that issues the
statements. Aborts (WW conflicts, migration kills, interrupts from
lock-and-abort) roll the transaction back and, if retry is enabled, run it
again — the paper's clients behave the same way ("we add repeatable retry
logic for the batch insert client", §4.3).
"""

from repro.sim.errors import Interrupt
from repro.txn.errors import MigrationAbort, TransactionError


def run_transaction(session, body, label="", process=None, begin_time=None):
    """Generator: run ``body`` in a fresh transaction.

    Returns (committed, error). The transaction's owning process is recorded
    so migration protocols can interrupt it (lock-and-abort's kills).
    ``begin_time`` backdates the latency measurement to the client's first
    attempt, so a commit after migration-induced aborts reports the
    *client-perceived* latency (blocked + aborted + retried), as §4.7
    accounts it.
    """
    txn = None
    try:
        txn = yield from session.begin(label=label)
        txn.process = process
        if begin_time is not None:
            txn.begin_time = begin_time
        yield from body(session, txn)
        yield from session.commit(txn)
        return True, None
    except Interrupt as exc:
        if isinstance(exc.cause, TransactionError):
            cause = exc.cause
        else:
            cause = MigrationAbort(str(exc.cause))
        if txn is not None and not txn.finished:
            yield from session.abort(txn, reason=cause)
        return False, cause
    except TransactionError as exc:
        if txn is not None and not txn.finished:
            yield from session.abort(txn, reason=exc)
        return False, exc


class ClosedLoopClient:
    """Issues one transaction after another until stopped."""

    def __init__(
        self,
        cluster,
        node_id,
        body_factory,
        label,
        think_time=0.0,
        retry_aborted=True,
        max_retries=None,
        node_resolver=None,
    ):
        """``body_factory()`` returns a fresh transaction body generator
        function per attempt (retries re-invoke the factory so that, e.g., a
        batch insert restarts from its beginning).

        ``node_resolver()`` (optional) is consulted before each transaction
        and may move the session to another coordinator node — used by the
        TPC-C clients to follow their home warehouse after a migration, as a
        cloud load balancer would."""
        self.cluster = cluster
        self.session = cluster.session(node_id)
        self.node_resolver = node_resolver
        self.body_factory = body_factory
        self.label = label
        self.think_time = think_time
        self.retry_aborted = retry_aborted
        self.max_retries = max_retries
        self.process = None
        self.committed = 0
        self.aborted = 0
        self._running = False

    def start(self):
        self._running = True
        self.process = self.cluster.spawn(self._loop(), name="client:{}".format(self.label))
        return self.process

    def stop(self):
        self._running = False

    def _rebind(self):
        if self.node_resolver is None:
            return
        target = self.node_resolver()
        if target != self.session.node_id:
            self.session = self.cluster.session(target)

    def _loop(self):
        while self._running:
            self._rebind()
            first_attempt = self.cluster.sim.now
            body = self.body_factory()
            committed, _error = yield from run_transaction(
                self.session, body, label=self.label, process=self.process
            )
            if committed:
                self.committed += 1
            else:
                self.aborted += 1
                retries = 0
                while (
                    self._running
                    and not committed
                    and self.retry_aborted
                    and (self.max_retries is None or retries < self.max_retries)
                ):
                    retries += 1
                    self._rebind()
                    body = self.body_factory()
                    committed, _error = yield from run_transaction(
                        self.session,
                        body,
                        label=self.label,
                        process=self.process,
                        begin_time=first_attempt,
                    )
                    if committed:
                        self.committed += 1
                    else:
                        self.aborted += 1
            if self.think_time:
                yield self.think_time


class ClientPool:
    """A set of closed-loop clients spread over the cluster's nodes."""

    def __init__(self, clients):
        self.clients = list(clients)

    def start(self):
        for client in self.clients:
            client.start()

    def stop(self):
        for client in self.clients:
            client.stop()

    @property
    def committed(self):
        return sum(c.committed for c in self.clients)

    @property
    def aborted(self):
        return sum(c.aborted for c in self.clients)
