"""Vectorized population workload: N clients as batched arrival events.

The per-client layer (:mod:`repro.workloads.client`) pays one generator
process per simulated client — fine for tens of clients, hopeless for the
storm scales the ROADMAP targets (1M+ clients on 100+ nodes). This module
models the *population* instead:

- an :class:`ArrivalSchedule` draws, per ``tick`` of virtual time, a Poisson
  arrival count for the whole population (mean = population x per-client
  rate x tick x the flash-crowd ramp multiplier), then materializes that
  batch in one pass: sorted strictly-increasing arrival instants, uniform
  client ids, Zipf key ranks drawn vectorized
  (:meth:`~repro.workloads.zipf.ZipfGenerator.sample_many`) with hot-key
  drift applied as a rank rotation, read/write ops and write values;
- a :class:`PopulationWorkload` executes the schedule in one of two modes
  sharing every downstream code path (same sessions, same
  :func:`~repro.workloads.client.run_transaction` runner, same metrics
  records):

  * **per-client** (``fastpath.batch_workload`` off, the default): the
    schedule is partitioned by client and one pacer process per client
    sleeps to each of its arrivals — the legacy shape, O(population)
    processes;
  * **batch** (flag on): a single dispatcher walks the merged schedule
    lazily and spawns one runner per arrival — O(arrivals) work, zero
    per-client state.

Byte-identical timelines across the modes, by construction: all randomness
is consumed while *generating* the schedule (one labelled stream, identical
draw order in both modes), arrival instants are globally unique and both
modes wake at exact absolute instants via the :class:`~repro.sim.events.At`
waitable — so the kernel dispatches the same runners at the same times in
the same order either way. ``tests/test_fastpath_equivalence.py`` pins the
equivalence at small N; ``repro bench --cluster`` measures the speedup at
storm scale.

Capacity is never silently truncated: arrivals beyond ``batch_cap`` in one
tick are dropped *and counted* (:attr:`ArrivalSchedule.capped_arrivals`),
and the storm bench reports the counter.
"""

from dataclasses import dataclass, field

from repro import fastpath
from repro.sim.events import At
from repro.workloads.client import run_transaction
from repro.workloads.zipf import ZipfGenerator

TABLE = "storm"

#: RNG stream label for the population arrival schedule. One stream drives
#: both execution modes, so their draw sequences are identical by design.
ARRIVALS_STREAM = "storm-arrivals"


@dataclass
class PopulationConfig:
    """Knobs of one simulated client population.

    ``population`` / ``tick`` / ``batch_cap`` default to ``None`` meaning
    "take the cluster's :class:`~repro.config.ClusterConfig` storm knobs"
    (``storm_population`` / ``storm_arrival_tick`` / ``storm_batch_cap``).

    ``ramps`` is the flash-crowd schedule: ``(time, multiplier)``
    breakpoints, linearly interpolated, scaling the population's aggregate
    arrival rate over virtual time (empty = constant rate).
    ``drift_keys_per_sec`` rotates the Zipf rank → key mapping over time, so
    the hot keyset slides through the keyspace (hot-key drift).

    ``route_by_key`` picks each transaction's coordinator as its key's
    shard owner instead of round-robin by client id. Every storm
    transaction is then single-node (the coordinator owns the one shard it
    touches), so the workload is *partition-closed*: no cross-AZ network
    traffic, which is the envelope the parallel window drain
    (``repro.sim.parallel``) needs for byte-identical merged timelines.
    """

    population: int | None = None
    rate_per_client: float = 0.02  # transactions per second per client
    tick: float | None = None
    batch_cap: int | None = None
    num_tuples: int = 10_000
    tuple_size: int = 64
    num_shards: int = 36
    read_ratio: float = 0.5
    zipf_theta: float = 0.99
    drift_keys_per_sec: float = 0.0
    ramps: tuple = ()
    route_by_key: bool = False
    label: str = "storm"
    max_retries: int = 3
    start_at: float = 0.0


@dataclass
class TickBatch:
    """One tick's arrivals, parallel lists (the vectorized unit of work)."""

    times: list = field(default_factory=list)
    clients: list = field(default_factory=list)
    keys: list = field(default_factory=list)
    reads: list = field(default_factory=list)
    values: list = field(default_factory=list)

    def __len__(self):
        return len(self.times)


class ArrivalSchedule:
    """Lazy per-tick arrival generator over one seeded RNG stream.

    Deterministic: the draw sequence per tick is fixed (count, offsets,
    keys, then per-arrival client/op/value), so two schedules with the same
    stream and parameters produce identical batches regardless of how the
    consumer paces itself.
    """

    def __init__(self, rng, config, population, tick, batch_cap):
        self.rng = rng
        self.config = config
        self.population = population
        self.tick = tick
        self.batch_cap = batch_cap
        self.zipf = ZipfGenerator(config.num_tuples, config.zipf_theta)
        self.capped_arrivals = 0
        self.generated_arrivals = 0
        self._last_time = config.start_at

    def rate_multiplier(self, t):
        """Flash-crowd ramp: piecewise-linear interpolation of breakpoints."""
        points = self.config.ramps
        if not points:
            return 1.0
        if t <= points[0][0]:
            return points[0][1]
        for (t0, m0), (t1, m1) in zip(points, points[1:]):
            if t <= t1:
                span = t1 - t0
                if span <= 0.0:
                    return m1
                return m0 + (m1 - m0) * (t - t0) / span
        return points[-1][1]

    def ticks(self, until):
        """Yield :class:`TickBatch` per tick with arrivals strictly below
        ``until``. Arrival instants are strictly increasing across the whole
        schedule (duplicates nudged by an epsilon), which is what lets both
        execution modes dispatch in pure time order."""
        cfg = self.config
        rng = self.rng
        tick = self.tick
        epsilon = tick * 1e-9
        mean_base = self.population * cfg.rate_per_client * tick
        keyspace = cfg.num_tuples
        drift = cfg.drift_keys_per_sec
        read_ratio = cfg.read_ratio
        population = self.population
        random = rng.random
        randint = rng.randint
        t0 = cfg.start_at
        while t0 < until:
            count = rng.poisson(mean_base * self.rate_multiplier(t0))
            if count > self.batch_cap:
                self.capped_arrivals += count - self.batch_cap
                count = self.batch_cap
            batch = TickBatch()
            if count:
                offsets = sorted(random() for _ in range(count))
                ranks = self.zipf.sample_many(rng, count)
                shift = int(drift * t0) if drift else 0
                times = batch.times
                clients = batch.clients
                keys = batch.keys
                reads = batch.reads
                values = batch.values
                last = self._last_time
                for i in range(count):
                    t = t0 + offsets[i] * tick
                    if t <= last:
                        t = last + epsilon
                    last = t
                    if t >= until:
                        break
                    times.append(t)
                    clients.append(randint(0, population - 1))
                    keys.append((ranks[i] + shift) % keyspace if shift else ranks[i])
                    is_read = random() < read_ratio
                    reads.append(is_read)
                    values.append(None if is_read else randint(0, 1 << 30))
                self._last_time = last
                self.generated_arrivals += len(times)
            yield batch
            t0 += tick


class PopulationWorkload:
    """Runs a :class:`PopulationConfig` against a cluster, in either mode.

    Usage mirrors :class:`~repro.workloads.ycsb.YcsbWorkload`::

        workload = PopulationWorkload(cluster, PopulationConfig(...))
        workload.create()
        workload.start(until=30.0)
        cluster.run(until=30.0)
        workload.stop()
    """

    def __init__(self, cluster, config=None):
        self.cluster = cluster
        self.config = config or PopulationConfig()
        cluster_cfg = cluster.config
        self.population = (
            self.config.population
            if self.config.population is not None
            else cluster_cfg.storm_population
        )
        self.tick = (
            self.config.tick
            if self.config.tick is not None
            else cluster_cfg.storm_arrival_tick
        )
        self.batch_cap = (
            self.config.batch_cap
            if self.config.batch_cap is not None
            else cluster_cfg.storm_batch_cap
        )
        self.schema = None
        self.schedule = None
        self.mode = None
        self.committed = 0
        self.aborted = 0
        self.dispatched = 0
        self._running = False
        self._node_ids = cluster.node_ids()
        self._sessions = {nid: cluster.session(nid) for nid in self._node_ids}

    # ------------------------------------------------------------------
    def create(self):
        cfg = self.config
        self.schema = self.cluster.create_table(
            TABLE, num_shards=cfg.num_shards, tuple_size=cfg.tuple_size
        )
        rows = [(key, {"f0": key}) for key in range(cfg.num_tuples)]
        self.cluster.bulk_load(TABLE, rows)
        return self.schema

    def home_node(self, client):
        """A client's coordinator node (round-robin over the cluster)."""
        return self._node_ids[client % len(self._node_ids)]

    # ------------------------------------------------------------------
    def start(self, until):
        """Launch the drivers for arrivals in ``[start_at, until)``.

        Reads ``fastpath.batch_workload`` once: off = one pacer process per
        client (the legacy shape), on = one batched dispatcher.
        """
        if self._running:
            raise RuntimeError("population workload already started")
        self._running = True
        self.schedule = ArrivalSchedule(
            self.cluster.sim.rng(ARRIVALS_STREAM),
            self.config,
            self.population,
            self.tick,
            self.batch_cap,
        )
        if fastpath.batch_workload:
            self.mode = "batch"
            self.cluster.spawn(self._dispatch(until), name="storm-dispatch")
        else:
            self.mode = "per_client"
            self._start_per_client(until)

    def stop(self):
        self._running = False

    @property
    def capped_arrivals(self):
        return self.schedule.capped_arrivals if self.schedule else 0

    # ------------------------------------------------------------------
    # Batch mode: one dispatcher walking the merged schedule lazily.
    # ------------------------------------------------------------------
    def _dispatch(self, until):
        spawn_runner = self._spawn_runner
        for batch in self.schedule.ticks(until):
            times = batch.times
            clients = batch.clients
            keys = batch.keys
            reads = batch.reads
            values = batch.values
            for i in range(len(times)):
                if not self._running:
                    return
                yield At(times[i])
                spawn_runner(times[i], clients[i], keys[i], reads[i], values[i])

    # ------------------------------------------------------------------
    # Per-client mode: the legacy shape — every client is a process.
    # ------------------------------------------------------------------
    def _start_per_client(self, until):
        # Materialize the full schedule and deal it out by client. The
        # memory and process count here scale with the population — that is
        # the cost the batch mode exists to remove, measured honestly.
        per_client = {}
        for batch in self.schedule.ticks(until):
            for i in range(len(batch.times)):
                per_client.setdefault(batch.clients[i], []).append(
                    (batch.times[i], batch.keys[i], batch.reads[i], batch.values[i])
                )
        spawn = self.cluster.spawn
        for client in range(self.population):
            arrivals = per_client.get(client)
            spawn(self._pace(client, arrivals), name="storm-client")

    def _pace(self, client, arrivals):
        if not arrivals:
            return
            yield  # pragma: no cover - makes this function a generator
        spawn_runner = self._spawn_runner
        for time, key, is_read, value in arrivals:
            if not self._running:
                return
            yield At(time)
            spawn_runner(time, client, key, is_read, value)

    # ------------------------------------------------------------------
    # Shared runner: identical in both modes, so the timelines can't differ.
    # ------------------------------------------------------------------
    def _spawn_runner(self, time, client, key, is_read, value):
        self.dispatched += 1
        if self.config.route_by_key:
            node = self.cluster.shard_owner(self.schema.shard_for_key(key))
        else:
            node = self._node_ids[client % len(self._node_ids)]
        session = self._sessions[node]
        runner = self._run_one(session, time, key, is_read, value)
        sim = self.cluster.sim
        if sim.partitioned:
            sim.spawn_on_node(node, runner, name="storm-txn")
        else:
            sim.spawn(runner, name="storm-txn")

    def _run_one(self, session, arrival_time, key, is_read, value):
        label = self.config.label

        def body(session, txn):
            if is_read:
                yield from session.read(txn, TABLE, key)
            else:
                yield from session.update(txn, TABLE, key, {"f0": value})

        committed, _error = yield from run_transaction(session, body, label=label)
        retries = 0
        while not committed and self._running and retries < self.config.max_retries:
            retries += 1
            committed, _error = yield from run_transaction(
                session, body, label=label, begin_time=arrival_time
            )
        if committed:
            self.committed += 1
        else:
            self.aborted += 1
