"""Zipfian sampling (the YCSB skewed access pattern)."""

import bisect
import math


class ZipfGenerator:
    """Samples integers in [0, n) with a Zipf distribution.

    Uses the standard inverse-CDF method over precomputed cumulative weights;
    ``theta`` is the YCSB skew constant (0.99 by default).
    """

    def __init__(self, n, theta=0.99):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.theta = theta
        weights = [1.0 / math.pow(i + 1, theta) for i in range(n)]
        total = 0.0
        self._cumulative = []
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total = total

    def sample(self, rng):
        """Draw one rank using ``rng`` (an RngStream or random.Random)."""
        target = rng.random() * self._total
        return bisect.bisect_left(self._cumulative, target)

    def sample_many(self, rng, count):
        """Draw ``count`` ranks in one pass.

        Equivalent draw-for-draw to calling :meth:`sample` ``count`` times
        (the batch workload engine's equivalence tests depend on that), but
        with the cumulative table, total and bisect resolved once — the
        per-batch form the vectorized arrival generator uses.
        """
        cumulative = self._cumulative
        total = self._total
        search = bisect.bisect_left
        random = rng.random
        return [search(cumulative, random() * total) for _ in range(count)]
