"""Workload generators and clients.

- :mod:`repro.workloads.client` — closed-loop clients with abort/retry;
- :mod:`repro.workloads.zipf` — zipfian key sampling for skewed YCSB;
- :mod:`repro.workloads.ycsb` — the YCSB workload of §4.3;
- :mod:`repro.workloads.tpcc` — the TPC-C workload of §4.3 (warehouse-
  collocated shards, new-order/payment/order-status/delivery/stock-level);
- :mod:`repro.workloads.hybrid` — hybrid workloads A (batch ingestion) and B
  (analytical duplicate check) of §4.3;
- :mod:`repro.workloads.batch` — the vectorized population workload engine
  (storm-scale arrival batches, flag-gated by ``fastpath.batch_workload``).
"""

from repro.workloads.batch import (
    ArrivalSchedule,
    PopulationConfig,
    PopulationWorkload,
)
from repro.workloads.client import ClientPool, ClosedLoopClient, run_transaction
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload
from repro.workloads.tpcc import TpccConfig, TpccWorkload
from repro.workloads.hybrid import AnalyticalClient, BatchIngestClient

__all__ = [
    "AnalyticalClient",
    "ArrivalSchedule",
    "BatchIngestClient",
    "ClientPool",
    "ClosedLoopClient",
    "PopulationConfig",
    "PopulationWorkload",
    "TpccConfig",
    "TpccWorkload",
    "YcsbConfig",
    "YcsbWorkload",
    "run_transaction",
]
