"""The TPC-C workload of §4.3, scaled for the simulator.

Eight warehouse-partitioned tables (the paper migrates "3 warehouses — a
total of 24 shards given 8 TPC-C distributed tables"): warehouse, district,
customer, history, orders, new_orders, order_line and stock. All tables
share one collocation group keyed by warehouse id, so every transaction that
touches a single warehouse runs on a single node; ~10 % of new-order and
payment transactions pick a remote warehouse and become distributed (2PC).

The five standard transactions are implemented against the interactive
statement API: New-Order (45 %), Payment (43 %), Order-Status, Delivery and
Stock-Level (4 % each). Row contention is faithful: New-Order serializes per
district on ``d_next_o_id``, Payment updates the warehouse YTD row, Delivery
consumes the oldest undelivered order per district.
"""

from dataclasses import dataclass

from repro.cluster.shard import ValuePartitioner
from repro.workloads.client import ClientPool, ClosedLoopClient

TABLES = (
    "warehouse",
    "district",
    "customer",
    "history",
    "orders",
    "new_orders",
    "order_line",
    "stock",
)

_TUPLE_SIZES = {
    "warehouse": 128,
    "district": 128,
    "customer": 512,
    "history": 64,
    "orders": 64,
    "new_orders": 16,
    "order_line": 64,
    "stock": 256,
}


@dataclass
class TpccConfig:
    num_warehouses: int = 8
    districts_per_warehouse: int = 4
    customers_per_district: int = 20
    items: int = 50  # stock rows per warehouse
    initial_orders_per_district: int = 3
    order_lines_min: int = 5
    order_lines_max: int = 10
    remote_txn_prob: float = 0.10  # distributed transaction share (§4.3)
    mix: tuple = (0.45, 0.43, 0.04, 0.04, 0.04)  # NO, P, OS, D, SL
    client_think: float = 0.015  # pacing per client (sim scale)


class TpccWorkload:
    """Builds the TPC-C schema/data and its per-warehouse clients."""

    def __init__(self, cluster, config=None):
        self.cluster = cluster
        self.config = config or TpccConfig()
        self._history_seq = {}

    # ------------------------------------------------------------------
    # Schema and loading
    # ------------------------------------------------------------------
    def create(self, placement_by_warehouse=None):
        """Create all eight collocated tables.

        ``placement_by_warehouse`` maps warehouse index (0-based) to node id;
        the default spreads warehouses round-robin.
        """
        cfg = self.config
        node_ids = self.cluster.node_ids()
        if placement_by_warehouse is None:
            placement_by_warehouse = {
                w: node_ids[w % len(node_ids)] for w in range(cfg.num_warehouses)
            }
        for table in TABLES:
            self.cluster.create_table(
                table,
                partitioner=ValuePartitioner(cfg.num_warehouses, lambda key: key[0] - 1),
                tuple_size=_TUPLE_SIZES[table],
                collocation_group="tpcc",
                placement=placement_by_warehouse,
            )
        self._load()

    def _load(self):
        cfg = self.config
        warehouses, districts, customers, stocks = [], [], [], []
        orders, new_orders, order_lines = [], [], []
        for w in range(1, cfg.num_warehouses + 1):
            warehouses.append(((w,), {"ytd": 0.0}))
            for i in range(1, cfg.items + 1):
                stocks.append(((w, i), {"qty": 100, "price": 9.99, "ytd": 0}))
            for d in range(1, cfg.districts_per_warehouse + 1):
                next_o = cfg.initial_orders_per_district + 1
                districts.append(
                    ((w, d), {"ytd": 0.0, "next_o_id": next_o, "next_deliv_o_id": 1})
                )
                for c in range(1, cfg.customers_per_district + 1):
                    customers.append(
                        ((w, d, c), {"balance": 0.0, "payments": 0, "deliveries": 0})
                    )
                for o in range(1, cfg.initial_orders_per_district + 1):
                    ol_cnt = cfg.order_lines_min
                    orders.append(
                        ((w, d, o), {"c_id": 1 + o % cfg.customers_per_district,
                                     "ol_cnt": ol_cnt, "carrier": None})
                    )
                    new_orders.append(((w, d, o), {}))
                    for ol in range(1, ol_cnt + 1):
                        order_lines.append(
                            ((w, d, o, ol), {"i_id": 1 + (o + ol) % cfg.items,
                                             "qty": 5, "amount": 49.95})
                        )
        self.cluster.bulk_load("warehouse", warehouses)
        self.cluster.bulk_load("district", districts)
        self.cluster.bulk_load("customer", customers)
        self.cluster.bulk_load("stock", stocks)
        self.cluster.bulk_load("orders", orders)
        self.cluster.bulk_load("new_orders", new_orders)
        self.cluster.bulk_load("order_line", order_lines)

    # ------------------------------------------------------------------
    # Transaction bodies
    # ------------------------------------------------------------------
    def _pick_warehouses(self, rng, home):
        """(home, supply) pair; ~remote_txn_prob of txns use a remote one."""
        cfg = self.config
        if cfg.num_warehouses > 1 and rng.random() < cfg.remote_txn_prob:
            remote = home
            while remote == home:
                remote = rng.randint(1, cfg.num_warehouses)
            return home, remote
        return home, home

    def new_order_body(self, rng, home):
        cfg = self.config
        w, supply_w = self._pick_warehouses(rng, home)
        d = rng.randint(1, cfg.districts_per_warehouse)
        c = rng.randint(1, cfg.customers_per_district)
        ol_cnt = rng.randint(cfg.order_lines_min, cfg.order_lines_max)
        # One supply warehouse per transaction; items sorted for lock order.
        items = sorted(rng.sample(range(1, cfg.items + 1), min(ol_cnt, cfg.items)))

        def body(session, txn):
            yield from session.read(txn, "warehouse", (w,))
            district = yield from session.lock_row(txn, "district", (w, d))
            o_id = district["next_o_id"]
            yield from session.update(
                txn, "district", (w, d), dict(district, next_o_id=o_id + 1)
            )
            yield from session.read(txn, "customer", (w, d, c))
            yield from session.insert(
                txn, "orders", (w, d, o_id),
                {"c_id": c, "ol_cnt": len(items), "carrier": None},
            )
            yield from session.insert(txn, "new_orders", (w, d, o_id), {})
            for number, item in enumerate(items, start=1):
                stock = yield from session.read(txn, "stock", (supply_w, item))
                qty = stock["qty"] - 5
                if qty < 10:
                    qty += 91
                yield from session.update(
                    txn, "stock", (supply_w, item), dict(stock, qty=qty)
                )
                yield from session.insert(
                    txn, "order_line", (w, d, o_id, number),
                    {"i_id": item, "qty": 5, "amount": 5 * stock["price"]},
                )

        return body

    def payment_body(self, rng, home):
        cfg = self.config
        w, customer_w = self._pick_warehouses(rng, home)
        d = rng.randint(1, cfg.districts_per_warehouse)
        c = rng.randint(1, cfg.customers_per_district)
        amount = rng.uniform(1.0, 5000.0)
        seq = self._history_seq.get(home, 0) + 1
        self._history_seq[home] = seq

        def body(session, txn):
            warehouse = yield from session.lock_row(txn, "warehouse", (w,))
            yield from session.update(
                txn, "warehouse", (w,), {"ytd": warehouse["ytd"] + amount}
            )
            district = yield from session.lock_row(txn, "district", (w, d))
            yield from session.update(
                txn, "district", (w, d), dict(district, ytd=district["ytd"] + amount)
            )
            customer = yield from session.read(txn, "customer", (customer_w, d, c))
            yield from session.update(
                txn,
                "customer",
                (customer_w, d, c),
                dict(
                    customer,
                    balance=customer["balance"] - amount,
                    payments=customer["payments"] + 1,
                ),
            )
            yield from session.insert(
                txn, "history", (home, "h", seq), {"amount": amount, "w": w, "d": d}
            )

        return body

    def order_status_body(self, rng, home):
        cfg = self.config
        d = rng.randint(1, cfg.districts_per_warehouse)
        c = rng.randint(1, cfg.customers_per_district)

        def body(session, txn):
            yield from session.read(txn, "customer", (home, d, c))
            district = yield from session.read(txn, "district", (home, d))
            latest_o = district["next_o_id"] - 1
            order = yield from session.read(txn, "orders", (home, d, latest_o))
            if order is not None:
                for ol in range(1, order["ol_cnt"] + 1):
                    yield from session.read(txn, "order_line", (home, d, latest_o, ol))

        return body

    def delivery_body(self, rng, home):
        cfg = self.config

        def body(session, txn):
            for d in range(1, cfg.districts_per_warehouse + 1):
                district = yield from session.lock_row(txn, "district", (home, d))
                o_id = district["next_deliv_o_id"]
                if o_id >= district["next_o_id"]:
                    continue  # nothing to deliver in this district
                yield from session.update(
                    txn, "district", (home, d), dict(district, next_deliv_o_id=o_id + 1)
                )
                yield from session.delete(txn, "new_orders", (home, d, o_id))
                order = yield from session.read(txn, "orders", (home, d, o_id))
                yield from session.update(
                    txn, "orders", (home, d, o_id), dict(order, carrier=rng.randint(1, 10))
                )
                customer_key = (home, d, order["c_id"])
                customer = yield from session.read(txn, "customer", customer_key)
                yield from session.update(
                    txn,
                    "customer",
                    customer_key,
                    dict(customer, deliveries=customer["deliveries"] + 1),
                )

        return body

    def stock_level_body(self, rng, home):
        cfg = self.config
        d = rng.randint(1, cfg.districts_per_warehouse)

        def body(session, txn):
            district = yield from session.read(txn, "district", (home, d))
            latest_o = district["next_o_id"] - 1
            seen_items = set()
            for o in range(max(1, latest_o - 4), latest_o + 1):
                order = yield from session.read(txn, "orders", (home, d, o))
                if order is None:
                    continue
                for ol in range(1, order["ol_cnt"] + 1):
                    line = yield from session.read(txn, "order_line", (home, d, o, ol))
                    if line is not None:
                        seen_items.add(line["i_id"])
            for item in sorted(seen_items):
                yield from session.read(txn, "stock", (home, item))

        return body

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def body_factory(self, rng, home):
        mix = self.config.mix
        makers = (
            self.new_order_body,
            self.payment_body,
            self.order_status_body,
            self.delivery_body,
            self.stock_level_body,
        )

        def factory():
            draw = rng.random()
            cumulative = 0.0
            for probability, maker in zip(mix, makers):
                cumulative += probability
                if draw < cumulative:
                    return maker(rng, home)
            return makers[-1](rng, home)

        return factory

    def make_clients(self, label="tpcc", clients_per_warehouse=1):
        """One client per warehouse by default (the paper starts the same
        number of clients as warehouses), coordinated by the warehouse's
        initial home node."""
        clients = []
        for w in range(1, self.config.num_warehouses + 1):
            warehouse_shard = self.cluster.tables["warehouse"].shard_for_key((w,))
            home_node = self.cluster.shard_owner(warehouse_shard)

            def resolver(shard=warehouse_shard):
                return self.cluster.shard_owner(shard)

            for j in range(clients_per_warehouse):
                rng = self.cluster.sim.rng("tpcc-client-{}-{}".format(w, j))
                clients.append(
                    ClosedLoopClient(
                        self.cluster,
                        home_node,
                        self.body_factory(rng, w),
                        label,
                        think_time=self.config.client_think,
                        node_resolver=resolver,
                    )
                )
        return ClientPool(clients)
