"""Hybrid workloads A and B (§4.3).

**Hybrid A** runs a uniform YCSB workload while a batch ingestion client
issues large batch insert transactions in a tight loop (the paper uses
PostgreSQL's COPY with one million 1 KB tuples per batch): tuples carry
monotonically increasing primary keys starting above the current maximum, the
coordinator routes them to their shards, and the whole batch commits with
2PC. The client retries aborted batches.

**Hybrid B** runs the YCSB workload while an analytical transaction checks
for duplicate primary keys across all nodes — a long multi-statement
read-only query, also used to verify database consistency during migration.
"""

from collections import Counter

from repro.workloads.client import run_transaction
from repro.workloads.ycsb import TABLE as YCSB_TABLE


class BatchIngestClient:
    """Issues ``num_batches`` batch insert transactions back to back."""

    def __init__(
        self,
        cluster,
        node_id,
        table=YCSB_TABLE,
        start_key=None,
        batch_tuples=1000,
        num_batches=10,
        label="batch",
        tuples_per_second=None,
    ):
        """``tuples_per_second`` paces the ingest like a real stream source
        (edge devices / user activity feeding COPY, §2.3.1); None ingests as
        fast as the engine allows."""
        self.cluster = cluster
        self.session = cluster.session(node_id)
        self.table = table
        self.batch_tuples = batch_tuples
        self.num_batches = num_batches
        self.label = label
        self.tuples_per_second = tuples_per_second
        self.next_key = start_key
        self.committed = 0
        self.aborted = 0
        self.tuples_ingested = 0
        self.process = None
        self.finished_at = None

    def start(self):
        self.process = self.cluster.spawn(self._run(), name="batch-ingest")
        return self.process

    def _batch_body(self, first_key):
        batch_tuples = self.batch_tuples
        table = self.table
        rate = self.tuples_per_second
        pace_chunk = 20

        def body(session, txn):
            for offset in range(batch_tuples):
                key = first_key + offset
                yield from session.insert(txn, table, key, {"f0": key})
                if rate and offset % pace_chunk == pace_chunk - 1:
                    yield pace_chunk / rate

        return body

    def _run(self):
        self.cluster.metrics.mark("batch_workload_start")
        for _batch in range(self.num_batches):
            first_key = self.next_key
            committed = False
            while not committed:
                committed, _error = yield from run_transaction(
                    self.session,
                    self._batch_body(first_key),
                    label=self.label,
                    process=self.process,
                )
                if committed:
                    self.committed += 1
                    self.tuples_ingested += self.batch_tuples
                else:
                    self.aborted += 1
            self.next_key = first_key + self.batch_tuples
        self.finished_at = self.cluster.sim.now
        self.cluster.metrics.mark("batch_workload_end")


class AnalyticalClient:
    """Runs the hybrid-B duplicate-primary-key check (§4.3).

    ``select count(*) from (select count(*)=1 from t group by aid) where ...``
    — implemented as a snapshot scan of every shard followed by a duplicate
    count. The result doubles as a consistency check: a correct migration
    never produces duplicates or losses.
    """

    def __init__(
        self,
        cluster,
        node_id,
        table=YCSB_TABLE,
        label="analytical",
        repeat=1,
        pause=0.0,
        start_delay=0.0,
        per_row_cost=0.0,
    ):
        """``per_row_cost`` models the aggregation work per scanned row (the
        paper's group-by over 100 M rows runs for tens of seconds);
        ``start_delay`` lets experiments launch the query mid-scenario."""
        self.cluster = cluster
        self.session = cluster.session(node_id)
        self.table = table
        self.label = label
        self.repeat = repeat
        self.pause = pause
        self.start_delay = start_delay
        self.per_row_cost = per_row_cost
        self.duplicates = None
        self.rows_seen = None
        self.committed = 0
        self.aborted = 0
        self.process = None
        self.finished_at = None

    def start(self):
        self.process = self.cluster.spawn(self._run(), name="analytical")
        return self.process

    def _body(self):
        client = self

        def body(session, txn):
            keys = yield from session.scan_table(txn, client.table)
            if client.per_row_cost and keys:
                # Group-by / aggregation work on the coordinator, in chunks.
                total = client.per_row_cost * len(keys)
                chunk = 0.1
                while total > 0:
                    step = min(chunk, total)
                    yield session.node.cpu.use(step)
                    total -= step
            counts = Counter(keys)
            client.duplicates = sum(1 for _k, c in counts.items() if c > 1)
            client.rows_seen = len(keys)

        return body

    def _run(self):
        if self.start_delay:
            yield self.start_delay
        self.cluster.metrics.mark("analytical_start")
        for _i in range(self.repeat):
            committed = False
            while not committed:
                committed, _error = yield from run_transaction(
                    self.session, self._body(), label=self.label, process=self.process
                )
                if committed:
                    self.committed += 1
                else:
                    self.aborted += 1
            if self.pause:
                yield self.pause
        self.finished_at = self.cluster.sim.now
        self.cluster.metrics.mark("analytical_end")
