"""Cost model and cluster configuration.

All virtual-time costs live here so experiments can scale them coherently.
Defaults are loosely calibrated to the paper's testbed (64 vCPU nodes, NVMe
WAL, 10 Gbps network): absolute throughput numbers are simulator-scale, but
the *ratios* between CPU work, WAL flushes, network hops and pull I/O — which
determine every qualitative result in the evaluation — are preserved.
"""

from dataclasses import dataclass, field

from repro.sim.network import NetworkConfig
from repro.sim.topology import LinkProfile, Topology

# ----------------------------------------------------------------------
# Lint scoping (simlint / simrace)
#
# One declarative table for where each rule applies, consumed by
# ``repro.analysis.engine.default_config``. Patterns are fnmatch globs
# against posix paths relative to the lint root (``*/`` tolerant). An empty
# / missing "include" means "everywhere under the linted roots"; "exclude"
# always wins. Rationale for the exemptions:
#
# - The DES kernel and the RNG module are the only places allowed to touch
#   the primitives they encapsulate (virtual time / seeding) — exempt from
#   SIM001 / SIM002 respectively.
# - The bench timing modules and the profiler measure host wall-clock time
#   *by definition* and never feed it back into the simulation — exempt
#   from SIM001 only.
# - The analysis package lints everything but itself.
# - The protocol rules (SIM004 raw sends; SIM101–SIM104 yield-point races)
#   apply to protocol code only: the RPC layer and the network model
#   legitimately call raw ``send`` and juggle their own state across
#   yields, and live outside these paths.
# ----------------------------------------------------------------------
_LINT_SELF = ("*/analysis/*",)
# - The parallel drain's worker shuttle (``repro.sim.parallel``) times the
#   multiprocessing pool exchange with host wall clock (the denominator of
#   worker-utilization fractions) — that one module is exempt from SIM001;
#   its job/report dicts ride the pool transport, not the simulated
#   network, so the raw-send rule is explicitly kept away from it too.
_WALL_CLOCK_OK = (
    "*/sim/kernel.py",
    "*/sim/partition.py",
    "*/sim/parallel.py",
    "*/bench/kernel_bench.py",
    "*/bench/txn_bench.py",
    "*/bench/migration_bench.py",
    "*/bench/cluster_bench.py",
    "*/bench/sweep.py",
    "*/profiling/*",
)
# The batch workload engine is protocol-shaped generator code (dispatchers
# and runners crossing yields), so the yield-point race rules cover it too.
_PROTOCOL_PATHS = (
    "*/txn/*",
    "*/migration/*",
    "*/cluster/*",
    "*/faults/*",
    "*/workloads/batch.py",
)

#: rule code -> {"include": globs, "exclude": globs} (either key optional).
LINT_RULE_SCOPES: dict[str, dict[str, tuple[str, ...]]] = {
    "SIM001": {"exclude": _WALL_CLOCK_OK + _LINT_SELF},
    "SIM002": {"exclude": ("*/sim/rng.py",) + _LINT_SELF},
    "SIM003": {"exclude": _LINT_SELF},
    "SIM004": {"include": _PROTOCOL_PATHS, "exclude": ("*/sim/parallel.py",)},
    "SIM005": {"exclude": _LINT_SELF},
    "SIM006": {"exclude": _LINT_SELF},
    "SIM101": {"include": _PROTOCOL_PATHS},
    "SIM102": {"include": _PROTOCOL_PATHS},
    "SIM103": {"include": _PROTOCOL_PATHS},
    "SIM104": {"include": _PROTOCOL_PATHS},
}


@dataclass
class CostModel:
    """Virtual-time costs (seconds) for primitive database operations."""

    cpu_read: float = 15e-6  # MVCC point read, first version
    cpu_per_version: float = 3e-6  # each extra chain version traversed
    cpu_write: float = 25e-6  # insert/update/delete executed by a txn
    cpu_apply: float = 18e-6  # replaying one propagated change record
    cpu_route: float = 1e-6  # shard-map cache lookup
    cpu_shardmap_read: float = 10e-6  # MVCC read of the shard map table
    wal_flush: float = 80e-6  # synchronous WAL flush (commit / prepare)
    snapshot_scan_per_tuple: float = 4e-6  # snapshot copy scan + install
    pull_chunk_latency: float = 0.02  # Squall: fetch + store one 8 MB chunk
    client_overhead: float = 10e-6  # per-statement client/parse overhead
    cpu_propagate: float = 1e-6  # send-process CPU per WAL record scanned
    spill_threshold: int = 5000  # records before an update cache spills (§3.3)
    spill_reload_per_batch: float = 0.5e-3  # disk reload latency per 1k records


@dataclass
class TierProfiles:
    """Per-tier link profiles for topology-aware networks.

    Defaults are loosely calibrated to a public-cloud deployment: a
    non-blocking 10 Gbps rack switch, a 5 Gbps rack uplink, a ~1 ms / 2 Gbps
    inter-AZ trunk and a ~30 ms / 500 Mbps cross-region path. Like the
    :class:`CostModel`, the absolute numbers are simulator-scale — what the
    scenarios depend on is the *ordering* (each wider tier is slower and
    narrower) and the fact that the trunk, not the endpoint, is the scarce
    resource.
    """

    rack_latency: float = 0.0002
    rack_bandwidth: float = 1.25e9  # 10 Gbps intra-rack
    az_latency: float = 0.0005
    az_bandwidth: float = 6.25e8  # 5 Gbps rack uplink (cross-rack, same AZ)
    region_latency: float = 0.001
    region_bandwidth: float = 2.5e8  # 2 Gbps inter-AZ trunk (same region)
    geo_latency: float = 0.03
    geo_bandwidth: float = 6.25e7  # 500 Mbps cross-region

    def as_profiles(self) -> dict:
        """Tier name -> :class:`LinkProfile`, as the Topology API expects."""
        return {
            "rack": LinkProfile(self.rack_latency, self.rack_bandwidth),
            "az": LinkProfile(self.az_latency, self.az_bandwidth),
            "region": LinkProfile(self.region_latency, self.region_bandwidth),
            "geo": LinkProfile(self.geo_latency, self.geo_bandwidth),
        }


@dataclass
class ClusterConfig:
    """Topology and engine configuration for a simulated cluster."""

    num_nodes: int = 6
    cpu_per_node: int = 8  # parallel execution slots per elastic node
    timestamp_scheme: str = "dts"  # "dts" (default, as in §4.1) or "gts"
    clock_skew: float = 0.0  # max absolute physical skew per node (DTS)
    replay_parallelism: int = 18  # §4.1: parallel apply threads
    costs: CostModel = field(default_factory=CostModel)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    # Network topology. ``None`` is the degenerate case: one rack priced by
    # the flat ``network`` numbers above — the uncontended constant-delay
    # model, byte-identical to the pre-topology network. A multi-tier
    # :class:`~repro.sim.topology.Topology` (e.g. from ``make_topology``
    # with the ``tiers`` profiles) switches the network to contended
    # fair-share trunks.
    topology: Topology | None = None
    tiers: TierProfiles = field(default_factory=TierProfiles)
    # Migration's share of any contended trunk (the "throttled pump" knob):
    # the copy/propagation traffic class is capped at this fraction of link
    # bandwidth when foreground transfers compete. 1.0 = plain fair share.
    pump_share: float = 1.0
    # Background backup traffic (the backup-interference scenario): bytes/s
    # streamed by one backup client and the chunk size it sends in.
    backup_rate: float = 5e7
    backup_chunk_bytes: int = 262144
    vacuum_interval: float = 1.0  # seconds between vacuum passes
    cpu_bin_width: float = 1.0  # CPU usage accounting bin (Figure 10)
    # Fault tolerance (§3.7: each node can have synchronized replicas; a
    # replica takes over as the new primary on failure). replication_factor 0
    # disables replication; > 0 makes every commit wait for the synchronous
    # replica round trip.
    replication_factor: int = 0
    replica_sync_latency: float = 0.0004  # per WAL flush with replication on
    # RPC discipline (chaos hardening): every cross-node protocol hop waits
    # at most rpc_timeout for delivery, retries with exponential backoff and
    # gives up (aborting the transaction) after rpc_max_attempts. 2PC
    # decision delivery (commit/abort records) retries forever instead —
    # a decided transaction's outcome must reach every participant.
    rpc_timeout: float = 0.05
    rpc_max_attempts: int = 4
    rpc_backoff_base: float = 0.02
    rpc_backoff_cap: float = 0.5
    # Migration data-path batching (§3.2/§3.3). Formerly magic constants in
    # snapshot_copy/propagation; centralized so experiments can tune them.
    snapshot_batch_tuples: int = 256  # tuples per snapshot-copy RPC batch
    pump_batch_records: int = 64  # WAL records per send-process CPU charge
    propagation_msg_overhead: int = 128  # protocol bytes per shipped message
    default_tuple_size: int = 64  # bytes for tables with no declared size
    # Per-shard replication groups (leader + N followers, WAL shipping,
    # quorum-acked commit). The lease monitor declares a leader dead after
    # repl_lease_timeout without a heartbeat and elects the lowest live
    # replica id; repl_ship_batch bounds records per shipped group-log entry
    # message for the per-follower feed.
    repl_lease_interval: float = 0.05
    repl_lease_timeout: float = 0.2
    repl_ship_batch: int = 64
    # Storm-scale workload knobs (repro.workloads.batch). The population
    # arrival generator models ``storm_population`` clients as Poisson
    # arrival batches drawn once per ``storm_arrival_tick`` seconds of
    # virtual time, with at most ``storm_batch_cap`` arrivals admitted per
    # tick (overflow is counted, never silently dropped). Centralized here —
    # same policy as the migration batching constants above — so the storm
    # bench, the CLI and the tests all read one source of truth.
    storm_population: int = 10_000
    storm_arrival_tick: float = 0.05
    storm_batch_cap: int = 8192
    seed: int = 0
