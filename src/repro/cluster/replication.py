"""Per-shard replication groups: WAL shipping, quorum commit, failover.

Each replicated shard gets a *group*: the owning node is the leader and N
followers hold full copies. A send process on the leader tails the leader's
WAL through the per-shard routing index (the same shard-routed pump the
migration propagation pipeline uses) and turns the shard's transaction
stream into a *group log* of prepare/commit/abort entries. One feeder
process per follower ships log entries in order over the reliable-RPC layer,
applies them to the follower's heap and acks; a prepare or commit is
*quorum-acknowledged* once a majority of the group (leader included) holds
it, and 2PC on the coordinator waits for exactly that acknowledgement.

Failover is lease-based and deterministic: a monitor probes the leader every
``repl_lease_interval`` through the bounded RPC path, and after
``repl_lease_timeout`` of silence elects the **lowest live replica id** as
the new leader (ScalienDB's rule). The election bumps the group *epoch*,
fails in-flight quorum waits with :class:`~repro.txn.errors.StaleEpoch`
(the coordinator aborts cleanly or re-routes the decision — never a double
commit), catches the new leader up from the group log, and republishes the
shard map row everywhere so routing moves atomically.

Migration handover (:meth:`ShardReplicaGroup.rehome`) is the same epoch
bump driven by Remus: the destination joins the group, the group drains,
and leadership transfers without a copy because the followers already hold
the shard — which is also why ``wait_and_remaster`` onto an in-sync
follower is near-free (the STAR-style asymmetric path).
"""

from bisect import bisect_left

from repro.profiling.counters import COUNTERS
from repro.sim.errors import Interrupt
from repro.storage.wal import WalRecordKind
from repro.txn.errors import ReplicaFailover, RpcAbort, StaleEpoch

_PROBE_SIZE = 32  # heartbeat probe bytes
_ACK_SIZE = 64  # follower ack / decision-relay bytes
_FNV_PRIME = 1000003
_SIG_MOD = (1 << 61) - 1
_KIND_CODE = {"prepare": 1, "commit": 2, "abort": 3}


class GroupLogEntry:
    """One replicated decision: a prepare, commit or abort for one txn.

    ``sig`` is a pure-integer rolling fingerprint of the log prefix ending
    at this entry (no ``hash()``: stable across PYTHONHASHSEED), which the
    divergence invariant compares against each follower's applied position.
    """

    __slots__ = (
        "seq", "kind", "origin", "xid", "records", "commit_ts", "sig",
        "acked_by", "quorum_event",
    )

    def __init__(self, seq, kind, origin, xid, records, commit_ts, sig):
        self.seq = seq
        self.kind = kind
        self.origin = origin  # node id whose WAL produced the entry
        self.xid = xid  # origin-local xid
        self.records = records  # change records (prepare / bare commits)
        self.commit_ts = commit_ts
        self.sig = sig
        self.acked_by = []  # replica ids holding the entry, in ack order
        self.quorum_event = None


class Replica:
    """One member of a shard's replication group."""

    __slots__ = (
        "replica_id", "node_id", "down", "down_since", "next_index",
        "applied_sig", "stash", "feeder",
    )

    def __init__(self, replica_id, node_id):
        self.replica_id = replica_id
        self.node_id = node_id
        self.down = False  # replica-process crash (node may be healthy)
        self.down_since = None
        self.next_index = 0  # first group-log entry not yet applied here
        self.applied_sig = 0  # fingerprint of the applied prefix
        self.stash = {}  # (origin, xid) -> prepared change records
        self.feeder = None


class ShardReplicaGroup:
    """Leader + followers for one shard, with a shared group log."""

    def __init__(self, cluster, shard_id, node_ids):
        self.cluster = cluster
        self.sim = cluster.sim
        self.shard_id = shard_id
        self.config = cluster.config
        self.costs = cluster.config.costs
        self.epoch = 1
        self.log = []
        self.replicas = [Replica(i, node_id) for i, node_id in enumerate(node_ids)]
        self.leader_id = 0
        self._entry_index = {}  # (kind, origin, xid) -> entry
        self._origin_codes = {}  # node id -> stable small int (no hash())
        self._quorum_waiters = []  # (kind, origin, xid, event)
        self._wake = None  # event armed while a feeder waits for work
        self._pump_proc = None
        self._pump_reader = None
        self._pump_caches = {}  # leader-local xid -> cached change records
        self._prepared = {}  # leader-local xid -> records already logged
        self._monitor_proc = None
        self._electing = False

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    @property
    def leader(self):
        return self._by_id(self.leader_id)

    @property
    def leader_node_id(self):
        return self._by_id(self.leader_id).node_id

    @property
    def quorum(self):
        return len(self.replicas) // 2 + 1

    def _by_id(self, replica_id):
        for replica in self.replicas:
            if replica.replica_id == replica_id:
                return replica
        raise KeyError(replica_id)

    def replica_on(self, node_id):
        for replica in self.replicas:
            if replica.node_id == node_id:
                return replica
        return None

    def replica_down(self, replica):
        return replica.down or self.cluster.nodes[replica.node_id].failed

    def live_replicas(self):
        return [r for r in self.replicas if not self.replica_down(r)]

    def live_followers(self):
        return [r for r in self.live_replicas() if r.replica_id != self.leader_id]

    def _origin_code(self, node_id):
        code = self._origin_codes.get(node_id)
        if code is None:
            code = self._origin_codes[node_id] = len(self._origin_codes) + 1
        return code

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Clone the leader's committed state to the followers and spawn the
        pump, the per-follower feeders and the lease monitor."""
        leader_node = self.cluster.nodes[self.leader_node_id]
        rows = self._committed_rows(leader_node)
        for replica in self.replicas:
            if replica.replica_id == self.leader_id:
                continue
            self.cluster.nodes[replica.node_id].bulk_install(self.shard_id, rows)
        self._start_pump(leader_node.wal.tail_lsn)
        for replica in self.replicas:
            self._start_feeder(replica)
        self._monitor_proc = self.sim.spawn(
            self._monitor(), name="repl-monitor:{}".format(self.shard_id)
        )

    def _committed_rows(self, node):
        heap = node.heap_for(self.shard_id)
        rows = []
        for key in heap.sorted_keys():
            version = heap.latest_committed_or_locked(key)
            if version is None:
                continue
            if node.clog.status(version.xmin).value != "committed":
                continue
            if (
                version.xmax is not None
                and node.clog.status(version.xmax).value == "committed"
            ):
                continue
            rows.append((key, version.value))
        return rows

    def _start_pump(self, from_lsn):
        leader_node = self.cluster.nodes[self.leader_node_id]
        self._pump_caches = {}
        self._prepared = {}
        self._pump_reader = leader_node.wal.reader(from_lsn)
        self._pump_proc = self.sim.spawn(
            self._pump(leader_node, self._pump_reader),
            name="repl-pump:{}".format(self.shard_id),
        )

    def _stop_pump(self):
        if self._pump_proc is not None and not self._pump_proc.finished:
            self._pump_proc.interrupt("replication pump stopped")
        self._pump_proc = None

    def _start_feeder(self, replica):
        replica.feeder = self.sim.spawn(
            self._feed(replica),
            name="repl-feed:{}:{}".format(self.shard_id, replica.node_id),
        )

    def stop(self):
        self._stop_pump()
        if self._monitor_proc is not None and not self._monitor_proc.finished:
            self._monitor_proc.interrupt("replication stopped")
        for replica in self.replicas:
            if replica.feeder is not None and not replica.feeder.finished:
                replica.feeder.interrupt("replication stopped")

    # ------------------------------------------------------------------
    # Wake plumbing (log appends, elections, heals)
    # ------------------------------------------------------------------
    def _wake_event(self):
        if self._wake is None:
            self._wake = self.sim.event(name="repl-wake:{}".format(self.shard_id))
        return self._wake

    def _kick(self):
        if self._wake is not None:
            armed, self._wake = self._wake, None
            armed.succeed(None)

    # ------------------------------------------------------------------
    # Leader pump: leader WAL -> group log (shard-routed, as in PR 5)
    # ------------------------------------------------------------------
    def _pump(self, leader_node, reader):
        # The reader is handed in by _start_pump rather than re-read from
        # self._pump_reader: the attribute changes on every reconfiguration,
        # and this pump generation must keep its own cursor even if a stale
        # scheduling slot runs it one last time after an election replaced
        # the pump (check-then-act across the yields below).
        try:
            wal = leader_node.wal
            cpu = leader_node.cpu
            batch = self.config.repl_ship_batch
            charge = self.costs.cpu_propagate * batch
            since_charge = 0
            change_index, control_index = wal.routing_index()
            route = change_index.get(self.shard_id)
            if route is None:
                # Share the live list so appends after this point land in it.
                route = change_index[self.shard_id] = []
            routes = [control_index, route]
            cursors = [bisect_left(r, reader.next_lsn) for r in routes]
            while True:
                if reader.next_lsn >= wal.tail_lsn:
                    yield wal._wait_appended()
                    continue
                next_lsn = wal.tail_lsn
                winner = -1
                for index, r in enumerate(routes):
                    cursor = cursors[index]
                    if cursor < len(r) and r[cursor] < next_lsn:
                        next_lsn = r[cursor]
                        winner = index
                gap = next_lsn - reader.next_lsn
                if gap:
                    reader.next_lsn += gap
                    since_charge += gap
                    while since_charge >= batch:
                        yield cpu.use(charge)
                        since_charge -= batch
                if winner < 0:
                    continue
                record = wal.record_at(next_lsn)
                reader.next_lsn = next_lsn + 1
                cursors[winner] += 1
                since_charge += 1
                if since_charge >= batch:
                    yield cpu.use(charge)
                    since_charge = 0
                self._handle(record, leader_node.node_id)
        except Interrupt:
            return

    def _handle(self, record, origin):
        kind = record.kind
        if kind.is_change:
            if record.shard_id == self.shard_id:
                self._pump_caches.setdefault(record.xid, []).append(record)
            return
        if kind is WalRecordKind.PREPARE:
            records = self._pump_caches.pop(record.xid, None)
            if records is not None:
                self._prepared[record.xid] = records
                self._append_entry("prepare", origin, record.xid, records, None)
            return
        if kind in (WalRecordKind.COMMIT, WalRecordKind.COMMIT_PREPARED):
            if record.xid in self._prepared:
                self._prepared.pop(record.xid)
                self._append_entry("commit", origin, record.xid, None, record.commit_ts)
            else:
                # Un-prepared commit (e.g. a migration replay shadow landing
                # on this leader): the commit entry carries the changes.
                records = self._pump_caches.pop(record.xid, None)
                if records is not None:
                    self._append_entry(
                        "commit", origin, record.xid, records, record.commit_ts
                    )
            return
        if kind in (WalRecordKind.ABORT, WalRecordKind.ROLLBACK_PREPARED):
            self._pump_caches.pop(record.xid, None)
            if record.xid in self._prepared:
                self._prepared.pop(record.xid)
                self._append_entry("abort", origin, record.xid, None, None)
            return

    def _append_entry(self, kind, origin, xid, records, commit_ts):
        prev = self.log[-1].sig if self.log else 0
        sig = (
            prev * _FNV_PRIME
            + _KIND_CODE[kind]
            + 7 * self._origin_code(origin)
            + 31 * xid
            + 1013 * (commit_ts or 0)
            + 9176 * (len(records) if records else 0)
        ) % _SIG_MOD
        entry = GroupLogEntry(len(self.log), kind, origin, xid, records, commit_ts, sig)
        self.log.append(entry)
        self._entry_index[(kind, origin, xid)] = entry
        leader = self._by_id(self.leader_id)
        entry.acked_by.append(leader.replica_id)
        leader.next_index = len(self.log)
        leader.applied_sig = sig
        self._kick()
        self._resolve_quorum_waiters()
        return entry

    # ------------------------------------------------------------------
    # Follower feed: group log -> follower heap, in order, with acks
    # ------------------------------------------------------------------
    def _feed(self, replica):
        try:
            while True:
                if (
                    replica.replica_id == self.leader_id
                    or self.replica_down(replica)
                    or replica.next_index >= len(self.log)
                ):
                    yield self._wake_event()
                    continue
                entry = self.log[replica.next_index]
                size = self.config.propagation_msg_overhead
                if entry.records:
                    size += sum(r.size for r in entry.records)
                yield from self.cluster.rpc_send(
                    self.leader_node_id, replica.node_id, size, persistent=True
                )
                COUNTERS.repl_ship_batches += 1
                # An election/rehome catch-up may have applied this entry (and
                # more) to the replica while the ship RPC was in flight:
                # re-applying would double-count, and the cursor write below
                # would roll next_index back over the newer applies.
                if replica.next_index > entry.seq:
                    continue
                yield from self._apply_entry(replica, entry)
                if replica.next_index > entry.seq:
                    continue  # overtaken while applying: never rewind the cursor
                replica.next_index = entry.seq + 1
                replica.applied_sig = entry.sig
                # Ack to the *current* leader: the one that shipped the entry
                # may have been deposed while the feeder was suspended.
                yield from self.cluster.rpc_send(
                    replica.node_id, self.leader_node_id, _ACK_SIZE, persistent=True
                )
                if replica.replica_id not in entry.acked_by:
                    entry.acked_by.append(replica.replica_id)
                self._resolve_quorum_waiters()
        except Interrupt:
            return

    def _apply_entry(self, replica, entry):
        """Generator: apply one group-log entry to ``replica``'s storage."""
        stash_key = (entry.origin, entry.xid)
        if entry.origin == replica.node_id:
            # The entry came out of this node's own WAL: the data is already
            # here via its local prepare/commit — bookkeeping only.
            replica.stash.pop(stash_key, None)
            return
        if entry.kind == "prepare":
            replica.stash[stash_key] = entry.records
            return
        if entry.kind == "abort":
            replica.stash.pop(stash_key, None)
            return
        records = replica.stash.pop(stash_key, None)
        if records is None:
            records = entry.records or []
        node = self.cluster.nodes[replica.node_id]
        yield node.cpu.use(self.costs.cpu_apply * max(1, len(records)))
        local_xid = node.manager.allocate_local_xid()
        node.clog.begin(local_xid)
        heap = node.heap_for(self.shard_id)
        for record in records:
            if record.kind is WalRecordKind.DELETE:
                version = heap.latest_committed_or_locked(record.key)
                if version is not None and version.xmax is None:
                    heap.mark_deleted(version, local_xid)
            elif record.kind is not WalRecordKind.LOCK:
                heap.put_version(record.key, record.value, local_xid)
        node.clog.set_committed(local_xid, entry.commit_ts)

    # ------------------------------------------------------------------
    # Quorum acknowledgement
    # ------------------------------------------------------------------
    def _entry_quorum_met(self, entry):
        return len(entry.acked_by) >= self.quorum

    def wait_quorum(self, kind, origin, xid):
        """Generator: wait until the (kind, origin, xid) entry exists and a
        quorum of replicas acked it. Raises StaleEpoch if an election fails
        the wait first."""
        while True:
            entry = self._entry_index.get((kind, origin, xid))
            if entry is not None and self._entry_quorum_met(entry):
                return
            event = self.sim.event(name="repl-quorum:{}".format(self.shard_id))
            self._quorum_waiters.append((kind, origin, xid, event))
            yield event

    def _resolve_quorum_waiters(self):
        if not self._quorum_waiters:
            return
        ready = []
        for waiter in self._quorum_waiters:
            entry = self._entry_index.get(waiter[:3])
            if entry is not None and self._entry_quorum_met(entry):
                ready.append(waiter)
        for waiter in ready:
            self._quorum_waiters.remove(waiter)
            waiter[3].succeed(None)

    def _fail_quorum_waiters(self, message):
        waiters, self._quorum_waiters = self._quorum_waiters, []
        for waiter in waiters:
            waiter[3].fail(StaleEpoch(message))

    # ------------------------------------------------------------------
    # Lease monitor and election
    # ------------------------------------------------------------------
    def _monitor(self):
        try:
            interval = self.config.repl_lease_interval
            silent = 0.0
            while True:
                yield interval
                self._kick()  # let feeders re-check downs/heals each tick
                leader = self._by_id(self.leader_id)
                if not self.replica_down(leader):
                    silent = 0.0
                    continue
                probes = self.live_followers()
                if not probes:
                    continue  # nobody left to elect
                try:
                    yield from self.cluster.rpc_send(
                        probes[0].node_id, leader.node_id, _PROBE_SIZE
                    )
                except RpcAbort:
                    pass  # a partitioned leader is a silent leader
                silent += interval
                if silent >= self.config.repl_lease_timeout:
                    silent = 0.0
                    # Re-validate after the probe yield: the leader may have
                    # healed (or an election already replaced it) while the
                    # probe RPC was in flight — electing on the stale
                    # pre-probe liveness check would depose a healthy leader
                    # and burn an epoch for nothing.
                    leader = self._by_id(self.leader_id)
                    if self.replica_down(leader):
                        yield from self._elect()
        except Interrupt:
            return

    def _elect(self):
        """Generator: deterministic failover — lowest live replica id wins."""
        live = self.live_replicas()
        old_leader = self._by_id(self.leader_id)
        if not live or self._electing:
            return
        self._electing = True
        try:
            new_leader = live[0]  # replicas are ordered by replica id
            self.epoch += 1
            COUNTERS.failover_elections += 1
            self._stop_pump()
            self._abort_writers_on(old_leader.node_id)
            # In-flight quorum waits straddle the reconfiguration: fail them
            # so the coordinator aborts (prepare) or re-routes the decision
            # to the new leader (commit) instead of wedging.
            self._fail_quorum_waiters(
                "shard {} epoch {} superseded".format(self.shard_id, self.epoch - 1)
            )
            yield from self._catch_up(new_leader)
            self.leader_id = new_leader.replica_id
            cluster = self.cluster
            oracle = cluster.oracle
            cts = yield from oracle.commit_timestamp(
                new_leader.node_id, oracle.local_now(new_leader.node_id)
            )
            for node_id in cluster.node_ids():
                node = cluster.nodes[node_id]
                local_xid = node.manager.allocate_local_xid()
                node.clog.begin(local_xid)
                node.shardmap_heap.put_version(self.shard_id, new_leader.node_id, local_xid)
                node.clog.set_committed(local_xid, cts)
            cluster.record_ownership(self.shard_id, new_leader.node_id)
            cluster.refresh_caches(self.shard_id, new_leader.node_id, cts)
            cluster.metrics.mark(
                "failover_election:{}:{}".format(self.shard_id, self.epoch)
            )
            from_lsn = cluster.nodes[new_leader.node_id].wal.tail_lsn
            self._start_pump(from_lsn)
            self._kick()
        finally:
            self._electing = False

    def _abort_writers_on(self, node_id):
        """Doom in-flight transactions that wrote this shard on the crashed
        leader — their execution state died with the leader process."""
        from repro.txn.transaction import TxnState

        for txn in self.cluster.snapshot_active_txns():
            participant = txn.participant(node_id)
            if participant is None or txn.is_shadow:
                continue
            if self.shard_id not in participant.wrote_shards:
                continue
            if txn.state is TxnState.ACTIVE:
                exc = ReplicaFailover(
                    "leader of {} failed over".format(self.shard_id), txn_id=txn.tid
                )
                txn.doom(exc)
                if txn.process is not None:
                    txn.process.interrupt(exc)

    def _catch_up(self, replica):
        """Generator: locally apply every group-log entry the replica has
        not seen (log reconciliation at election / rehome)."""
        while replica.next_index < len(self.log):
            entry = self.log[replica.next_index]
            yield from self._apply_entry(replica, entry)
            # The replica's feeder may have applied this entry concurrently
            # while the apply above was paying its CPU charge: skip instead
            # of rolling the cursor back over the feeder's progress.
            if replica.next_index > entry.seq:
                continue
            replica.next_index = entry.seq + 1
            replica.applied_sig = entry.sig
            if replica.replica_id not in entry.acked_by:
                entry.acked_by.append(replica.replica_id)
        self._resolve_quorum_waiters()

    # ------------------------------------------------------------------
    # Reconfiguration-aware 2PC hooks (called by the Session)
    # ------------------------------------------------------------------
    def check_access(self, owner):
        """Reject routing to a dead leader before an election republishes
        the map — the client retries once failover completes."""
        replica = self.replica_on(owner)
        if replica is not None and self.replica_down(replica):
            raise ReplicaFailover(
                "leader {} of {} is down".format(owner, self.shard_id)
            )

    def validate_prepare(self, txn, participant):
        """Reject a prepare routed under a superseded epoch, or landing on a
        node that is neither the group leader nor the shard-map owner (the
        owner may legitimately differ during a migration's dual execution,
        when post-T_m transactions commit on the destination)."""
        node = participant.node_id
        if txn.shard_epochs.get(self.shard_id, self.epoch) != self.epoch or (
            node != self.leader_node_id
            and node != self.cluster.shard_owner(self.shard_id)
        ):
            COUNTERS.stale_epoch_rejects += 1
            raise StaleEpoch(
                "prepare for {} routed under a stale epoch".format(self.shard_id),
                txn_id=txn.tid,
            )

    def commit_on_new_leader(self, origin, xid, commit_ts):
        """Generator: deliver a commit decision whose origin leader was
        deposed between prepare and commit. Exactly-once: if the commit
        entry is already in the group log, only the quorum wait remains."""
        entry = self._entry_index.get(("commit", origin, xid))
        if entry is None:
            # Re-resolved through the shard map: relay the decision to the
            # current leader, which applies the prepared changes and logs
            # the commit for the rest of the group.
            yield from self.cluster.rpc_send(
                origin, self.leader_node_id, _ACK_SIZE, persistent=True
            )
            entry = self._entry_index.get(("commit", origin, xid))
            if entry is None:
                prepared = self._entry_index.get(("prepare", origin, xid))
                records = prepared.records if prepared is not None else []
                leader = self._by_id(self.leader_id)
                entry = self._append_entry("commit", origin, xid, records, commit_ts)
                yield from self._apply_entry(leader, entry)
        while not self._entry_quorum_met(entry):
            yield from self.wait_quorum("commit", origin, xid)

    # ------------------------------------------------------------------
    # Migration handover (Remus / wait-and-remaster)
    # ------------------------------------------------------------------
    def in_sync_follower(self, node_id):
        """True if ``node_id`` hosts a live follower that has applied the
        whole group log (the near-free wait-and-remaster precondition)."""
        replica = self.replica_on(node_id)
        return (
            replica is not None
            and replica.replica_id != self.leader_id
            and not self.replica_down(replica)
            and replica.next_index >= len(self.log)
        )

    def drain(self):
        """Generator: wait until the pump has consumed the leader's WAL and
        every live follower has applied the full group log."""
        interval = self.config.repl_lease_interval
        while True:
            leader_wal = self.cluster.nodes[self.leader_node_id].wal
            reader = self._pump_reader
            if reader is not None and reader.next_lsn < leader_wal.tail_lsn:
                yield interval
                continue
            behind = [
                r for r in self.live_replicas() if r.next_index < len(self.log)
            ]
            if behind:
                yield interval
                continue
            return

    def rehome(self, dest, from_lsn=0):
        """Generator: epoch-bumped leadership handover to ``dest`` after a
        migration. The old leader stays in the group as a follower; if the
        destination was not a member it joins fully caught up (the data
        arrived through the migration copy)."""
        yield from self.drain()
        self._stop_pump()
        self.epoch += 1
        replica = self.replica_on(dest)
        if replica is None:
            replica = Replica(self.replicas[-1].replica_id + 1, dest)
            replica.next_index = len(self.log)
            replica.applied_sig = self.log[-1].sig if self.log else 0
            self.replicas.append(replica)
            self._start_feeder(replica)
        else:
            yield from self._catch_up(replica)
        self.leader_id = replica.replica_id
        self.cluster.metrics.mark(
            "rehome:{}:{}:{}".format(self.shard_id, dest, self.epoch)
        )
        # Resume from the destination's WAL position at migration start:
        # replayed shadow commits re-ship as convergent re-applies, and
        # dual-execution commits the old group never saw are picked up.
        self._start_pump(from_lsn)
        self._kick()

    # ------------------------------------------------------------------
    # Fault injection (replica-level crash/heal; the node stays up)
    # ------------------------------------------------------------------
    def crash_replica(self, node_id):
        replica = self.replica_on(node_id)
        if replica is None or replica.down:
            return False
        replica.down = True
        replica.down_since = self.sim.now
        self.cluster.metrics.mark(
            "replica_crash:{}:{}".format(self.shard_id, node_id)
        )
        return True

    def heal_replica(self, node_id):
        replica = self.replica_on(node_id)
        if replica is None or not replica.down:
            return False
        replica.down = False
        replica.down_since = None
        self.cluster.metrics.mark(
            "replica_heal:{}:{}".format(self.shard_id, node_id)
        )
        self._kick()
        return True


class ReplicationManager:
    """Cluster-level registry of shard replication groups.

    Every method is a cheap no-op while no group exists, so unreplicated
    clusters keep a bit-identical timeline.
    """

    def __init__(self, cluster):
        self.cluster = cluster
        self.groups = {}  # shard_id -> ShardReplicaGroup

    # -- queries -------------------------------------------------------
    def is_replicated(self, shard_id):
        return shard_id in self.groups

    def group_for(self, shard_id):
        return self.groups.get(shard_id)

    def epoch_of(self, shard_id):
        group = self.groups.get(shard_id)
        return group.epoch if group is not None else 0

    def leader_of(self, shard_id):
        group = self.groups.get(shard_id)
        return group.leader_node_id if group is not None else None

    def sorted_groups(self):
        return [self.groups[shard_id] for shard_id in sorted(self.groups)]

    # -- setup ---------------------------------------------------------
    def enable_replication(self, table, n_followers=2):
        """Wrap every shard of ``table`` in a replication group: the current
        owner leads; followers are chosen round-robin over the other nodes
        (deterministic in shard index)."""
        schema = self.cluster.tables[table]
        node_ids = self.cluster.node_ids()
        for shard_id in schema.shard_ids():
            if shard_id in self.groups:
                continue
            owner = self.cluster.shard_owner(shard_id)
            others = [n for n in node_ids if n != owner]
            members = [owner] + [
                others[(shard_id.index + i) % len(others)]
                for i in range(min(n_followers, len(others)))
            ]
            group = ShardReplicaGroup(self.cluster, shard_id, members)
            self.groups[shard_id] = group
            group.start()
        return [self.groups[s] for s in schema.shard_ids()]

    def stop(self):
        for group in self.sorted_groups():
            group.stop()

    # -- Session integration ------------------------------------------
    def on_route(self, txn, shard_id, owner):
        group = self.groups.get(shard_id)
        if group is None:
            return
        txn.shard_epochs[shard_id] = group.epoch
        group.check_access(owner)

    def after_local_prepare(self, txn, participant):
        """Generator: epoch-validate and quorum-replicate one participant's
        prepare for every replicated shard it wrote."""
        for shard_id in participant.wrote_shards:
            group = self.groups.get(shard_id)
            if group is None:
                continue
            group.validate_prepare(txn, participant)
            if group.leader_node_id == participant.node_id:
                yield from group.wait_quorum(
                    "prepare", participant.node_id, participant.xid
                )

    def after_local_commit(self, txn, participant, commit_ts):
        """Generator: quorum-replicate the commit; if the leader moved
        between prepare and commit, re-route the decision (exactly once)."""
        for shard_id in participant.wrote_shards:
            group = self.groups.get(shard_id)
            if group is None:
                continue
            prepared = group._entry_index.get(
                ("prepare", participant.node_id, participant.xid)
            )
            if prepared is None:
                # Never replicated at prepare time (e.g. a dual-execution
                # commit on the migration destination before it joins the
                # group): the rehome pump picks it up from the WAL later.
                continue
            while True:
                try:
                    if group.leader_node_id == participant.node_id:
                        yield from group.wait_quorum(
                            "commit", participant.node_id, participant.xid
                        )
                    else:
                        yield from group.commit_on_new_leader(
                            participant.node_id, participant.xid, commit_ts
                        )
                    break
                except StaleEpoch:
                    # Another election landed mid-wait: re-resolve the
                    # leader and re-deliver — the log-entry presence check
                    # keeps the commit exactly-once.
                    continue
