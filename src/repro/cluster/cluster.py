"""The cluster facade: the library's main entry point.

A :class:`Cluster` wires together the simulator, network, timestamp oracle,
elastic nodes, table catalog, shard map replicas, transaction registry and
metrics. Migration protocols (in :mod:`repro.migration`) operate on a cluster
through the same public surface that workloads use, plus a small set of
protocol hooks (access hooks, the routing gate, cache read-through control).
"""

from repro.cluster.coordinator import Session
from repro.cluster.node import Node
from repro.cluster.replication import ReplicationManager
from repro.cluster.shard import HashPartitioner, ShardId, TableSchema
from repro.cluster.shardmap import BOOTSTRAP_XID
from repro.config import ClusterConfig
from repro.metrics.collector import MetricsCollector
from repro.sim.events import AllOf
from repro.sim.kernel import Simulator
from repro.sim.network import MIGRATION_CLASS, Network
from repro.sim.rpc import RetryPolicy, RpcStats, RpcTimeout, reliable_send
from repro.sim.topology import LinkProfile, Topology
from repro.txn.errors import RpcAbort, TransactionError
from repro.txn.timestamps import DtsOracle, GtsOracle

CONTROL_PLANE = "control-plane"


class Cluster:
    """A shared-nothing distributed database over simulated elastic nodes."""

    def __init__(self, config=None, sim=None):
        self.config = config or ClusterConfig()
        self.sim = sim or Simulator(seed=self.config.seed)
        topology = self.config.topology
        if topology is None:
            # Degenerate one-rack topology from the flat network numbers:
            # the uncontended constant-delay model, byte-identical to the
            # pre-topology network.
            net = self.config.network
            topology = Topology.single(LinkProfile(net.base_latency, net.bandwidth))
        self.network = Network.from_topology(
            self.sim, topology, config=self.config.network
        )
        self.network.set_class_cap(MIGRATION_CLASS, self.config.pump_share)
        if self.config.timestamp_scheme == "gts":
            self.oracle = GtsOracle(self.sim, self.network, CONTROL_PLANE)
        elif self.config.timestamp_scheme == "dts":
            skews = self._node_skews()
            self.oracle = DtsOracle(self.sim, skew_by_node=skews)
        else:
            raise ValueError(
                "unknown timestamp scheme {!r}".format(self.config.timestamp_scheme)
            )
        self.nodes = {}
        for i in range(self.config.num_nodes):
            self.add_node("node-{}".format(i + 1))
        self.tables = {}
        self.shard_owners = {}  # authoritative owner map (mirrors shard map)
        self.metrics = MetricsCollector(self.sim)
        self.active_txns = {}
        self.routing_gate = None  # Event while wait-and-remaster blocks BEGINs
        self.cc_mode = "mvcc"  # or "shard_lock" (the Squall port, §4.2)
        self._access_hooks = {}  # shard_id -> [hook]
        self._quiesce_waiters = []
        self._vacuum_holds = []
        self.replication = ReplicationManager(self)
        self.rpc_stats = RpcStats()
        self.rpc_policy = RetryPolicy(
            timeout=self.config.rpc_timeout,
            max_attempts=self.config.rpc_max_attempts,
            backoff_base=self.config.rpc_backoff_base,
            backoff_cap=self.config.rpc_backoff_cap,
        )
        self.rpc_commit_policy = RetryPolicy(
            timeout=self.config.rpc_timeout,
            max_attempts=0,
            backoff_base=self.config.rpc_backoff_base,
            backoff_cap=self.config.rpc_backoff_cap,
            persistent=True,
        )

    def rpc_send(self, src, dst, size=0, persistent=False, traffic_class=None):
        """Generator: one cross-node protocol hop with timeout + retry.

        Bounded hops raise :class:`~repro.txn.errors.RpcAbort` (a
        ``TransactionError``, so ordinary abort/retry handling applies) once
        the retry budget is exhausted; ``persistent`` hops — 2PC decision
        delivery — retransmit with capped backoff until the link heals.
        ``traffic_class`` tags the send for contended-link fair-share
        accounting (migration bulk traffic passes
        :data:`~repro.sim.network.MIGRATION_CLASS` so ``pump_share`` caps
        it).
        """
        policy = self.rpc_commit_policy if persistent else self.rpc_policy
        try:
            yield from reliable_send(
                self.network, src, dst, size, policy=policy,
                stats=self.rpc_stats, traffic_class=traffic_class,
            )
        except RpcTimeout as exc:
            raise RpcAbort(str(exc)) from exc

    def rpc_broadcast(self, src, size=0, persistent=False):
        """Generator: reliably deliver a message to every *other* node.

        A plain :meth:`Network.broadcast` is an ``AllOf`` over raw sends, so a
        single partitioned link wedges the waiter forever. This fans out one
        :meth:`rpc_send` per destination instead; a bounded broadcast raises
        :class:`~repro.txn.errors.RpcAbort` if any leg exhausts its budget.
        """

        def leg(dst):
            # Workers run detached: hold a failure as a value so it surfaces
            # through the parent instead of sim.failed_processes.
            try:
                yield from self.rpc_send(src, dst, size, persistent=persistent)
            except RpcAbort as exc:
                return exc
            return None

        procs = [
            self.sim.spawn(leg(dst), name="bcast:{}->{}".format(src, dst))
            for dst in self.node_ids()
            if dst != src
        ]
        if not procs:
            return
        results = yield AllOf(procs)
        for result in results:
            if isinstance(result, RpcAbort):
                raise result

    def _node_skews(self):
        rng = self.sim.rng("clock-skew")
        skews = {}
        for i in range(self.config.num_nodes):
            bound = self.config.clock_skew
            skews["node-{}".format(i + 1)] = rng.uniform(-bound, bound) if bound else 0.0
        return skews

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, node_id):
        """Add an elastic node (used by scale-out before migrating to it).

        The new node receives a full replica of the shard map table so it
        can route queries and participate in T_m transactions immediately.
        """
        if node_id in self.nodes:
            raise ValueError("duplicate node {!r}".format(node_id))
        node = Node(self.sim, node_id, self.config, cluster=self)
        self.nodes[node_id] = node
        if hasattr(self, "shard_owners"):
            for shard_id, owner in self.shard_owners.items():
                node.shardmap_heap.put_version(shard_id, owner, BOOTSTRAP_XID)
                node.shardmap_cache.install(shard_id, owner)
        return node

    def node_ids(self):
        return list(self.nodes.keys())

    def session(self, node_id):
        """Open a client session coordinated by ``node_id``."""
        return Session(self, node_id)

    def start_vacuum_daemons(self):
        sim = self.sim
        for node_id, node in self.nodes.items():
            if sim.partitioned:
                # Home each vacuum daemon on its node's partition so its
                # heap scans stay inside that partition's event window.
                with sim.partition_scope(sim.node_partition(node_id)):
                    node.start_vacuum()
            else:
                node.start_vacuum()

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def create_table(
        self,
        name,
        num_shards=None,
        partitioner=None,
        tuple_size=1024,
        collocation_group=None,
        placement=None,
    ):
        """Create a sharded table and install its shard map rows everywhere.

        ``placement`` maps shard index -> node id; the default spreads shards
        round-robin across nodes (collocated tables reuse their group's
        placement so that shard i of each table lands on the same node).
        """
        if name in self.tables:
            raise ValueError("table {!r} exists".format(name))
        if partitioner is None:
            if num_shards is None:
                raise ValueError("need num_shards or partitioner")
            partitioner = HashPartitioner(num_shards)
        schema = TableSchema(
            name,
            partitioner,
            tuple_size=tuple_size,
            collocation_group=collocation_group,
        )
        self.tables[name] = schema
        node_ids = self.node_ids()
        if placement is None:
            placement = {
                i: node_ids[i % len(node_ids)] for i in range(schema.num_shards)
            }
        for index in range(schema.num_shards):
            shard_id = ShardId(name, index)
            owner = placement[index]
            self.shard_owners[shard_id] = owner
            self.nodes[owner].heap_for(shard_id)
            self._install_shardmap_row(shard_id, owner)
        return schema

    def _install_shardmap_row(self, shard_id, owner):
        for node in self.nodes.values():
            node.shardmap_heap.put_version(shard_id, owner, BOOTSTRAP_XID)
            node.shardmap_cache.install(shard_id, owner)

    def bulk_load(self, table, items):
        """Load committed rows without consuming virtual time."""
        schema = self.tables[table]
        by_shard = {}
        for key, value in items:
            by_shard.setdefault(schema.shard_for_key(key), []).append((key, value))
        for shard_id, rows in by_shard.items():
            owner = self.shard_owners[shard_id]
            self.nodes[owner].bulk_install(shard_id, rows)

    def enable_replication(self, table, n_followers=2):
        """Wrap every shard of ``table`` in a leader+followers replication
        group (call after :meth:`bulk_load`; the followers are seeded from
        the leader's committed state)."""
        return self.replication.enable_replication(table, n_followers)

    def shard_owner(self, shard_id):
        return self.shard_owners[shard_id]

    def shards_on_node(self, node_id, table=None):
        return [
            shard_id
            for shard_id, owner in sorted(self.shard_owners.items())
            if owner == node_id and (table is None or shard_id.table == table)
        ]

    def collocated_shards(self, shard_id):
        """Shards of other tables in the same collocation group and index."""
        group = self.tables[shard_id.table].collocation_group
        result = []
        for schema in self.tables.values():
            if schema.collocation_group == group and shard_id.index < schema.num_shards:
                result.append(ShardId(schema.name, shard_id.index))
        return result

    # ------------------------------------------------------------------
    # Transaction registry
    # ------------------------------------------------------------------
    def register_txn(self, txn):
        self.active_txns[txn.tid] = txn

    def finish_txn(self, txn, committed, reason=None):
        self.active_txns.pop(txn.tid, None)
        latency = (
            self.sim.now - txn.begin_time if txn.begin_time is not None else 0.0
        )
        if not txn.is_shadow:
            if committed:
                self.metrics.record_commit(txn.label, latency, weight=max(1, txn.op_count))
            else:
                kind = reason.kind if isinstance(reason, TransactionError) else "error"
                self.metrics.record_abort(txn.label, kind)
        self._check_quiesce()

    def snapshot_active_txns(self):
        return list(self.active_txns.values())

    def wait_for_txns(self, tids):
        """Event that fires once every transaction in ``tids`` has finished."""
        event = self.sim.event(name="wait-txns")
        pending = {tid for tid in tids if tid in self.active_txns}
        if not pending:
            event.succeed(None)
            return event
        self._quiesce_waiters.append((pending, event))
        return event

    def _check_quiesce(self):
        done = []
        for pending, event in self._quiesce_waiters:
            pending.intersection_update(self.active_txns.keys())
            if not pending:
                done.append((pending, event))
        for entry in done:
            self._quiesce_waiters.remove(entry)
            entry[1].succeed(None)

    # ------------------------------------------------------------------
    # Routing gate (wait-and-remaster)
    # ------------------------------------------------------------------
    def close_routing_gate(self):
        if self.routing_gate is None:
            self.routing_gate = self.sim.event(name="routing-gate")

    def open_routing_gate(self):
        if self.routing_gate is not None:
            gate, self.routing_gate = self.routing_gate, None
            gate.succeed(None)

    # ------------------------------------------------------------------
    # Access hooks (migration protocols intercept shard access)
    # ------------------------------------------------------------------
    def add_access_hook(self, shard_id, hook):
        self._access_hooks.setdefault(shard_id, []).append(hook)

    def remove_access_hook(self, shard_id, hook):
        hooks = self._access_hooks.get(shard_id)
        if hooks and hook in hooks:
            hooks.remove(hook)
            if not hooks:
                del self._access_hooks[shard_id]

    def run_access_hooks(self, txn, shard_id, owner, key, is_write):
        hooks = self._access_hooks.get(shard_id)
        if not hooks:
            return
        for hook in list(hooks):
            yield from hook.before_access(txn, shard_id, owner, key, is_write)

    # ------------------------------------------------------------------
    # Shard map maintenance (used by migrations)
    # ------------------------------------------------------------------
    def set_cache_read_through(self, shard_ids):
        for node in self.nodes.values():
            node.shardmap_cache.set_read_through(shard_ids)

    def clear_cache_read_through(self, shard_ids):
        for node in self.nodes.values():
            node.shardmap_cache.clear_read_through(shard_ids)

    def refresh_caches(self, shard_id, owner, cts):
        for node in self.nodes.values():
            node.shardmap_cache.maybe_update(shard_id, owner, cts)

    def record_ownership(self, shard_id, owner):
        self.shard_owners[shard_id] = owner

    # ------------------------------------------------------------------
    # Fault injection / failover (§3.7)
    # ------------------------------------------------------------------
    def fail_node(self, node_id, failover_time=0.5):
        """Crash ``node_id``'s primary and promote a replica after
        ``failover_time``.

        With synchronous replication the committed state survives on the
        replica; transactions that were *executing* on the failed primary
        lose their in-memory state and are aborted. Prepared 2PC
        participants survive in the replicated WAL, so distributed
        transactions already past their prepare complete normally once the
        new primary is up (standard 2PC recovery).
        """
        node = self.nodes[node_id]
        node.fail()
        self.metrics.mark("node_failed:{}".format(node_id))
        from repro.txn.errors import MigrationAbort
        from repro.txn.transaction import TxnState

        for txn in self.snapshot_active_txns():
            participant = txn.participant(node_id)
            involved = participant is not None or txn.coordinator_node == node_id
            if not involved or txn.is_shadow:
                continue
            if txn.state is TxnState.ACTIVE:
                exc = MigrationAbort(
                    "node {} failed during execution".format(node_id), txn_id=txn.tid
                )
                txn.doom(exc)
                if txn.process is not None:
                    txn.process.interrupt(exc)

        def promote():
            yield failover_time
            node.recover()
            self.metrics.mark("node_recovered:{}".format(node_id))

        return self.spawn(promote(), name="failover:{}".format(node_id))

    # ------------------------------------------------------------------
    # Vacuum horizon
    # ------------------------------------------------------------------
    def add_vacuum_hold(self, ts):
        """Pin the vacuum horizon at ``ts`` (long snapshots, migrations)."""
        self._vacuum_holds.append(ts)

    def remove_vacuum_hold(self, ts):
        """Release a vacuum hold. Idempotent: crash/recovery paths may race
        a migration's own cleanup and release the same hold twice."""
        try:
            self._vacuum_holds.remove(ts)
        except ValueError:
            pass

    def vacuum_horizon(self):
        candidates = [t.start_ts for t in self.active_txns.values()]
        candidates.extend(self._vacuum_holds)
        if candidates:
            return min(candidates)
        return self.oracle.safe_horizon()

    # ------------------------------------------------------------------
    # Verification helpers (tests / consistency checking)
    # ------------------------------------------------------------------
    def dump_table(self, table, shards=None):
        """Latest-committed view of a table as {key: value} (test helper).

        ``shards`` restricts the dump to those shard ids — a parallel-drain
        worker dumps only the shards whose owner it simulated, so the union
        across workers reassembles the full table exactly once.
        """
        schema = self.tables[table]
        result = {}
        wanted = None if shards is None else set(shards)
        for shard_id in schema.shard_ids():
            if wanted is not None and shard_id not in wanted:
                continue
            owner = self.shard_owners[shard_id]
            node = self.nodes[owner]
            heap = node.heap_for(shard_id)
            for key in list(heap.keys()):
                version = heap.latest_committed_or_locked(key)
                if version is None:
                    continue
                if node.clog.status(version.xmin).value != "committed":
                    continue
                if version.xmax is not None and node.clog.status(version.xmax).value == "committed":
                    continue
                result[key] = version.value
        return result

    def run(self, until=None):
        return self.sim.run(until=until)

    def spawn(self, generator, name=""):
        return self.sim.spawn(generator, name=name)
