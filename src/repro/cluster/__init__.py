"""The shared-nothing distributed database (simulated PolarDB-PG).

- :mod:`repro.cluster.hashing` — consistent hashing of keys to shards and
  chunk subdivision (used by the Squall port's 8 MB pulls);
- :mod:`repro.cluster.shard` — shard ids, table schemas, partitioners
  (hash-based for YCSB, value-based for TPC-C's warehouse collocation);
- :mod:`repro.cluster.shardmap` — the multi-versioned shard map table and the
  per-coordinator ordered private cache with the cache-read-through state
  that ordered diversion relies on (§3.5.1);
- :mod:`repro.cluster.node` — an elastic node: CPU, CLOG, WAL, heaps, lock
  tables, transaction manager, shard map replica, vacuum;
- :mod:`repro.cluster.coordinator` — client sessions: routing, distributed
  execution, 2PC commit;
- :mod:`repro.cluster.cluster` — the public facade tying it all together.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.control_plane import MigrationController
from repro.cluster.coordinator import Session
from repro.cluster.hashing import HashRange, consistent_hash, split_hash_space
from repro.cluster.node import Node
from repro.cluster.shard import HashPartitioner, ShardId, TableSchema, ValuePartitioner

__all__ = [
    "Cluster",
    "HashPartitioner",
    "HashRange",
    "MigrationController",
    "Node",
    "Session",
    "ShardId",
    "TableSchema",
    "ValuePartitioner",
    "consistent_hash",
    "split_hash_space",
]
