"""An elastic node: storage, transaction manager, shard map replica, vacuum."""

from repro.cluster.shardmap import (
    BOOTSTRAP_XID,
    RESERVED_MIN_TS,
    SHARDMAP_SHARD,
    ShardMapCache,
)
from repro.sim.resources import CpuResource
from repro.storage.clog import Clog
from repro.storage.heap import HeapTable
from repro.storage.wal import Wal
from repro.txn.manager import NodeTxnManager


class Node:
    """One PostgreSQL-based elastic node of the simulated cluster (§2.1)."""

    def __init__(self, sim, node_id, config, cluster=None):
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.cluster = cluster
        self.cpu = CpuResource(
            sim, config.cpu_per_node, name=node_id, bin_width=config.cpu_bin_width
        )
        self.clog = Clog(sim, node_id=node_id)
        self.wal = Wal(sim, node_id=node_id)
        self._heaps = {}
        self.manager = NodeTxnManager(
            sim,
            node_id,
            self.clog,
            self.wal,
            self.cpu,
            config.costs,
            heap_for=self.heap_for,
        )
        self.shardmap_cache = ShardMapCache(node_id)
        # Bootstrap transaction: owns rows installed at table creation / bulk
        # load, committed at the reserved minimal timestamp.
        self.clog.begin(BOOTSTRAP_XID)
        self.clog.set_committed(BOOTSTRAP_XID, RESERVED_MIN_TS)
        # The shard map replica is a regular MVCC table on this node.
        self.heap_for(SHARDMAP_SHARD)
        self._vacuum_running = False
        # Fault tolerance: while failed, requests queue until a synchronized
        # replica takes over as the new primary (§3.7).
        self.failed = False
        self._recovered = None
        if config.replication_factor > 0:
            self.manager.extra_flush_latency = config.replica_sync_latency

    # ------------------------------------------------------------------
    # Failure / failover
    # ------------------------------------------------------------------
    def fail(self):
        """Mark the primary as failed; requests block until failover."""
        if self.failed:
            return
        self.failed = True
        self._recovered = self.sim.event(name="failover:{}".format(self.node_id))

    def recover(self):
        """A replica has taken over: resume processing.

        With synchronous replication the committed state (heap + CLOG + WAL)
        survives intact; transactions that were in flight on the old primary
        were aborted by the cluster's failure handler.
        """
        if not self.failed:
            return
        self.failed = False
        recovered, self._recovered = self._recovered, None
        recovered.succeed(None)

    def wait_available(self):
        """Generator: block while the node is failed over."""
        while self.failed:
            yield self._recovered

    # ------------------------------------------------------------------
    # Heaps
    # ------------------------------------------------------------------
    def heap_for(self, shard_id):
        """The heap table backing ``shard_id`` on this node (created lazily —
        migration destinations start with an empty heap)."""
        if shard_id not in self._heaps:
            self._heaps[shard_id] = HeapTable(self.sim, self.clog, shard_id=shard_id)
        return self._heaps[shard_id]

    def has_shard_data(self, shard_id):
        return shard_id in self._heaps and self._heaps[shard_id].key_count > 0

    def drop_shard(self, shard_id):
        """Remove a shard's local data (cleanup after migrating away)."""
        if shard_id in self._heaps:
            self._heaps[shard_id].clear()
            del self._heaps[shard_id]

    @property
    def shardmap_heap(self):
        return self._heaps[SHARDMAP_SHARD]

    @property
    def heaps(self):
        return dict(self._heaps)

    # ------------------------------------------------------------------
    # Bulk load fast path (no virtual time)
    # ------------------------------------------------------------------
    def bulk_install(self, shard_id, items):
        """Install committed rows at the reserved minimal timestamp.

        Used for initial data loading and for the streaming snapshot install
        on a migration destination (§3.2), where the copied tuples must be
        visible to any destination transaction starting after the snapshot.
        """
        heap = self.heap_for(shard_id)
        for key, value in items:
            heap.put_version(key, value, BOOTSTRAP_XID)

    # ------------------------------------------------------------------
    # Vacuum
    # ------------------------------------------------------------------
    def start_vacuum(self):
        """Begin the periodic vacuum daemon for this node."""
        if self._vacuum_running:
            return
        self._vacuum_running = True
        self.sim.spawn(self._vacuum_loop(), name="vacuum:{}".format(self.node_id))

    def stop_vacuum(self):
        self._vacuum_running = False

    def _vacuum_loop(self):
        while self._vacuum_running:
            yield self.config.vacuum_interval
            if self.cluster is None:
                continue
            horizon = self.cluster.vacuum_horizon()
            for heap in list(self._heaps.values()):
                heap.vacuum(horizon)

    def __repr__(self):
        return "Node({!r})".format(self.node_id)
