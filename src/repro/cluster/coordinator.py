"""Client sessions: query routing, distributed execution, 2PC commit.

A :class:`Session` plays the role of a PolarDB-PG coordinator process (§2.1):
it is bound to one elastic node, accepts a client's statements, routes each to
the owning node through the shard map (private cache, or an MVCC shard-map
read while a migration has the shard in cache-read-through state), executes
remotely with network hops, and commits with two-phase commit across all
writing participants.

DTS causality is maintained here: every cross-node hop piggybacks the
sender's HLC onto the message, advancing the receiver (``oracle.observe``),
so dependent transactions order correctly even under clock skew.
"""

from repro.sim.events import AllOf
from repro.txn.errors import TransactionError
from repro.txn.locks import SharedExclusiveLockTable
from repro.txn.transaction import Transaction, TxnState
from repro.cluster.shardmap import read_shard_owner

_RPC_SIZE = 256  # bytes for a statement/ack message


class Session:
    """One client connection, coordinated by a fixed elastic node."""

    def __init__(self, cluster, node_id):
        self.cluster = cluster
        self.node = cluster.nodes[node_id]
        self.sim = cluster.sim
        self.network = cluster.network
        self.oracle = cluster.oracle
        self.costs = cluster.config.costs

    @property
    def node_id(self):
        return self.node.node_id

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self, label="", internal=False):
        """Generator: start a transaction (BEGIN).

        Blocks while the cluster routing gate is closed (wait-and-remaster
        suspends routing of newly arrived transactions during ownership
        transfer, §2.3.3). ``internal`` transactions — the migration's own
        T_m — bypass the gate.
        """
        while not internal and self.cluster.routing_gate is not None:
            yield self.cluster.routing_gate
        if self.node.failed:
            yield from self.node.wait_available()
        start_ts = yield from self.oracle.start_timestamp(self.node_id)
        txn = Transaction(Transaction.allocate_tid(), self.node_id, start_ts, label=label)
        txn.begin_time = self.sim.now
        self.cluster.register_txn(txn)
        return txn

    def commit(self, txn):
        """Generator: COMMIT via 2PC across writing participants.

        Returns the commit timestamp. Raises (and aborts the transaction) on
        MOCC validation failure or any participant error.
        """
        txn.check_doomed()
        if txn.state is not TxnState.ACTIVE:
            raise TransactionError("commit in state {}".format(txn.state), txn_id=txn.tid)
        writers = [p for p in txn.participants.values() if p.writes]
        if not writers:
            self._finish_read_only(txn)
            return txn.start_ts

        txn.state = TxnState.PREPARING
        outcomes = yield AllOf(
            [
                self.sim.spawn(self._prepare_one(txn, p), name="prepare")
                for p in writers
            ]
        )
        failure = next((err for ok, err in outcomes if not ok), None)
        if failure is not None:
            yield from self.abort(txn, reason=failure)
            raise failure

        floor = max([txn.start_ts] + [ack for ok, ack in outcomes if ok])
        commit_ts = yield from self.oracle.commit_timestamp(self.node_id, floor)
        txn.commit_ts = commit_ts
        txn.state = TxnState.COMMITTING
        yield AllOf(
            [
                self.sim.spawn(self._commit_one(txn, p, commit_ts), name="commit")
                for p in writers
            ]
        )
        self._finish_read_only_participants(txn, commit_ts, exclude={p.node_id for p in writers})
        txn.state = TxnState.COMMITTED
        self.cluster.finish_txn(txn, committed=True)
        return commit_ts

    def abort(self, txn, reason=None):
        """Generator: ROLLBACK on every participant.

        Rollback delivery is a 2PC decision: it is retransmitted until it
        arrives (persistent policy), so a partitioned participant's locks are
        released as soon as the link heals instead of leaking forever.
        """
        if txn.finished:
            return
        for participant in list(txn.participants.values()):
            node = self.cluster.nodes[participant.node_id]
            if participant.node_id != self.node_id:
                yield from self.cluster.rpc_send(
                    self.node_id, participant.node_id, _RPC_SIZE, persistent=True
                )
            yield from node.manager.local_abort(txn)
        txn.state = TxnState.ABORTED
        self.cluster.finish_txn(txn, committed=False, reason=reason)

    def _finish_read_only(self, txn):
        for participant in txn.participants.values():
            node = self.cluster.nodes[participant.node_id]
            node.clog.set_committed(participant.xid, txn.start_ts)
            node.manager._release_locks(participant)
            node.manager.discard_active(participant.xid)
        txn.commit_ts = txn.start_ts
        txn.state = TxnState.COMMITTED
        self.cluster.finish_txn(txn, committed=True)

    def _finish_read_only_participants(self, txn, commit_ts, exclude):
        for participant in txn.participants.values():
            if participant.node_id in exclude:
                continue
            node = self.cluster.nodes[participant.node_id]
            node.clog.set_committed(participant.xid, commit_ts)
            node.manager._release_locks(participant)
            node.manager.discard_active(participant.xid)

    def _prepare_one(self, txn, participant):
        """Prepare one participant; returns (ok, ack_ts) / (False, error)."""
        node = self.cluster.nodes[participant.node_id]
        remote = participant.node_id != self.node_id
        try:
            if node.failed:
                yield from node.wait_available()
            if remote:
                self.oracle.observe(participant.node_id, self.oracle.peek(self.node_id))
                yield from self.cluster.rpc_send(
                    self.node_id, participant.node_id, _RPC_SIZE
                )
            yield from node.manager.local_prepare(txn)
            if self.cluster.replication.groups:
                # Reconfiguration-aware 2PC: reject stale-epoch prepares and
                # wait for the prepare to reach a quorum of the shard group.
                yield from self.cluster.replication.after_local_prepare(
                    txn, participant
                )
            ack_ts = self.oracle.local_now(participant.node_id)
            if remote:
                yield from self.cluster.rpc_send(
                    participant.node_id, self.node_id, _RPC_SIZE
                )
                self.oracle.observe(self.node_id, ack_ts)
            return (True, ack_ts)
        except TransactionError as exc:
            return (False, exc)

    def _commit_one(self, txn, participant, commit_ts):
        # The commit decision is retransmitted until delivered (persistent
        # policy): a transaction past its prepare phase cannot be aborted, so
        # the only option under a partition is to keep trying until it heals.
        node = self.cluster.nodes[participant.node_id]
        if node.failed:
            yield from node.wait_available()
        remote = participant.node_id != self.node_id
        if remote:
            self.oracle.observe(participant.node_id, self.oracle.peek(self.node_id))
            yield from self.cluster.rpc_send(
                self.node_id, participant.node_id, _RPC_SIZE, persistent=True
            )
        self.oracle.observe(participant.node_id, commit_ts)
        yield from node.manager.local_commit(txn, commit_ts)
        if self.cluster.replication.groups:
            # Quorum-replicate the decision; if the shard's leader moved
            # between prepare and commit, re-route it (exactly once).
            yield from self.cluster.replication.after_local_commit(
                txn, participant, commit_ts
            )

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def read(self, txn, table, key):
        value = yield from self._execute(txn, table, key, "read")
        return value

    def update(self, txn, table, key, value):
        result = yield from self._execute(txn, table, key, "update", value)
        return result

    def insert(self, txn, table, key, value):
        result = yield from self._execute(txn, table, key, "insert", value)
        return result

    def delete(self, txn, table, key):
        result = yield from self._execute(txn, table, key, "delete")
        return result

    def lock_row(self, txn, table, key):
        """SELECT ... FOR UPDATE."""
        result = yield from self._execute(txn, table, key, "lock")
        return result

    def scan_table(self, txn, table):
        """Full table scan (the hybrid-B analytical query, §4.3).

        Visits every shard under the transaction's snapshot and returns all
        visible keys. In shard-lock mode each shard is locked shared for the
        transaction's duration — the behaviour that makes the analytical
        query block YCSB writers and migration pulls on the Squall port.
        """
        txn.check_doomed()
        schema = self.cluster.tables[table]
        all_keys = []
        if self.cluster.cc_mode == "shard_lock":
            # H-store semantics: a multi-partition transaction takes all its
            # partition locks up front — which is why the hybrid-B analytical
            # query blocks every writer *and* every migration pull until it
            # completes (§4.4.2).
            for shard_id in schema.shard_ids():
                owner = yield from self._route(txn, shard_id)
                target = self.cluster.nodes[owner]
                yield from target.manager.acquire_shard_lock(
                    txn, shard_id, SharedExclusiveLockTable.SHARED
                )
        for shard_id in schema.shard_ids():
            yield self.node.cpu.use(self.costs.client_overhead)
            owner = yield from self._route(txn, shard_id)
            if self.cluster.replication.groups:
                self.cluster.replication.on_route(txn, shard_id, owner)
            yield from self.cluster.run_access_hooks(txn, shard_id, owner, None, False)
            target = self.cluster.nodes[owner]
            if target.failed:
                yield from target.wait_available()
            remote = owner != self.node_id
            if remote:
                self.oracle.observe(owner, self.oracle.peek(self.node_id))
                yield from self.cluster.rpc_send(self.node_id, owner, _RPC_SIZE)
            if self.cluster.cc_mode == "shard_lock":
                yield from target.manager.acquire_shard_lock(
                    txn, shard_id, SharedExclusiveLockTable.SHARED
                )
            keys = yield from target.manager.scan(txn, shard_id)
            if remote:
                yield from self.cluster.rpc_send(
                    owner, self.node_id, _RPC_SIZE + 8 * len(keys)
                )
                self.oracle.observe(self.node_id, self.oracle.peek(owner))
            all_keys.extend(keys)
        return all_keys

    def _execute(self, txn, table, key, op, value=None):
        txn.check_doomed()
        schema = self.cluster.tables[table]
        shard_id = schema.shard_for_key(key)
        yield self.node.cpu.use(self.costs.client_overhead)
        owner = yield from self._route(txn, shard_id)
        if self.cluster.replication.groups:
            self.cluster.replication.on_route(txn, shard_id, owner)
        is_write = op != "read"
        target = self.cluster.nodes[owner]
        if target.failed:
            yield from target.wait_available()
        remote = owner != self.node_id
        if remote:
            self.oracle.observe(owner, self.oracle.peek(self.node_id))
            yield from self.cluster.rpc_send(self.node_id, owner, _RPC_SIZE)
        if self.cluster.cc_mode == "shard_lock":
            mode = (
                SharedExclusiveLockTable.EXCLUSIVE
                if is_write
                else SharedExclusiveLockTable.SHARED
            )
            yield from target.manager.acquire_shard_lock(txn, shard_id, mode)
        # Access hooks run under the shard lock (when one exists): a Squall
        # chunk cannot move between the hook's tracker check and the
        # statement touching the row.
        yield from self.cluster.run_access_hooks(txn, shard_id, owner, key, is_write)
        size = schema.tuple_size
        if op == "read":
            result = yield from target.manager.read(txn, shard_id, key)
        elif op == "update":
            result = yield from target.manager.update(txn, shard_id, key, value, size=size)
        elif op == "insert":
            result = yield from target.manager.insert(txn, shard_id, key, value, size=size)
        elif op == "delete":
            result = yield from target.manager.delete(txn, shard_id, key, size=size)
        elif op == "lock":
            result = yield from target.manager.lock_row(txn, shard_id, key, size=size)
        else:
            raise ValueError("unknown op {!r}".format(op))
        if remote:
            yield from self.cluster.rpc_send(owner, self.node_id, _RPC_SIZE)
            self.oracle.observe(self.node_id, self.oracle.peek(owner))
        return result

    def _route(self, txn, shard_id):
        """Generator: resolve the owning node for ``shard_id`` (§3.5.1).

        Fast path: the private cache. Slow path (an MVCC read of the shard
        map table under the transaction's snapshot, inheriting prepare-wait
        on an in-flight T_m) when either (a) the shard is in
        cache-read-through state — the window around T_m's execution — or
        (b) the cached entry is *newer* than this transaction's snapshot,
        i.e. the shard moved after the transaction started and it must keep
        seeing the pre-migration owner.
        """
        cache = self.node.shardmap_cache
        yield self.node.cpu.use(self.costs.cpu_route)
        if cache.is_read_through(shard_id):
            cache.read_through_lookups += 1
            yield self.node.cpu.use(self.costs.cpu_shardmap_read)
            owner, cts = yield from read_shard_owner(
                self.node.shardmap_heap,
                self.node.clog,
                shard_id,
                txn.plain_snapshot(),
            )
            cache.maybe_update(shard_id, owner, cts)
            return owner
        owner, cached_cts = cache.entry(shard_id)
        if cached_cts > txn.start_ts:
            yield self.node.cpu.use(self.costs.cpu_shardmap_read)
            owner, _cts = yield from read_shard_owner(
                self.node.shardmap_heap,
                self.node.clog,
                shard_id,
                txn.plain_snapshot(),
            )
        return owner
