"""Shard identities, table schemas and partitioners.

Each user table is sharded across nodes (§2.1): YCSB-style tables use
consistent hashing, while TPC-C tables partition by warehouse id so that all
of a warehouse's shards (one per table) collocate on the same node (§4.3).
The collocation group lets migrations move collocated shards together (§3.8).
"""

from repro.cluster.hashing import (
    consistent_hash,
    shard_index_for_hash,
    split_hash_space,
)


class ShardId(tuple):
    """Identity of one shard: ``(table_name, shard_index)``. Hash/sortable."""

    __slots__ = ()

    def __new__(cls, table, index):
        return tuple.__new__(cls, (table, index))

    @property
    def table(self):
        return self[0]

    @property
    def index(self):
        return self[1]

    def __repr__(self):
        return "ShardId({!r}, {})".format(self[0], self[1])


class HashPartitioner:
    """Consistent-hash partitioning: key -> shard index via ring ranges."""

    kind = "hash"

    def __init__(self, num_shards):
        self.num_shards = num_shards
        self.ranges = split_hash_space(num_shards)

    def shard_index(self, key):
        return shard_index_for_hash(consistent_hash(key), self.num_shards)

    def range_for(self, index):
        return self.ranges[index]


class ValuePartitioner:
    """Explicit partitioning by a function of the key (e.g. warehouse id)."""

    kind = "value"

    def __init__(self, num_shards, index_fn):
        self.num_shards = num_shards
        self._index_fn = index_fn

    def shard_index(self, key):
        index = self._index_fn(key)
        if not 0 <= index < self.num_shards:
            raise ValueError(
                "partitioner mapped {!r} to shard {} of {}".format(
                    key, index, self.num_shards
                )
            )
        return index

    def range_for(self, index):
        return None  # value-partitioned tables have no hash ranges


class TableSchema:
    """Metadata for one sharded user table."""

    def __init__(self, name, partitioner, tuple_size=1024, collocation_group=None):
        self.name = name
        self.partitioner = partitioner
        self.tuple_size = tuple_size
        # Tables in the same collocation group share a partitioner shape so
        # that shard i of every table lives on the same node.
        self.collocation_group = collocation_group or name

    @property
    def num_shards(self):
        return self.partitioner.num_shards

    def shard_for_key(self, key):
        return ShardId(self.name, self.partitioner.shard_index(key))

    def shard_ids(self):
        return [ShardId(self.name, i) for i in range(self.num_shards)]

    def __repr__(self):
        return "TableSchema({!r}, shards={})".format(self.name, self.num_shards)
