"""The control plane: migration controller and placement planning (§2.1).

PolarDB-PG's control-plane node hosts the GTS timestamp service (see
:class:`repro.txn.timestamps.GtsOracle`, wired by the cluster when the GTS
scheme is selected) and the *migration controller*. This module provides the
controller: it plans shard movements for the three operational scenarios the
paper evaluates — consolidation (drain a node), load balancing (spread a hot
node) and scale-out (populate a new node) — and drives the chosen approach's
protocol over the plan, collecting per-plan statistics.
"""

from repro.migration import APPROACHES, MigrationPlan, run_plan
from repro.migration.base import consolidation_batches


class MigrationController:
    """Plans and executes live migrations on a cluster."""

    def __init__(self, cluster, approach="remus", **migration_kwargs):
        if approach not in APPROACHES:
            raise ValueError(
                "unknown approach {!r}; pick one of {}".format(
                    approach, sorted(APPROACHES)
                )
            )
        self.cluster = cluster
        self.approach = approach
        self.approach_cls = APPROACHES[approach]
        self.migration_kwargs = migration_kwargs
        self.completed_plans = []

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan_consolidation(self, source, table=None, group_size=2):
        """Drain ``source``: move all its shards to the other nodes evenly."""
        batches = consolidation_batches(
            self.cluster, source, table=table, group_size=group_size
        )
        return MigrationPlan(self.approach_cls, batches, **self.migration_kwargs)

    def plan_balance(self, hot_node, shard_ids=None, fraction=0.8, group_size=4):
        """Spread ``fraction`` of the hot node's shards over the others."""
        if shard_ids is None:
            shard_ids = self.cluster.shards_on_node(hot_node)
        to_move = shard_ids[: int(len(shard_ids) * fraction)]
        targets = [n for n in self.cluster.node_ids() if n != hot_node]
        batches = []
        for i in range(0, len(to_move), group_size):
            group = to_move[i : i + group_size]
            dest = targets[(i // group_size) % len(targets)]
            batches.append((group, hot_node, dest))
        return MigrationPlan(self.approach_cls, batches, **self.migration_kwargs)

    def plan_scale_out(self, overloaded, new_node, groups, group_size=1):
        """Move collocation ``groups`` (lists of shard ids) to ``new_node``."""
        batches = []
        for i in range(0, len(groups), group_size):
            merged = [s for group in groups[i : i + group_size] for s in group]
            batches.append((merged, overloaded, new_node))
        return MigrationPlan(self.approach_cls, batches, **self.migration_kwargs)

    def busiest_node(self, window=1.0, table=None):
        """The node with the highest CPU utilisation over the last window —
        a simple hotspot detector for automated balancing."""
        now = self.cluster.sim.now
        usage = {
            node_id: node.cpu.usage_between(max(0.0, now - window), now)
            for node_id, node in self.cluster.nodes.items()
        }
        return max(usage, key=usage.get)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, plan):
        """Generator: run ``plan`` to completion; returns its stats."""
        stats = yield from run_plan(self.cluster, plan)
        self.completed_plans.append(plan)
        return stats

    def start(self, plan):
        """Spawn plan execution as a background process; returns the handle."""
        return self.cluster.spawn(self.execute(plan), name="migration-controller")
