"""Consistent hashing of primary keys to shards (§2.1).

Keys are hashed into a 32-bit ring with a deterministic FNV-1a hash (Python's
built-in ``hash`` is salted per process and would break reproducibility). The
ring is split into equal contiguous ranges, one per shard; shard ranges can be
further subdivided into chunks, which is how the Squall port tracks 8 MB pull
units.
"""

HASH_SPACE = 1 << 32

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def consistent_hash(key):
    """Deterministic 32-bit hash of any key (via its string form).

    FNV-1a alone leaves the upper bits poorly mixed for short inputs (all
    small integers would land in one ring range), so a Murmur3-style
    finalizer avalanches the 64-bit value before truncation.
    """
    data = str(key).encode("utf-8")
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    return value & 0xFFFFFFFF


class HashRange:
    """Half-open range [lo, hi) on the hash ring."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        if not 0 <= lo < hi <= HASH_SPACE:
            raise ValueError("invalid hash range [{}, {})".format(lo, hi))
        self.lo = lo
        self.hi = hi

    def __contains__(self, hash_value):
        return self.lo <= hash_value < self.hi

    def __eq__(self, other):
        return isinstance(other, HashRange) and (self.lo, self.hi) == (other.lo, other.hi)

    def __hash__(self):
        return hash((self.lo, self.hi))

    @property
    def width(self):
        return self.hi - self.lo

    def split(self, parts):
        """Subdivide into ``parts`` contiguous sub-ranges (chunking)."""
        if parts < 1:
            raise ValueError("parts must be >= 1")
        step = self.width // parts
        if step == 0:
            raise ValueError("range too narrow for {} parts".format(parts))
        ranges = []
        lo = self.lo
        for i in range(parts):
            hi = self.hi if i == parts - 1 else lo + step
            ranges.append(HashRange(lo, hi))
            lo = hi
        return ranges

    def __repr__(self):
        return "HashRange({:#x}, {:#x})".format(self.lo, self.hi)


def split_hash_space(num_shards):
    """Equal contiguous ranges covering the whole ring, one per shard."""
    return HashRange(0, HASH_SPACE).split(num_shards)


def shard_index_for_hash(hash_value, num_shards):
    """Index of the shard whose equal-split range contains ``hash_value``."""
    step = HASH_SPACE // num_shards
    index = hash_value // step
    return min(index, num_shards - 1)
