"""The shard map table and its per-coordinator private cache (§3.5.1).

Every node keeps a full replica of the *shard map table* — a regular
multi-versioned table mapping each shard to its owning node. The ownership
handover transaction T_m updates this table on every node through normal MVCC
writes committed with 2PC, so a transaction's snapshot decides which side of
the migration it sees: start_ts >= T_m.commitTS routes to the destination,
anything older to the source. That is the *ordered diversion* barrier.

Coordinators normally route from a fast private cache. Because a stale cache
could route a post-T_m transaction to the source, Remus marks migrating
shards *cache-read-through* before T_m executes: while the mark is set,
routing for those shards goes through an MVCC read of the shard map table
(inheriting prepare-wait on T_m itself), and the cache entry is refreshed
when a newer committed version becomes visible.
"""

from repro.cluster.shard import ShardId
from repro.storage.clog import TxnStatus

# The shard map replica is addressed like a shard so that T_m can update it
# through the ordinary transaction manager on each node.
SHARDMAP_SHARD = ShardId("__shardmap__", 0)

BOOTSTRAP_XID = -1  # reserved xid for rows installed at table creation
RESERVED_MIN_TS = 0  # reserved minimal commit timestamp (visible to everyone)


class ShardMapCache:
    """Ordered private routing cache for one coordinator node."""

    def __init__(self, node_id):
        self.node_id = node_id
        self._entries = {}  # shard_id -> (owner_node_id, version_cts)
        self._read_through = set()
        self.read_through_lookups = 0
        self.cache_lookups = 0

    def install(self, shard_id, owner, cts=RESERVED_MIN_TS):
        self._entries[shard_id] = (owner, cts)

    def lookup(self, shard_id):
        self.cache_lookups += 1
        entry = self._entries.get(shard_id)
        if entry is None:
            raise KeyError("shard {!r} not in cache on {}".format(shard_id, self.node_id))
        return entry[0]

    def entry(self, shard_id):
        """(owner, version_cts) — callers compare the cts against their
        snapshot to detect a cache entry newer than what they may see."""
        self.cache_lookups += 1
        entry = self._entries.get(shard_id)
        if entry is None:
            raise KeyError("shard {!r} not in cache on {}".format(shard_id, self.node_id))
        return entry

    def maybe_update(self, shard_id, owner, cts):
        """Refresh the entry if ``cts`` is newer than the cached version."""
        current = self._entries.get(shard_id)
        if current is None or cts > current[1]:
            self._entries[shard_id] = (owner, cts)
            return True
        return False

    @property
    def read_through_shards(self):
        return frozenset(self._read_through)

    def is_read_through(self, shard_id):
        return shard_id in self._read_through

    def set_read_through(self, shard_ids):
        self._read_through.update(shard_ids)

    def clear_read_through(self, shard_ids):
        self._read_through.difference_update(shard_ids)


def read_shard_owner(shardmap_heap, clog, shard_id, snapshot):
    """Generator: MVCC read of the shard map row for ``shard_id``.

    Returns ``(owner_node_id, version_cts)`` for the version visible to
    ``snapshot``. Prepare-waits on an in-flight T_m, which is exactly the
    mechanism that keeps diversion ordered across nodes.
    """
    version, _traversed = yield from shardmap_heap.visible_version(shard_id, snapshot)
    if version is None:
        raise KeyError("shard {!r} missing from shard map".format(shard_id))
    if version.xmin == BOOTSTRAP_XID:
        cts = RESERVED_MIN_TS
    elif clog.status(version.xmin) is TxnStatus.COMMITTED:
        cts = clog.commit_ts(version.xmin)
    else:
        cts = RESERVED_MIN_TS
    return version.value, cts
