"""repro — a reproduction of *Remus: Efficient Live Migration for
Distributed Databases with Snapshot Isolation* (SIGMOD 2022).

The package contains a complete shared-nothing distributed database
simulated over a deterministic discrete-event kernel — MVCC storage with a
CLOG and WAL, snapshot isolation with prepare-wait, row/shard locking, 2PC,
centralized (GTS) and decentralized (DTS/HLC) timestamp ordering, consistent
hashing and multi-versioned shard maps — plus the paper's live-migration
protocol (Remus: snapshot copy, WAL propagation, sync barrier, ordered
diversion, MOCC dual execution, crash recovery) and every baseline the paper
evaluates against (lock-and-abort, wait-and-remaster, a Squall port and
stop-and-copy), the paper's workloads (YCSB, TPC-C, hybrid A/B) and the
experiment harnesses that regenerate each of its tables and figures.

Quickstart::

    from repro import Cluster, ClusterConfig
    from repro.migration import MigrationPlan, RemusMigration, run_plan

    cluster = Cluster(ClusterConfig(num_nodes=3))
    cluster.create_table("kv", num_shards=6)
    cluster.bulk_load("kv", [(k, {"v": k}) for k in range(1000)])

    session = cluster.session("node-1")

    def txn_body():
        txn = yield from session.begin()
        value = yield from session.read(txn, "kv", 42)
        yield from session.update(txn, "kv", 42, {"v": "updated"})
        yield from session.commit(txn)
        return value

    cluster.sim.run_until_complete(cluster.spawn(txn_body()))

    shard = cluster.shards_on_node("node-1", table="kv")[0]
    plan = MigrationPlan(RemusMigration, [([shard], "node-1", "node-2")])
    cluster.sim.run_until_complete(cluster.spawn(run_plan(cluster, plan)))
"""

from repro.cluster import Cluster, Session, ShardId
from repro.config import ClusterConfig, CostModel
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterConfig",
    "CostModel",
    "Session",
    "ShardId",
    "Simulator",
    "__version__",
]
