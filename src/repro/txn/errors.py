"""Abort taxonomy.

The paper's evaluation distinguishes *migration-induced* aborts (what Remus
eliminates) from ordinary write-write serialization failures (which any SI
system has). Keeping them as distinct exception types lets the metrics layer
report them separately, as Table 2 and §4.5 do.
"""


class TransactionError(Exception):
    """Base class for transaction aborts."""

    kind = "error"

    def __init__(self, message: str = "", txn_id: "int | None" = None) -> None:
        super().__init__(message)
        self.txn_id = txn_id


class SerializationFailure(TransactionError):
    """First-updater-wins WW conflict under snapshot isolation.

    PostgreSQL's "could not serialize access due to concurrent update".
    Also raised when MOCC validation detects a WW conflict between a source
    transaction's shadow and a destination transaction.
    """

    kind = "ww_conflict"


class MigrationAbort(TransactionError):
    """Transaction killed by migration machinery.

    Raised by lock-and-abort when transferring ownership, and by the Squall
    port when a source transaction touches an already-migrated chunk.
    """

    kind = "migration"


class UniqueViolation(TransactionError):
    """Primary-key uniqueness constraint violated by an insert."""

    kind = "unique"


class StaleEpoch(TransactionError):
    """A 2PC request reached a participant whose shard epoch moved on.

    Raised when a prepare or commit arrives at a replica that lost (or never
    had) leadership for the target shard under the epoch the coordinator
    routed with. The coordinator re-resolves ownership through the shard map
    and retries on the new leader instead of wedging or double-committing.
    """

    kind = "stale_epoch"


class ReplicaFailover(TransactionError):
    """The shard's leader replica is down and an election is in progress.

    Retryable: the client re-runs the transaction once the replication group
    has elected a new leader and republished the shard map.
    """

    kind = "failover"


class RpcAbort(TransactionError):
    """An RPC to a participant exhausted its retry budget (partition / loss).

    The coordinator aborts the transaction rather than hang; the client's
    ordinary retry loop re-runs it once the link heals.
    """

    kind = "rpc_timeout"
