"""Timestamp ordering schemes: centralized GTS and decentralized DTS.

*GTS* (§2.2 "Centralized Coordination") is a monotonically increasing
sequencer hosted on the control-plane node; every start/commit timestamp
costs a network round trip, which is why the paper finds DTS faster.

*DTS* (§2.2 "Decentralized Coordination") gives each node a Hybrid Logical
Clock — a physical clock (subject to per-node skew) fused with a logical
counter that tracks causality: every cross-node message carries the sender's
clock and advances the receiver's (``observe``), so dependent transactions
are always correctly ordered even though independent sessions on different
nodes may read slightly stale snapshots.

Both oracles expose the same generator-based interface:

    start_ts = yield from oracle.start_timestamp(node_id)
    commit_ts = yield from oracle.commit_timestamp(node_id, floor_ts)
    oracle.observe(node_id, some_remote_ts)
"""

from __future__ import annotations

# Timestamps are integers: (physical microseconds << LOGICAL_BITS) | logical.
LOGICAL_BITS = 16


def encode_hlc(physical_micros: int, logical: int = 0) -> int:
    return (physical_micros << LOGICAL_BITS) | logical


def decode_hlc(ts: int) -> tuple[int, int]:
    return ts >> LOGICAL_BITS, ts & ((1 << LOGICAL_BITS) - 1)


class HybridLogicalClock:
    """One node's HLC: monotone, causality-tracking, physically anchored."""

    def __init__(self, sim, skew: float = 0.0) -> None:
        self.sim = sim
        self.skew = skew
        self._last = 0

    def _physical(self) -> int:
        return encode_hlc(int((self.sim.now + self.skew) * 1e6))

    def now(self) -> int:
        """Advance the clock and return a fresh, strictly increasing ts."""
        candidate = max(self._physical(), self._last + 1)
        self._last = candidate
        return candidate

    def update(self, observed_ts: int) -> None:
        """Merge a timestamp observed on an incoming message (causality)."""
        if observed_ts > self._last:
            self._last = observed_ts

    def peek(self) -> int:
        return max(self._physical(), self._last)


class DtsOracle:
    """Decentralized timestamps: per-node HLCs, no network round trips."""

    name = "dts"

    def __init__(self, sim, skew_by_node=None, default_skew=0.0):
        self.sim = sim
        self._skews = dict(skew_by_node or {})
        self._default_skew = default_skew
        self._clocks = {}

    def clock(self, node_id: str) -> HybridLogicalClock:
        if node_id not in self._clocks:
            skew = self._skews.get(node_id, self._default_skew)
            self._clocks[node_id] = HybridLogicalClock(self.sim, skew=skew)
        return self._clocks[node_id]

    def start_timestamp(self, node_id):
        return self.clock(node_id).now()
        yield  # pragma: no cover - makes this a generator like GTS's

    def commit_timestamp(self, node_id, floor_ts=0):
        clock = self.clock(node_id)
        clock.update(floor_ts)
        return clock.now()
        yield  # pragma: no cover

    def observe(self, node_id: str, ts: int) -> None:
        self.clock(node_id).update(ts)

    def local_now(self, node_id: str) -> int:
        """A fresh timestamp from the node's clock (used for prepare acks)."""
        return self.clock(node_id).now()

    def peek(self, node_id: str) -> int:
        """Non-advancing read of the node's clock (message piggybacking)."""
        return self.clock(node_id).peek()

    def safe_horizon(self) -> int:
        """A timestamp no future snapshot can precede (vacuum horizon)."""
        if not self._clocks:
            return 0
        return min(clock.peek() for clock in self._clocks.values())


class GtsOracle:
    """Centralized sequencer on the control plane (§2.2).

    Every request pays a round trip from the asking node to the control
    plane; requests from the control plane itself are local.
    """

    name = "gts"

    def __init__(self, sim, network, control_node_id="control-plane"):
        self.sim = sim
        self.network = network
        self.control_node_id = control_node_id
        self._counter = 0
        self.requests_served = 0

    def _next(self):
        self._counter += 1
        self.requests_served += 1
        return self._counter

    def start_timestamp(self, node_id):
        yield self.network.roundtrip(node_id, self.control_node_id)
        return self._next()

    def commit_timestamp(self, node_id, floor_ts=0):
        yield self.network.roundtrip(node_id, self.control_node_id)
        # The sequencer is globally monotonic, hence always above any
        # previously handed-out floor.
        ts = self._next()
        if ts <= floor_ts:
            self._counter = floor_ts + 1
            ts = self._counter
        return ts

    def observe(self, node_id, ts):
        """GTS timestamps are globally ordered already; nothing to merge."""

    def local_now(self, node_id):
        """Non-blocking sequencer peek used for prepare acks."""
        return self._counter

    def peek(self, node_id):
        return self._counter

    def safe_horizon(self):
        return self._counter
