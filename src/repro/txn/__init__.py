"""Transaction layer: snapshot isolation, locking, timestamps, 2PC state.

- :mod:`repro.txn.errors` — the abort taxonomy (WW serialization failures,
  migration-induced aborts, unique violations);
- :mod:`repro.txn.timestamps` — the two timestamp ordering schemes from the
  paper: centralized **GTS** (a sequencer on the control plane) and
  decentralized **DTS** (per-node Hybrid Logical Clocks);
- :mod:`repro.txn.locks` — FIFO row locks and shared/exclusive shard locks
  (the latter used by the Squall port and lock-and-abort);
- :mod:`repro.txn.transaction` — the transaction record: snapshot, per-node
  participants, undo log, held locks, lifecycle state;
- :mod:`repro.txn.manager` — the per-node transaction manager executing MVCC
  reads/writes under SI with first-updater-wins, plus the local halves of
  2PC (prepare / commit / abort) with WAL flushes and commit hooks that the
  migration protocols plug into.
"""

from repro.txn.errors import (
    MigrationAbort,
    SerializationFailure,
    TransactionError,
    UniqueViolation,
)
from repro.txn.locks import RowLockTable, SharedExclusiveLockTable
from repro.txn.manager import NodeTxnManager
from repro.txn.timestamps import DtsOracle, GtsOracle, HybridLogicalClock
from repro.txn.transaction import Transaction, TxnState

__all__ = [
    "DtsOracle",
    "GtsOracle",
    "HybridLogicalClock",
    "MigrationAbort",
    "NodeTxnManager",
    "RowLockTable",
    "SerializationFailure",
    "SharedExclusiveLockTable",
    "Transaction",
    "TransactionError",
    "TxnState",
    "UniqueViolation",
]
