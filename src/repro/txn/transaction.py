"""Transaction records.

A :class:`Transaction` is coordinated by one node and may have participant
state on several nodes (shared-nothing execution). Each participant gets its
own node-local ``xid`` — mirroring PostgreSQL, where a distributed transaction
is a set of local transactions stitched together by 2PC — while the snapshot
(start timestamp) is global.
"""

from __future__ import annotations

import enum

from repro import fastpath
from repro.profiling.counters import COUNTERS
from repro.sim.ordered import OrderedSet
from repro.storage.snapshot import Snapshot


class TxnState(enum.Enum):
    ACTIVE = "active"
    PREPARING = "preparing"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Participant:
    """Per-node transaction state."""

    __slots__ = (
        "node_id",
        "xid",
        "wrote_shards",
        "row_locks",
        "shard_locks",
        "writes",
        "prepare_lsn",
    )

    def __init__(self, node_id: str, xid: int) -> None:
        self.node_id = node_id
        self.xid = xid
        # Insertion-ordered so that release/validation loops over them are
        # deterministic across processes (simlint SIM003).
        self.wrote_shards = OrderedSet()
        self.row_locks = OrderedSet()  # (shard_id, key) pairs currently held
        self.shard_locks = OrderedSet()
        self.writes = 0
        self.prepare_lsn = None  # LSN of this participant's PREPARE record


class Transaction:
    """One (possibly distributed) transaction under snapshot isolation."""

    _next_tid = 0

    @classmethod
    def allocate_tid(cls) -> int:
        cls._next_tid += 1
        return cls._next_tid

    def __init__(
        self, tid: int, coordinator_node: str, start_ts: int, label: str = ""
    ) -> None:
        self.tid = tid
        self.coordinator_node = coordinator_node
        self.start_ts = start_ts
        self.label = label
        self.state = TxnState.ACTIVE
        self.commit_ts: int | None = None
        self.participants: dict[str, Participant] = {}
        self.process = None  # owning sim Process; migrations interrupt it
        self.doomed = None  # exception to raise at the next operation
        self.begin_time = None
        self.is_shadow = False
        self.source_tid = None  # for shadow txns: the source transaction
        self.op_count = 0
        # shard_id -> replication-group epoch observed at routing time;
        # participants reject prepares routed under a superseded epoch.
        self.shard_epochs: dict = {}
        # node_id -> Snapshot, reused across operations on that node until
        # the participant set changes (the only input besides the immutable
        # start_ts). Key None caches the xid-free routing snapshot.
        self._snapshots: dict = {}

    # ------------------------------------------------------------------
    def snapshot_for(self, node_id: str) -> Snapshot:
        """MVCC snapshot for reads executed on ``node_id``.

        Snapshots are immutable value objects, so one per (txn, node) is
        shared across every read/scan the transaction runs there;
        :meth:`add_participant` invalidates the entry because it changes
        the ``xid`` the snapshot must carry for own-write visibility.
        """
        if fastpath.snapshot_cache:
            snapshot = self._snapshots.get(node_id)
            if snapshot is not None:
                COUNTERS.snapshot_cache_hits += 1
                return snapshot
            COUNTERS.snapshot_cache_misses += 1
        participant = self.participants.get(node_id)
        xid = participant.xid if participant else None
        snapshot = Snapshot(self.start_ts, xid=xid)
        if fastpath.snapshot_cache:
            self._snapshots[node_id] = snapshot
        return snapshot

    def plain_snapshot(self) -> Snapshot:
        """The xid-free snapshot at ``start_ts`` (routing / shard-map reads).

        Never invalidated: it depends only on the immutable start_ts.
        """
        if fastpath.snapshot_cache:
            snapshot = self._snapshots.get(None)
            if snapshot is not None:
                COUNTERS.snapshot_cache_hits += 1
                return snapshot
            COUNTERS.snapshot_cache_misses += 1
        snapshot = Snapshot(self.start_ts)
        if fastpath.snapshot_cache:
            self._snapshots[None] = snapshot
        return snapshot

    def participant(self, node_id: str) -> Participant | None:
        return self.participants.get(node_id)

    def add_participant(self, node_id: str, xid: int) -> Participant:
        participant = Participant(node_id, xid)
        self.participants[node_id] = participant
        self._snapshots.pop(node_id, None)
        return participant

    @property
    def participant_nodes(self) -> list[str]:
        return list(self.participants.keys())

    @property
    def is_distributed(self) -> bool:
        return len(self.participants) > 1

    @property
    def wrote_anything(self) -> bool:
        return any(p.writes for p in self.participants.values())

    def wrote_shards(self) -> OrderedSet:
        shards = OrderedSet()
        for participant in self.participants.values():
            shards |= participant.wrote_shards
        return shards

    @property
    def finished(self) -> bool:
        return self.state in (TxnState.COMMITTED, TxnState.ABORTED)

    def doom(self, exc: BaseException) -> None:
        """Mark the transaction for abort at its next safe point."""
        if self.doomed is None and not self.finished:
            self.doomed = exc

    def check_doomed(self) -> None:
        if self.doomed is not None:
            exc, self.doomed = self.doomed, None
            raise exc

    def __repr__(self):
        return "Transaction(tid={}, state={}, start_ts={}, label={!r})".format(
            self.tid, self.state.value, self.start_ts, self.label
        )
