"""Per-node transaction manager: MVCC execution under SI + local 2PC halves.

One :class:`NodeTxnManager` exists per elastic node. It executes reads and
writes against the node's heap tables under snapshot isolation with
first-updater-wins write-write conflict handling (PostgreSQL semantics), and
implements the node-local parts of two-phase commit: PREPARE (write and flush
a prepare/validation WAL record, mark PREPARED in the CLOG), COMMIT (commit
record + flush, CLOG commit timestamp, release locks) and ABORT.

Migration protocols plug in through *commit hooks*: objects registered with
:meth:`add_commit_hook` whose generator methods run inside the local prepare
and commit paths. Remus uses this for the sync barrier + MOCC validation wait
(§3.4/§3.5.2) without the transaction layer knowing anything about migration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro import fastpath
from repro.profiling.counters import COUNTERS
from repro.sim.errors import Interrupt
from repro.sim.events import Event
from repro.sim.ordered import OrderedSet
from repro.storage.clog import TxnStatus
from repro.storage.snapshot import Snapshot
from repro.storage.wal import WalRecord, WalRecordKind
from repro.txn.errors import SerializationFailure, TransactionError, UniqueViolation
from repro.txn.locks import RowLockTable, SharedExclusiveLockTable

if TYPE_CHECKING:
    from repro.txn.transaction import Participant, Transaction


class MissingRow(KeyError):
    """Update/delete targeted a row invisible to the transaction."""


class CommitHook:
    """Base class for protocol hooks into the local commit path."""

    def after_prepare(self, txn, participant):
        """Generator run after the prepare record is durable and the CLOG
        shows PREPARED, before the coordinator may assign a commit ts.
        May raise to doom the transaction (e.g. MOCC WW-conflict)."""
        return
        yield  # pragma: no cover

    def after_commit(self, txn, participant, commit_ts):
        """Generator run after the commit record is durable."""
        return
        yield  # pragma: no cover

    def after_abort(self, txn, participant):
        """Generator run after a local abort completes."""
        return
        yield  # pragma: no cover


class NodeTxnManager:
    """Executes transaction operations on one node's local storage."""

    def __init__(self, sim, node_id, clog, wal, cpu, costs, heap_for):
        self.sim = sim
        self.node_id = node_id
        self.clog = clog
        self.wal = wal
        self.cpu = cpu
        self.costs = costs
        self.heap_for = heap_for
        self.shard_locks = SharedExclusiveLockTable(sim, name=node_id)
        self._row_locks = {}
        self._next_xid = 0
        self._commit_hooks = []
        self.active_xids = OrderedSet()
        self._first_change_lsn = {}  # xid -> LSN of its first change record
        self.extra_flush_latency = 0.0  # synchronous replication round trip
        self.flush_stall_until = 0.0  # chaos: WAL device stalled until then
        # Epoch-tagged snapshot caching: bumped on every active_xids change
        # (begin/commit/abort), so cached frozensets / shared read snapshots
        # are reused until the node's transaction state actually moves.
        self.active_epoch = 0
        self._active_set_cache = None  # (epoch, frozenset)
        self._read_snapshot_cache = None  # (epoch, start_ts, Snapshot)

    # ------------------------------------------------------------------
    # Participant management
    # ------------------------------------------------------------------
    def ensure_participant(self, txn: "Transaction") -> "Participant":
        participant = txn.participant(self.node_id)
        if participant is None:
            self._next_xid += 1
            participant = txn.add_participant(self.node_id, self._next_xid)
            self.clog.begin(participant.xid)
            self.active_xids.add(participant.xid)
            self.active_epoch += 1
        return participant

    def allocate_local_xid(self) -> int:
        """Allocate a node-local xid outside any distributed transaction.

        Used by replication applies and election-time shard-map installs,
        which write committed versions directly (no 2PC, no locks) and need
        a CLOG identity for MVCC visibility.
        """
        self._next_xid += 1
        return self._next_xid

    def discard_active(self, xid) -> None:
        """Drop ``xid`` from the active set (resolved out-of-band, e.g. the
        read-only fast commit), invalidating epoch-tagged snapshots."""
        self.active_xids.discard(xid)
        self.active_epoch += 1

    def active_xid_set(self) -> frozenset:
        """Frozenset view of the active xids, cached per epoch."""
        cached = self._active_set_cache
        if cached is not None and cached[0] == self.active_epoch:
            return cached[1]
        xids = frozenset(self.active_xids)
        self._active_set_cache = (self.active_epoch, xids)
        return xids

    def read_snapshot(self, start_ts) -> Snapshot:
        """Shared xid-free snapshot at ``start_ts`` for pure snapshot reads
        (migration snapshot scans, repair reads, shard-map lookups).

        Epoch-tagged: the same :class:`Snapshot` object — including its
        ``active_xids`` frozenset — is handed out until a transaction
        begins or resolves on this node. Snapshots are immutable, so
        sharing is invisible to MVCC semantics.
        """
        if fastpath.snapshot_cache:
            cached = self._read_snapshot_cache
            if (
                cached is not None
                and cached[0] == self.active_epoch
                and cached[1] == start_ts
            ):
                COUNTERS.shared_snapshot_hits += 1
                return cached[2]
            COUNTERS.shared_snapshot_misses += 1
        snapshot = Snapshot(start_ts, active_xids=self.active_xid_set())
        if fastpath.snapshot_cache:
            self._read_snapshot_cache = (self.active_epoch, start_ts, snapshot)
        return snapshot

    def row_locks(self, shard_id) -> RowLockTable:
        if shard_id not in self._row_locks:
            self._row_locks[shard_id] = RowLockTable(
                self.sim, name="{}:{}".format(self.node_id, shard_id)
            )
        return self._row_locks[shard_id]

    def add_commit_hook(self, hook: CommitHook) -> None:
        self._commit_hooks.append(hook)

    def remove_commit_hook(self, hook: CommitHook) -> None:
        if hook in self._commit_hooks:
            self._commit_hooks.remove(hook)

    # ------------------------------------------------------------------
    # MVCC operations (generators)
    # ------------------------------------------------------------------
    def read(self, txn: "Transaction", shard_id, key) -> Generator:
        """Point read of ``key`` under the transaction's snapshot.

        The CPU charge grows with the row's version-chain length: as in
        PostgreSQL, a reader walks the whole HOT chain of not-yet-vacuumed
        versions, so long-running snapshots that hold vacuum back slow every
        reader down (the paper's §4.8 effect).
        """
        txn.check_doomed()
        heap = self.heap_for(shard_id)
        yield self.cpu.use(self.costs.cpu_read)
        value, _traversed = yield from heap.read(key, txn.snapshot_for(self.node_id))
        chain_extra = heap.chain_length(key) - 1
        if chain_extra > 0:
            yield self.cpu.use(self.costs.cpu_per_version * chain_extra)
        txn.op_count += 1
        return value

    def scan(self, txn: "Transaction", shard_id) -> Generator:
        """Full MVCC scan of a shard under the transaction's snapshot.

        Returns the list of visible keys. CPU is charged per tuple in
        batches, which is what makes analytical queries long-running.
        """
        txn.check_doomed()
        heap = self.heap_for(shard_id)
        snapshot = txn.snapshot_for(self.node_id)
        keys = []
        pending_cost = 0.0
        for key in list(heap.keys()):
            version, _traversed = yield from heap.visible_version(key, snapshot)
            pending_cost += self.costs.cpu_read + self.costs.cpu_per_version * max(
                0, heap.chain_length(key) - 1
            )
            if version is not None:
                keys.append(key)
            if pending_cost >= 128 * self.costs.cpu_read:
                yield self.cpu.use(pending_cost)
                pending_cost = 0.0
        if pending_cost:
            yield self.cpu.use(pending_cost)
        txn.op_count += 1
        return keys

    def update(self, txn: "Transaction", shard_id, key, value, size: int = 0) -> Generator:
        """SI update with first-updater-wins; appends a new version."""
        participant, latest = yield from self._write_entry(txn, shard_id, key)
        heap = self.heap_for(shard_id)
        if latest is None:
            raise MissingRow(key)
        visible = yield from self._resolve_write_target(txn, participant, heap, latest)
        if visible is None:
            raise MissingRow(key)
        heap.mark_deleted(visible, participant.xid)
        heap.put_version(key, value, participant.xid)
        self._log_change(WalRecordKind.UPDATE, participant, txn, shard_id, key, value, size)
        yield self.cpu.use(self.costs.cpu_write)
        return True

    def insert(self, txn: "Transaction", shard_id, key, value, size: int = 0) -> Generator:
        """Insert with primary-key uniqueness enforcement."""
        participant, latest = yield from self._write_entry(txn, shard_id, key)
        heap = self.heap_for(shard_id)
        if latest is not None:
            alive = yield from self._version_alive(participant, latest)
            if alive:
                raise UniqueViolation("duplicate key {!r}".format(key), txn_id=txn.tid)
        heap.put_version(key, value, participant.xid)
        self._log_change(WalRecordKind.INSERT, participant, txn, shard_id, key, value, size)
        yield self.cpu.use(self.costs.cpu_write)
        return True

    def delete(self, txn: "Transaction", shard_id, key, size: int = 0) -> Generator:
        """SI delete with first-updater-wins."""
        participant, latest = yield from self._write_entry(txn, shard_id, key)
        heap = self.heap_for(shard_id)
        if latest is None:
            raise MissingRow(key)
        visible = yield from self._resolve_write_target(txn, participant, heap, latest)
        if visible is None:
            raise MissingRow(key)
        heap.mark_deleted(visible, participant.xid)
        self._log_change(WalRecordKind.DELETE, participant, txn, shard_id, key, None, size)
        yield self.cpu.use(self.costs.cpu_write)
        return True

    def lock_row(self, txn: "Transaction", shard_id, key, size: int = 0) -> Generator:
        """Explicit row lock (SELECT ... FOR UPDATE) with WW semantics."""
        participant, latest = yield from self._write_entry(txn, shard_id, key)
        heap = self.heap_for(shard_id)
        if latest is None:
            raise MissingRow(key)
        visible = yield from self._resolve_write_target(txn, participant, heap, latest)
        if visible is None:
            raise MissingRow(key)
        self._log_change(WalRecordKind.LOCK, participant, txn, shard_id, key, None, size)
        return visible.value

    def _write_entry(self, txn, shard_id, key):
        """Common entry for write ops: doom check, row lock, newest version."""
        txn.check_doomed()
        participant = self.ensure_participant(txn)
        yield from self._acquire_row_lock(txn, participant, shard_id, key)
        txn.check_doomed()
        heap = self.heap_for(shard_id)
        yield self.cpu.use(self.costs.cpu_write)
        latest = heap.latest_committed_or_locked(key)
        txn.op_count += 1
        return participant, latest

    def _acquire_row_lock(self, txn, participant, shard_id, key):
        table = self.row_locks(shard_id)
        if fastpath.lock_fastpath and table.try_acquire(key, participant.xid):
            # Uncontended (or reentrant) grab. Yield a pre-triggered bare
            # event: the resumption lands at the exact (time, seq) slot the
            # slow path's named event would have produced, so interleaving
            # with concurrent processes is unchanged — only the event-name
            # formatting and queue bookkeeping are skipped.
            COUNTERS.lock_fast_acquires += 1
            event = Event(self.sim)
            event.succeed(None)
            yield event
            participant.row_locks.add((shard_id, key))
            return
        COUNTERS.lock_slow_acquires += 1
        event = table.acquire(key, participant.xid)
        try:
            yield event
        except Interrupt:
            table.cancel_wait(key, participant.xid)
            raise
        participant.row_locks.add((shard_id, key))

    def _version_alive(self, participant, version):
        """Generator: is ``version`` still the live row (for uniqueness)?

        Called under the row lock. A version is dead for uniqueness purposes
        if a committed transaction deleted it.
        """
        if version.xmax is None:
            # Created by self, or committed/prepared insert not yet deleted.
            if version.xmin == participant.xid:
                return True
            while self.clog.status(version.xmin) is TxnStatus.PREPARED:
                yield self.clog.wait_completion(version.xmin)
            return self.clog.status(version.xmin) is TxnStatus.COMMITTED
        if version.xmax == participant.xid:
            return False  # deleted by self earlier in this txn
        while self.clog.status(version.xmax) is TxnStatus.PREPARED:
            yield self.clog.wait_completion(version.xmax)
        return self.clog.status(version.xmax) is not TxnStatus.COMMITTED

    def _resolve_write_target(self, txn, participant, heap, latest):
        """Generator: first-updater-wins conflict resolution under SI.

        Returns the version this transaction may overwrite, or None if the
        row is gone for this snapshot. Raises SerializationFailure when a
        concurrent transaction (commit ts > our start ts) already changed it.
        """
        version = latest
        while True:
            if version is None:
                return None
            if version.xmin == participant.xid:
                return version  # updating our own earlier write
            while self.clog.status(version.xmin) is TxnStatus.PREPARED:
                yield self.clog.wait_completion(version.xmin)
            status = self.clog.status(version.xmin)
            if status is TxnStatus.COMMITTED:
                break
            if status is TxnStatus.IN_PROGRESS:
                # Cannot happen under row locking; fail loudly rather than spin.
                raise SerializationFailure(
                    "in-progress writer {} despite row lock".format(version.xmin),
                    txn_id=txn.tid,
                )
            # The creator aborted while we waited: retry on the next newest
            # surviving version.
            version = heap.latest_committed_or_locked(version.key)
        if self.clog.commit_ts(version.xmin) > txn.start_ts:
            raise SerializationFailure(
                "concurrent update committed after our snapshot", txn_id=txn.tid
            )
        if version.xmax is not None and version.xmax != participant.xid:
            while self.clog.status(version.xmax) is TxnStatus.PREPARED:
                yield self.clog.wait_completion(version.xmax)
            if self.clog.status(version.xmax) is TxnStatus.COMMITTED:
                if self.clog.commit_ts(version.xmax) > txn.start_ts:
                    raise SerializationFailure(
                        "concurrent delete committed after our snapshot",
                        txn_id=txn.tid,
                    )
                return None  # deleted before our snapshot
        return version

    def _log_change(self, kind, participant, txn, shard_id, key, value, size):
        participant.writes += 1
        participant.wrote_shards.add(shard_id)
        lsn = self.wal.append(
            WalRecord(
                kind,
                xid=participant.xid,
                shard_id=shard_id,
                key=key,
                value=value,
                size=size,
                start_ts=txn.start_ts,
            )
        )
        self._first_change_lsn.setdefault(participant.xid, lsn)

    def oldest_active_change_lsn(self) -> int:
        """Lowest WAL LSN a new propagation stream must start from so that
        every change of a still-active transaction is covered (§3.3)."""
        if self._first_change_lsn:
            return min(self._first_change_lsn.values())
        return self.wal.tail_lsn

    # ------------------------------------------------------------------
    # Shard (partition) locks — Squall mode and lock-and-abort
    # ------------------------------------------------------------------
    def acquire_shard_lock(self, txn: "Transaction", shard_id, mode: str) -> Generator:
        txn.check_doomed()
        participant = self.ensure_participant(txn)
        if shard_id in participant.shard_locks and mode == SharedExclusiveLockTable.SHARED:
            return
        if fastpath.lock_fastpath and self.shard_locks.try_acquire(
            shard_id, participant.xid, mode
        ):
            COUNTERS.lock_fast_acquires += 1
            event = Event(self.sim)
            event.succeed(None)
            yield event
            participant.shard_locks.add(shard_id)
            return
        COUNTERS.lock_slow_acquires += 1
        event = self.shard_locks.acquire(shard_id, participant.xid, mode)
        try:
            yield event
        except Interrupt:
            self.shard_locks.cancel_wait(shard_id, participant.xid)
            raise
        participant.shard_locks.add(shard_id)

    def shard_write_locker(self, shard_id):
        return self.shard_locks.write_holder(shard_id)

    # ------------------------------------------------------------------
    # Local 2PC halves
    # ------------------------------------------------------------------
    def flush_wal(self):
        """Durable WAL flush; with synchronous replication the commit also
        waits for the replicas to acknowledge (§3.7).

        A chaos-injected WAL stall (``flush_stall_until``) models a hiccuping
        storage device: every flush issued before that time blocks until the
        device recovers.

        Group commit: flushes on this node that would complete at the same
        instant share one completion event (:class:`~repro.storage.wal.
        FlushCoalescer`), turning a commit storm's N timers into 2 kernel
        events while resuming the waiters in the identical order. A stalled
        device disables coalescing for the stall window — correctness of
        the stall loop stays with the simple per-flush path."""
        delay = self.costs.wal_flush + self.extra_flush_latency
        COUNTERS.wal_flushes += 1
        if fastpath.group_commit and self.sim.now >= self.flush_stall_until:
            waitable = self.wal.flush_group.join(delay)
            if waitable is None:
                yield delay  # group leader pays the (legacy-identical) timer
            else:
                yield waitable
        else:
            yield delay
        while self.sim.now < self.flush_stall_until:
            yield self.flush_stall_until - self.sim.now

    def local_prepare(self, txn: "Transaction") -> Generator:
        """Write + flush the prepare (validation) record; mark PREPARED.

        Runs the registered commit hooks afterwards — this is where Remus'
        sync-mode MOCC validation wait happens.
        """
        participant = self.ensure_participant(txn)
        if self.clog.status(participant.xid) is not TxnStatus.IN_PROGRESS:
            # The participant was resolved concurrently (e.g. aborted by
            # crash recovery while this prepare was delayed in flight):
            # presumed abort — vote no.
            raise TransactionError(
                "prepare after resolution", txn_id=txn.tid
            )
        participant.prepare_lsn = self.wal.append(
            WalRecord(
                WalRecordKind.PREPARE,
                xid=participant.xid,
                start_ts=txn.start_ts,
            )
        )
        yield from self.flush_wal()
        self.clog.set_prepared(participant.xid)
        for hook in list(self._commit_hooks):
            yield from hook.after_prepare(txn, participant)

    def local_commit(self, txn: "Transaction", commit_ts: int) -> Generator:
        """Durably commit the local participant and release its locks.

        Idempotent under redelivery: 2PC decisions are retransmitted, so the
        same COMMIT may be applied twice (e.g. by a straggler commit process
        racing crash recovery)."""
        participant = txn.participant(self.node_id)
        if self.clog.status(participant.xid) is TxnStatus.COMMITTED:
            return
        if self.clog.status(participant.xid) is TxnStatus.PREPARED:
            kind = WalRecordKind.COMMIT_PREPARED
        else:
            kind = WalRecordKind.COMMIT
        self.wal.append(WalRecord(kind, xid=participant.xid, commit_ts=commit_ts))
        yield from self.flush_wal()
        self.clog.set_committed(participant.xid, commit_ts)
        self._release_locks(participant)
        self.active_xids.discard(participant.xid)
        self.active_epoch += 1
        self._first_change_lsn.pop(participant.xid, None)
        for hook in list(self._commit_hooks):
            yield from hook.after_commit(txn, participant, commit_ts)

    def local_abort(self, txn: "Transaction") -> Generator:
        """Abort the local participant: CLOG abort + release locks.

        Version cleanup is logical (CLOG status), as in PostgreSQL; vacuum
        reclaims the junk versions later.
        """
        participant = txn.participant(self.node_id)
        if participant is None:
            return
        if self.clog.status(participant.xid) is TxnStatus.ABORTED:
            return
        if self.clog.status(participant.xid) is TxnStatus.PREPARED:
            kind = WalRecordKind.ROLLBACK_PREPARED
        else:
            kind = WalRecordKind.ABORT
        self.wal.append(WalRecord(kind, xid=participant.xid))
        if self.clog.status(participant.xid) in (
            TxnStatus.IN_PROGRESS,
            TxnStatus.PREPARED,
        ):
            self.clog.set_aborted(participant.xid)
        self._release_locks(participant)
        self.active_xids.discard(participant.xid)
        self.active_epoch += 1
        self._first_change_lsn.pop(participant.xid, None)
        for hook in list(self._commit_hooks):
            yield from hook.after_abort(txn, participant)

    def force_abort_participant(self, participant: "Participant") -> bool:
        """Synchronously abort an in-progress participant (crash teardown).

        Unlike :meth:`local_abort` this skips the WAL record and commit
        hooks — it models the state a crashed process leaves behind after
        standard recovery has marked its transaction aborted.
        """
        if self.clog.status(participant.xid) is not TxnStatus.IN_PROGRESS:
            return False
        self.clog.set_aborted(participant.xid)
        self._release_locks(participant)
        self.active_xids.discard(participant.xid)
        self.active_epoch += 1
        self._first_change_lsn.pop(participant.xid, None)
        return True

    def _release_locks(self, participant):
        for shard_id, key in list(participant.row_locks):
            self.row_locks(shard_id).release(key, participant.xid)
        participant.row_locks.clear()
        for shard_id in list(participant.shard_locks):
            self.shard_locks.release(shard_id, participant.xid)
        participant.shard_locks.clear()
