"""Lock tables: FIFO row locks and shared/exclusive shard locks.

Row locks implement PostgreSQL-style tuple locking for writers: an updater
holds the row lock from its first write to the row until transaction end, and
competing updaters queue FIFO.

Shard (partition) locks model two things from the paper:

- the H-store-style partition locking that the PolarDB **Squall** port uses
  for concurrency control during pull migration (§4.2), and
- the exclusive shard locks that **lock-and-abort** takes during ownership
  transfer (§2.3.3).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Hashable, Iterable

from repro.sim.errors import SimulationError
from repro.sim.ordered import OrderedSet

if TYPE_CHECKING:
    from repro.sim.events import Event
    from repro.sim.kernel import Simulator


class RowLockTable:
    """Per-shard row lock table with FIFO queuing and reentrancy."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._owners: dict = {}
        self._queues: dict = {}

    def holder(self, key: Hashable):
        return self._owners.get(key)

    def try_acquire(self, key: Hashable, owner) -> bool:
        """O(1) uncontended/reentrant grab: True if ``owner`` now holds the
        row lock on ``key``; False means the caller must queue through
        :meth:`acquire`. Never blocks and never creates an event, so the
        uncontended hot path (the overwhelming majority of acquires) skips
        the event-name formatting and queue bookkeeping entirely."""
        current = self._owners.get(key)
        if current is None:
            self._owners[key] = owner
            return True
        return current == owner

    def acquire(self, key: Hashable, owner) -> "Event":
        """Event that succeeds once ``owner`` holds the row lock on ``key``."""
        event = self.sim.event(name="rowlock:{}:{}".format(self.name, key))
        current = self._owners.get(key)
        if current is None:
            self._owners[key] = owner
            event.succeed(None)
        elif current == owner:
            event.succeed(None)  # reentrant
        else:
            self._queues.setdefault(key, deque()).append((owner, event))
        return event

    def release(self, key: Hashable, owner) -> None:
        if self._owners.get(key) != owner:
            raise SimulationError(
                "lock on {!r} not held by {!r}".format(key, owner)
            )
        queue = self._queues.get(key)
        while queue:
            next_owner, event = queue.popleft()
            if event.triggered:
                continue  # waiter was cancelled
            self._owners[key] = next_owner
            event.succeed(None)
            if not queue:
                del self._queues[key]
            return
        if queue is not None and not queue:
            del self._queues[key]
        del self._owners[key]

    def release_all(self, owner, keys: Iterable[Hashable]) -> None:
        for key in keys:
            self.release(key, owner)

    def cancel_wait(self, key: Hashable, owner) -> None:
        """Drop ``owner``'s queued request for ``key`` (txn aborted while
        waiting). The wait event is failed so a blocked process wakes."""
        queue = self._queues.get(key)
        if not queue:
            return
        for entry in list(queue):
            waiting_owner, event = entry
            if waiting_owner == owner and not event.triggered:
                queue.remove(entry)
                if not queue:
                    del self._queues[key]
                return


class _ShardLockState:
    __slots__ = ("shared_owners", "exclusive_owner", "queue")

    def __init__(self):
        # Insertion-ordered: holder snapshots and release sweeps iterate in
        # grant order rather than hash order (simlint SIM003).
        self.shared_owners = OrderedSet()
        self.exclusive_owner = None
        self.queue = deque()  # (mode, owner, event)


class SharedExclusiveLockTable:
    """Shared/exclusive locks keyed by shard id, FIFO and reentrant.

    An owner holding shared may not upgrade; callers acquire the strongest
    mode they will need up front (as the Squall port does).
    """

    SHARED = "shared"
    EXCLUSIVE = "exclusive"

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._locks: dict = {}

    def _state(self, shard_id) -> _ShardLockState:
        if shard_id not in self._locks:
            self._locks[shard_id] = _ShardLockState()
        return self._locks[shard_id]

    def holders(self, shard_id):
        """(exclusive_owner, set_of_shared_owners) snapshot."""
        state = self._locks.get(shard_id)
        if state is None:
            return None, OrderedSet()
        return state.exclusive_owner, state.shared_owners.copy()

    def write_holder(self, shard_id):
        state = self._locks.get(shard_id)
        return state.exclusive_owner if state else None

    def _grantable(self, state, mode, owner):
        if state.exclusive_owner is not None:
            return state.exclusive_owner == owner and mode == self.EXCLUSIVE
        if mode == self.SHARED:
            # Grant shared only if no exclusive waiter is queued (fairness).
            return not any(m == self.EXCLUSIVE for m, _o, _e in state.queue)
        return not state.shared_owners and not state.queue

    def _grant(self, state, mode, owner):
        if mode == self.SHARED:
            state.shared_owners.add(owner)
        else:
            state.exclusive_owner = owner

    def try_acquire(self, shard_id, owner, mode: str) -> bool:
        """O(1) uncontended/reentrant grab; False → use :meth:`acquire`.

        Deliberately conservative: any queued waiter, and the shared→
        exclusive upgrade path (which must cut to the head of the queue),
        fall back to the slow path so fairness decisions stay in one place.
        """
        state = self._locks.get(shard_id)
        if state is None:
            state = self._locks[shard_id] = _ShardLockState()
        if state.exclusive_owner is not None:
            return state.exclusive_owner == owner and mode == self.EXCLUSIVE
        if mode == self.SHARED:
            if owner in state.shared_owners:
                return True
            if not state.queue:
                state.shared_owners.add(owner)
                return True
            return False
        if owner in state.shared_owners:
            return False  # upgrade: slow path queues at the head
        if not state.shared_owners and not state.queue:
            state.exclusive_owner = owner
            return True
        return False

    def acquire(self, shard_id, owner, mode: str) -> "Event":
        """Event succeeding once ``owner`` holds ``shard_id`` in ``mode``."""
        if mode not in (self.SHARED, self.EXCLUSIVE):
            raise SimulationError("bad lock mode {!r}".format(mode))
        state = self._state(shard_id)
        event = self.sim.event(name="shardlock:{}:{}".format(self.name, shard_id))
        already_shared = owner in state.shared_owners and mode == self.SHARED
        already_exclusive = state.exclusive_owner == owner
        if already_shared or already_exclusive:
            event.succeed(None)
            return event
        if mode == self.EXCLUSIVE and owner in state.shared_owners:
            # Lock upgrade: give up the shared hold, then contend for
            # exclusive at the head of the queue (avoids self-deadlock when a
            # transaction reads a shard and later writes it).
            state.shared_owners.remove(owner)
            if state.exclusive_owner is None and not state.shared_owners:
                self._grant(state, mode, owner)
                event.succeed(None)
            else:
                state.queue.appendleft((mode, owner, event))
            return event
        if self._grantable(state, mode, owner):
            self._grant(state, mode, owner)
            event.succeed(None)
        else:
            state.queue.append((mode, owner, event))
        return event

    def release(self, shard_id, owner) -> None:
        state = self._locks.get(shard_id)
        if state is None:
            raise SimulationError("shard {!r} has no lock state".format(shard_id))
        if state.exclusive_owner == owner:
            state.exclusive_owner = None
        elif owner in state.shared_owners:
            state.shared_owners.remove(owner)
        else:
            raise SimulationError(
                "shard lock {!r} not held by {!r}".format(shard_id, owner)
            )
        self._drain(state)

    def _drain(self, state):
        while state.queue:
            mode, owner, event = state.queue[0]
            if event.triggered:
                state.queue.popleft()
                continue
            can_grant = (
                state.exclusive_owner is None
                and (mode == self.SHARED or not state.shared_owners)
            )
            if not can_grant:
                return
            state.queue.popleft()
            self._grant(state, mode, owner)
            event.succeed(None)
            if mode == self.EXCLUSIVE:
                return
            # keep draining consecutive shared waiters

    def cancel_wait(self, shard_id, owner) -> None:
        state = self._locks.get(shard_id)
        if state is None:
            return
        for entry in list(state.queue):
            _mode, waiting_owner, event = entry
            if waiting_owner == owner and not event.triggered:
                state.queue.remove(entry)
        self._drain(state)
