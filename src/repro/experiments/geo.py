"""Cross-AZ migration over a contended inter-AZ trunk (the throttled pump).

The cluster spans two availability zones; the inter-AZ trunk is the scarce
resource (see :class:`~repro.config.TierProfiles`). One node's shards
migrate across the trunk while a uniform YCSB workload keeps issuing
cross-AZ statements over the same trunk, so the snapshot copy and the
foreground traffic genuinely compete for bandwidth.

The scenario's knobs map onto the paper's operational concerns:

- ``pump_share`` — the migration traffic class's cap on any contended
  trunk. At 1.0 the copy takes its full fair share and the foreground dips
  hardest; lowering it shrinks the dip monotonically at the price of a
  longer copy (the classic migration-speed/interference trade-off).
- ``backup`` — streams background ``BACKUP_CLASS`` bulk traffic across the
  same trunk for the whole run, the backup-interference variant.

The result's ``extra`` carries ``fg_dip`` (average foreground throughput
lost during the migration window, txns/s), the copy duration and the
network shape, so a pump-share sweep can assert the monotonic trade-off.
"""

from dataclasses import dataclass

from repro.config import TierProfiles
from repro.experiments import registry
from repro.experiments.common import (
    ExperimentResult,
    build_cluster,
    build_ycsb,
    check_no_crashes,
    note_topology,
    run_until_finished,
    summarize,
)
from repro.migration import Migration
from repro.sim.network import BACKUP_CLASS


@dataclass
class CrossAzConfig:
    """A two-AZ cluster with a deliberately narrow inter-AZ trunk.

    The trunk bandwidth is scaled far below the intra-rack number so the
    snapshot copy is network-bound (the paper's testbed moves 100 GB over
    shared datacenter links; here the ratio of copy rate to foreground
    message sizes is what matters, not the absolute figures).
    """

    num_nodes: int = 4  # node-1/2 in AZ 1, node-3/4 in AZ 2
    topology: str = "multi_az"
    pump_share: float = 1.0
    backup: bool = False  # stream BACKUP_CLASS traffic across the trunk
    num_tuples: int = 8_000
    num_shards: int = 32
    tuple_size: int = 512
    ycsb_clients: int = 8
    ycsb_think: float = 0.002
    read_ratio: float = 0.9  # read-mostly: keeps version chains (and their
    # read cost, which also grows with copy duration) from drowning the
    # contention signal the scenario is about
    trunk_bandwidth: float = 5.0e5  # bytes/s on the inter-AZ trunk
    trunk_latency: float = 0.001
    warmup: float = 3.0
    settle: float = 2.0
    max_sim_time: float = 120.0
    seed: int = 0

    def make_tiers(self):
        return TierProfiles(
            region_latency=self.trunk_latency,
            region_bandwidth=self.trunk_bandwidth,
        )


def _backup_streamer(cluster, src, dst, deadline):
    """Generator: paced background bulk traffic tagged ``BACKUP_CLASS``."""
    rate = cluster.config.backup_rate
    chunk = cluster.config.backup_chunk_bytes
    period = chunk / rate
    while cluster.sim.now < deadline:
        yield from cluster.rpc_send(src, dst, chunk, traffic_class=BACKUP_CLASS)
        yield period


@registry.register(
    "cross_az",
    config_cls=CrossAzConfig,
    description="cross-AZ migration over a contended trunk; --pump-share "
    "trades copy speed against the foreground throughput dip",
)
def _cross_az(approach, config=None):
    config = config or CrossAzConfig()
    cluster = build_cluster(
        config.num_nodes,
        approach,
        seed=config.seed,
        topology=config.topology,
        pump_share=config.pump_share,
        tiers=config.make_tiers(),
    )
    workload = build_ycsb(
        cluster,
        num_tuples=config.num_tuples,
        num_shards=config.num_shards,
        tuple_size=config.tuple_size,
        num_clients=config.ycsb_clients,
        think_time=config.ycsb_think,
        read_ratio=config.read_ratio,
    )
    pool = workload.make_clients()
    pool.start()
    if config.backup:
        # Same trunk direction as the copy: AZ 1 -> AZ 2.
        cluster.spawn(
            _backup_streamer(cluster, "node-2", "node-4", config.max_sim_time),
            name="backup-streamer",
        )
    cluster.run(until=config.warmup)

    # Drain node-1 (AZ 1) across the trunk to node-3 (AZ 2) in a single
    # collocated batch, so the snapshot copy is one contiguous network-bound
    # stream with a well-defined phase window to measure the dip against.
    shards = cluster.shards_on_node("node-1", table="ycsb")
    plan = Migration.plan(approach, [(shards, "node-1", "node-3")])
    proc = cluster.spawn(Migration.launch(cluster, plan), name="cross-az")
    run_until_finished(
        cluster, proc, config.max_sim_time,
        what="{} cross-AZ migration".format(approach),
    )
    end = cluster.sim.now + config.settle
    cluster.run(until=end)
    pool.stop()
    cluster.run(until=end + 0.5)
    check_no_crashes(cluster)

    result = ExperimentResult(approach=approach, scenario="cross_az")
    summarize(result, cluster.metrics, label="ycsb", end_time=end)
    note_topology(result, cluster)
    mig_start, mig_end = result.migration_window
    if mig_start is not None and mig_end is not None:
        result.extra["migration_duration"] = mig_end - mig_start
    # The dip is measured over the bulk-copy phase — the window where the
    # migration stream actually occupies the trunk. Approaches without a
    # distinct copy phase (Squall's pulls) fall back to the whole window.
    copy_window = plan.migrations[0].stats.phase_times.get("snapshot_copy")
    if copy_window is None or copy_window[1] is None:
        copy_window = (mig_start, mig_end)
    copy_start, copy_end = copy_window
    metrics = cluster.metrics
    fg_during_copy = metrics.average_throughput(
        label="ycsb", start=copy_start, end=copy_end
    )
    result.extra["copy_duration"] = copy_end - copy_start
    result.extra["fg_during_copy"] = fg_during_copy
    result.extra["fg_dip"] = max(
        0.0, result.avg_throughput_before - fg_during_copy
    )
    result.extra["backup"] = config.backup
    result.extra["plan_stats"] = plan.stats
    result.extra["data_intact"] = (
        len(cluster.dump_table("ycsb")) == config.num_tuples
    )
    return result
