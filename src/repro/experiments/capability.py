"""The qualitative capability matrix of Table 1, derived from measurement.

The paper's Table 1 states, per approach: service downtime (yes/no),
transaction aborts (yes/no), OLTP throughput drop (low/high), batch
throughput drop (low/median/high) and the concurrency-control basis. We run
one hybrid-A consolidation per approach and *derive* the flags from the
measured run instead of asserting them, so the table is evidence, not lore.
"""

from repro.experiments import registry
from repro.experiments.common import APPROACH_ORDER
from repro.experiments.consolidation import ConsolidationConfig

CC_BASIS = {
    "remus": "MVCC",
    "lock_and_abort": "MVCC",
    "wait_and_remaster": "MVCC",
    "squall": "Partition Lock",
    "stop_and_copy": "MVCC",
}

_DOWNTIME_THRESHOLD = 0.5  # seconds of zero OLTP throughput
_OLTP_DROP_HIGH = 0.35  # fractional throughput loss considered "High"
_BATCH_DROP_HIGH = 0.60
_BATCH_DROP_MEDIAN = 0.25


def classify(result):
    """Derive the Table 1 row for one measured hybrid-A run."""
    oltp_before = max(result.avg_throughput_before, 1e-9)
    oltp_drop = max(0.0, 1.0 - result.avg_throughput_during / oltp_before)
    ingest_before = max(result.extra.get("ingest_before", 0.0), 1e-9)
    ingest_during = result.extra.get("ingest_during", 0.0)
    batch_drop = max(0.0, 1.0 - ingest_during / ingest_before)
    migration_aborts = result.aborts.get("migration", 0)
    row = {
        "downtime": "Yes" if result.downtime_longest >= _DOWNTIME_THRESHOLD else "No",
        "txn_abort": "Yes" if migration_aborts > 0 else "No",
        "oltp_drop": "High" if oltp_drop >= _OLTP_DROP_HIGH else "Low",
        "batch_drop": (
            "High"
            if batch_drop >= _BATCH_DROP_HIGH
            else ("Median" if batch_drop >= _BATCH_DROP_MEDIAN else "Low")
        ),
        "cc": CC_BASIS[result.approach],
        "measured": {
            "downtime_longest": result.downtime_longest,
            "oltp_drop": oltp_drop,
            "batch_drop": batch_drop,
            "migration_aborts": migration_aborts,
        },
    }
    return row


def capability_matrix(approaches=APPROACH_ORDER, config=None):
    """Run hybrid-A consolidation per approach and classify each."""
    matrix = {}
    for approach in approaches:
        result = registry.run(
            "hybrid_a", approach=approach, config=config or ConsolidationConfig()
        )
        matrix[approach] = classify(result)
        matrix[approach]["result"] = result
    return matrix
