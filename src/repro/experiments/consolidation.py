"""Cluster consolidation under hybrid workloads A and B (§4.4).

The scenario removes one node from the cluster: every shard on the source
node migrates to the other nodes evenly, in consecutive multi-shard batches,
while the hybrid workload runs. Reproduces:

- **Table 2** — batch-insert abort ratio and ingest throughput (hybrid A);
- **Figure 6** — YCSB throughput timeline during consolidation (hybrid A);
- **Figure 7** — YCSB throughput timeline during consolidation (hybrid B);
- rows of **Table 3** — latency increase for hybrid A and B.
"""

from dataclasses import dataclass

from repro.experiments import registry
from repro.experiments.common import (
    ExperimentResult,
    build_cluster,
    build_ycsb,
    check_no_crashes,
    note_topology,
    run_until_finished,
    summarize,
)
from repro.migration import Migration
from repro.migration.base import consolidation_batches
from repro.workloads.hybrid import AnalyticalClient, BatchIngestClient


@dataclass
class ConsolidationConfig:
    """Simulator-scale version of the §4.4 setup (paper values in comments).

    The data volume is scaled down by ~10^4 versus the paper's 100 GB, so
    the per-tuple snapshot-copy cost is scaled *up* to keep the ratio of
    migration duration to workload timescales in the paper's regime (tens of
    seconds of consecutive migrations against second-scale batch
    transactions). The batch ingest is paced like a streaming source, as in
    the paper's IoT motivation (§2.3.1).
    """

    num_nodes: int = 6  # six-node cluster, remove one
    num_tuples: int = 12_000  # 100 M tuples
    num_shards: int = 60  # 360 shards (10 on the drained node)
    tuple_size: int = 1024
    ycsb_clients: int = 12  # 400 clients
    ycsb_think: float = 0.004
    group_size: int = 2  # shards per migration batch (hybrid A: 2, B: 4)
    batch_tuples: int = 10_000  # 1 M tuples per batch insert
    num_batches: int = 6  # 10 batch transactions
    batch_rate: float = 2000.0  # paced ingest (tuples/s)
    snapshot_cost: float = 1.5e-3  # scaled-up per-tuple copy cost (see above)
    warmup: float = 12.0  # 30 s batch run before consolidation
    settle: float = 2.0  # post-migration observation window
    max_sim_time: float = 150.0
    analytical_row_cost: float = 8e-4  # hybrid B: per-row aggregation work
    squall_chunk_bytes: int = 32768  # 8 MB scaled with the data volume
    topology: str = None  # network preset (single|multi_az|geo); None = flat
    pump_share: float = None  # migration's contended-trunk share cap
    seed: int = 0

    def make_costs(self):
        from repro.config import CostModel

        return CostModel(snapshot_scan_per_tuple=self.snapshot_cost)


@registry.register(
    "hybrid_a",
    config_cls=ConsolidationConfig,
    description="cluster consolidation under hybrid workload A: "
    "uniform YCSB + batch ingestion (Table 2, Figure 6)",
)
def _hybrid_a(approach, config=None):
    """Hybrid workload A: uniform YCSB + batch ingestion (Table 2, Fig. 6)."""
    config = config or ConsolidationConfig()
    cluster = build_cluster(
        config.num_nodes, approach, seed=config.seed, costs=config.make_costs(),
        topology=config.topology, pump_share=config.pump_share,
    )
    workload = build_ycsb(
        cluster,
        num_tuples=config.num_tuples,
        num_shards=config.num_shards,
        tuple_size=config.tuple_size,
        num_clients=config.ycsb_clients,
        think_time=config.ycsb_think,
    )
    pool = workload.make_clients()
    pool.start()
    batch = BatchIngestClient(
        cluster,
        "node-2",  # the coordinator node for ingestion; node-1 is drained
        start_key=config.num_tuples,
        batch_tuples=config.batch_tuples,
        num_batches=config.num_batches,
        tuples_per_second=config.batch_rate,
    )
    batch.start()
    cluster.run(until=config.warmup)

    batches = consolidation_batches(
        cluster, "node-1", table="ycsb", group_size=config.group_size
    )
    plan_kwargs = {}
    if approach == "squall":
        plan_kwargs["chunk_bytes"] = config.squall_chunk_bytes
    plan = Migration.plan(approach, batches, **plan_kwargs)
    migration_proc = cluster.spawn(Migration.launch(cluster, plan), name="consolidation")
    run_until_finished(
        cluster, migration_proc, config.max_sim_time,
        what="{} consolidation".format(approach),
    )
    # Run the batch workload to completion so Table 2's abort ratio counts
    # every attempt (the paper's consolidation spans most of the ingestion).
    run_until_finished(
        cluster, batch.process, config.max_sim_time,
        what="hybrid-A batch ingestion",
    )
    end = cluster.sim.now + config.settle
    cluster.run(until=end)
    pool.stop()
    cluster.run(until=end + 0.5)
    check_no_crashes(cluster)

    result = ExperimentResult(approach=approach, scenario="hybrid_a")
    summarize(result, cluster.metrics, label="ycsb", end_time=end, weighted_label="batch")
    mig_start, mig_end = result.migration_window
    metrics = cluster.metrics
    # As in Table 2, the ratio covers the batch workload's attempts for the
    # run (the paper's consolidation spans nearly the whole ingestion).
    result.abort_ratio = metrics.abort_ratio(label="batch")
    result.extra["batch_aborts"] = metrics.abort_count(label="batch")
    result.extra["batch_committed"] = batch.committed
    result.extra["batch_finished_at"] = batch.finished_at
    result.extra["ingest_before"] = metrics.average_throughput(
        label="batch", start=0.0, end=mig_start, weighted=True
    )
    batch_active_end = min(x for x in (batch.finished_at, mig_end) if x is not None)
    result.extra["ingest_during"] = metrics.average_throughput(
        label="batch", start=mig_start, end=max(batch_active_end, mig_start + 1e-9),
        weighted=True,
    )
    result.extra["plan_stats"] = plan.stats
    result.extra["data_intact"] = (
        len(cluster.dump_table("ycsb"))
        == config.num_tuples + batch.tuples_ingested
    )
    if config.topology is not None:
        note_topology(result, cluster)
    return result


@registry.register(
    "hybrid_b",
    config_cls=ConsolidationConfig,
    config_defaults=(("group_size", 4),),
    description="cluster consolidation under hybrid workload B: "
    "uniform YCSB + analytical duplicate check (Figure 7)",
)
def _hybrid_b(approach, config=None):
    """Hybrid workload B: uniform YCSB + analytical duplicate check (Fig. 7)."""
    config = config or ConsolidationConfig(group_size=4)
    cluster = build_cluster(
        config.num_nodes, approach, seed=config.seed, costs=config.make_costs(),
        topology=config.topology, pump_share=config.pump_share,
    )
    workload = build_ycsb(
        cluster,
        num_tuples=config.num_tuples,
        num_shards=config.num_shards,
        tuple_size=config.tuple_size,
        num_clients=config.ycsb_clients,
        think_time=config.ycsb_think,
    )
    pool = workload.make_clients()
    pool.start()
    # The analytical query starts just before consolidation so it overlaps
    # the migrations, as in Figure 7 (red dashed lines inside the window).
    analytical = AnalyticalClient(
        cluster,
        "node-2",
        start_delay=max(0.0, config.warmup - 1.0),
        per_row_cost=config.analytical_row_cost,
    )
    analytical.start()
    cluster.run(until=config.warmup)

    batches = consolidation_batches(
        cluster, "node-1", table="ycsb", group_size=config.group_size
    )
    plan_kwargs = {}
    if approach == "squall":
        plan_kwargs["chunk_bytes"] = config.squall_chunk_bytes
    plan = Migration.plan(approach, batches, **plan_kwargs)
    migration_proc = cluster.spawn(Migration.launch(cluster, plan), name="consolidation")
    run_until_finished(
        cluster, migration_proc, config.max_sim_time,
        what="{} consolidation".format(approach),
    )
    # The consistency check needs the analytical transaction to complete (it
    # may outlive a fast consolidation).
    run_until_finished(
        cluster, analytical.process, config.max_sim_time,
        what="hybrid-B analytical transaction",
    )
    end = cluster.sim.now + config.settle
    cluster.run(until=end)
    pool.stop()
    cluster.run(until=end + 0.5)
    check_no_crashes(cluster)

    result = ExperimentResult(approach=approach, scenario="hybrid_b")
    summarize(result, cluster.metrics, label="ycsb", end_time=end)
    result.workload_window = (
        cluster.metrics.first_mark("analytical_start"),
        cluster.metrics.last_mark("analytical_end"),
    )
    result.extra["duplicates"] = analytical.duplicates
    result.extra["rows_seen"] = analytical.rows_seen
    result.extra["analytical_committed"] = analytical.committed
    result.extra["analytical_aborted"] = analytical.aborted
    result.extra["data_intact"] = len(cluster.dump_table("ycsb")) == config.num_tuples
    if config.topology is not None:
        note_topology(result, cluster)
    return result
