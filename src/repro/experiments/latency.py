"""Migration-induced latency increase (§4.7, Table 3).

The table compares the average latency increase of Remus (synchronized
source transactions waiting for validation) against lock-and-abort (blocked
and retried writers) across the four scenarios, next to the baseline
transaction latency. We measure the increase as (average committed latency
during the migration window) minus (average before), per approach.
"""

from repro.experiments.consolidation import run_hybrid_a, run_hybrid_b
from repro.experiments.load_balancing import run_load_balancing
from repro.experiments.scale_out import run_scale_out

SCENARIOS = ("hybrid_a", "hybrid_b", "load_balancing", "scale_out")


def run_scenario(scenario, approach, config=None):
    if scenario == "hybrid_a":
        return run_hybrid_a(approach, config)
    if scenario == "hybrid_b":
        return run_hybrid_b(approach, config)
    if scenario == "load_balancing":
        return run_load_balancing(approach, config)
    if scenario == "scale_out":
        return run_scale_out(approach, config)
    raise ValueError("unknown scenario {!r}".format(scenario))


def latency_table(scenarios=SCENARIOS, approaches=("remus", "lock_and_abort"), configs=None):
    """Rows of Table 3: per scenario, the latency increase per approach plus
    the baseline transaction latency.

    Returns {scenario: {"baseline": s, approach: increase_in_seconds}}.
    """
    configs = configs or {}
    table = {}
    for scenario in scenarios:
        row = {}
        for approach in approaches:
            result = run_scenario(scenario, approach, configs.get(scenario))
            row[approach] = result.latency_increase
            row.setdefault("baseline", result.avg_latency_before)
            row.setdefault("results", {})[approach] = result
        table[scenario] = row
    return table
