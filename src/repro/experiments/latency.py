"""Migration-induced latency increase (§4.7, Table 3).

The table compares the average latency increase of Remus (synchronized
source transactions waiting for validation) against lock-and-abort (blocked
and retried writers) across the four scenarios, next to the baseline
transaction latency. We measure the increase as (average committed latency
during the migration window) minus (average before), per approach.
"""

from repro.experiments import registry

SCENARIOS = ("hybrid_a", "hybrid_b", "load_balancing", "scale_out")


def run_scenario(scenario, approach, config=None):
    """Resolve and run one scenario via the experiment registry."""
    return registry.run(scenario, approach=approach, config=config)


def latency_table(scenarios=SCENARIOS, approaches=("remus", "lock_and_abort"), configs=None):
    """Rows of Table 3: per scenario, the latency increase per approach plus
    the baseline transaction latency.

    Returns {scenario: {"baseline": s, approach: increase_in_seconds}}.
    """
    configs = configs or {}
    table = {}
    for scenario in scenarios:
        row = {}
        for approach in approaches:
            result = run_scenario(scenario, approach, configs.get(scenario))
            row[approach] = result.latency_increase
            row.setdefault("baseline", result.avg_latency_before)
            row.setdefault("results", {})[approach] = result
        table[scenario] = row
    return table
