"""Chaos soak: consolidation under injected faults with live invariants.

The scenario drains one node's shards (Remus consolidation) while a
contended counter workload runs, a :class:`~repro.faults.nemesis.Nemesis`
injects a fault plan (node crashes, partitions, loss, latency spikes, WAL
stalls, migration crashes), the :class:`MigrationSupervisor` recovers and
retries, and an :class:`~repro.faults.invariants.InvariantChecker` watches
safety throughout. Everything is driven by seeded RNG streams, so a run is
fully determined by ``(config, seed)`` — the metrics mark stream doubles as
a replayable event timeline.
"""

from dataclasses import dataclass, field

from repro.experiments.common import (
    build_cluster,
    check_no_crashes,
    run_until_finished,
)
from repro.faults import FaultPlan, InvariantChecker, Nemesis
from repro.migration import MigrationPlan, MigrationSupervisor, RemusMigration
from repro.migration.base import consolidation_batches
from repro.workloads.client import run_transaction


@dataclass
class ChaosConfig:
    """Scaled-down consolidation suitable for multi-seed soak runs.

    The snapshot-copy cost is scaled up (as in the consolidation experiment)
    and batches are paced so the plan spans several simulated seconds —
    enough for the fault window to genuinely overlap the migrations."""

    num_nodes: int = 4
    num_keys: int = 240
    num_shards: int = 12
    num_clients: int = 8
    think_time: float = 0.002
    warmup: float = 0.25  # workload-only time before the plan starts
    snapshot_cost: float = 1.5e-3  # per-tuple copy cost (stretches batches)
    batch_pause: float = 0.35  # pause between plan batches
    fault_horizon: float = 3.0  # window the random faults are drawn from
    extra_faults: int = 2  # draws beyond the guaranteed crash/partition mix
    fault_spec: str = None  # explicit plan spec; None => random from seed
    group_size: int = 2
    max_sim_time: float = 90.0
    settle: float = 2.5  # post-plan drain (heals, stragglers, final ticks)
    seed: int = 0

    def make_costs(self):
        from repro.config import CostModel

        return CostModel(snapshot_scan_per_tuple=self.snapshot_cost)


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    seed: int
    committed: int = 0
    violations: list = field(default_factory=list)
    fault_plan: str = ""
    nemesis_timeline: list = field(default_factory=list)
    supervisor_events: list = field(default_factory=list)
    marks: list = field(default_factory=list)  # (time, name): event timeline
    plan_stats: object = None
    finished_at: float = 0.0

    @property
    def degraded(self):
        return self.plan_stats is not None and self.plan_stats.batches_skipped > 0

    def timeline_signature(self):
        """Hashable replay signature: the full metrics mark stream plus the
        commit count. Two runs of the same seed must produce equal values."""
        return (tuple(self.marks), self.committed)


def _increment_body(key):
    def body(session, txn):
        row = yield from session.read(txn, "counters", key)
        yield from session.update(txn, "counters", key, {"n": row["n"] + 1})

    return body


def run_chaos(config=None):
    """Run one chaos soak iteration; returns a :class:`ChaosResult`.

    Raises if any invariant is violated, a background process crashes, or
    the supervised plan wedges (it must always complete or degrade)."""
    config = config or ChaosConfig()
    cluster = build_cluster(
        config.num_nodes, "remus", seed=config.seed, costs=config.make_costs()
    )
    cluster.create_table("counters", num_shards=config.num_shards, tuple_size=64)
    cluster.bulk_load("counters", [(k, {"n": 0}) for k in range(config.num_keys)])
    node_ids = cluster.node_ids()

    # Contended read-modify-write increments: the SI no-lost-updates probe.
    state = {"running": True, "committed": 0}

    def client(client_id):
        rng = cluster.sim.rng("chaos-client-{}".format(client_id))
        session = cluster.session(node_ids[client_id % len(node_ids)])

        def loop():
            while state["running"]:
                key = rng.randint(0, config.num_keys - 1)
                ok, _err = yield from run_transaction(
                    session, _increment_body(key), label="inc"
                )
                if ok:
                    state["committed"] += 1
                yield config.think_time
        return loop()

    for i in range(config.num_clients):
        cluster.spawn(client(i), name="chaos-client-{}".format(i))

    # The supervised consolidation plan: drain node-1.
    batches = consolidation_batches(
        cluster, "node-1", table="counters", group_size=config.group_size
    )
    plan = MigrationPlan(RemusMigration, batches, pause=config.batch_pause)
    supervisor = MigrationSupervisor(cluster, plan)

    def supervised():
        yield config.warmup
        result = yield from supervisor.run()
        return result

    plan_proc = cluster.spawn(supervised(), name="chaos-consolidation")

    # Fault injection + continuous safety checking.
    if config.fault_spec:
        fault_plan = FaultPlan.parse(config.fault_spec)
    else:
        fault_plan = FaultPlan.random(
            cluster.sim.rng("fault-plan"),
            node_ids,
            config.fault_horizon,
            extra_faults=config.extra_faults,
        )
    nemesis = Nemesis(cluster, fault_plan, supervisor=supervisor)
    cluster.spawn(nemesis.run(), name="nemesis")
    checker = InvariantChecker(cluster, supervisor=supervisor)
    cluster.spawn(checker.run(), name="invariant-checker")

    # The supervised plan must never hang: it completes or degrades.
    run_until_finished(
        cluster, plan_proc, config.max_sim_time, what="supervised chaos plan"
    )
    plan_proc.result()

    # Drain: stop clients, let heals/stragglers settle, final safety ticks.
    state["running"] = False
    end = cluster.sim.now + config.settle
    cluster.run(until=end)
    checker.check_once()
    checker.final_check("counters", state["committed"])
    check_no_crashes(cluster)

    result = ChaosResult(seed=config.seed)
    result.committed = state["committed"]
    result.violations = list(checker.violations)
    result.fault_plan = fault_plan.describe()
    result.nemesis_timeline = list(nemesis.timeline)
    result.supervisor_events = list(supervisor.events)
    result.marks = list(cluster.metrics.marks)
    result.plan_stats = plan.stats
    result.finished_at = cluster.sim.now
    return result
