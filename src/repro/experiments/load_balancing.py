"""Load balancing of hotspot shards (§4.5, Figure 8).

A skewed YCSB workload concentrates most accesses on the shards of one node.
The balancing plan migrates most of those hot shards to the other nodes
evenly, four shards together each time. Expected shapes: throughput rises
gradually for Remus / lock-and-abort / wait-and-remaster (lock-and-abort
recording thousands of migration aborts, the other two none), while Squall
drops and fluctuates because of pull blocking and shard-lock contention on
the hot shards.
"""

from dataclasses import dataclass

from repro.experiments import registry
from repro.experiments.common import (
    ExperimentResult,
    build_cluster,
    build_ycsb,
    check_no_crashes,
    note_topology,
    run_until_finished,
    summarize,
)
from repro.migration import Migration


@dataclass
class LoadBalancingConfig:
    """Simulator-scale version of §4.5 (paper values in comments)."""

    num_nodes: int = 6
    num_tuples: int = 12_000
    num_shards: int = 60  # 360 shards; 50 hot on one node, 40 migrated
    tuple_size: int = 1024
    ycsb_clients: int = 10  # skewed clients hammering the hot node
    ycsb_think: float = 0.0  # closed loop: the hot node is the bottleneck
    hotspot_fraction: float = 0.9
    migrate_fraction: float = 0.8  # 40 of 50 hot shards
    group_size: int = 4  # four shards migrated together each time
    cpu_per_node: int = 2  # scaled down with the data so the hot node
    op_cost: float = 2e-4  # saturates and balancing visibly lifts throughput
    snapshot_cost: float = 4e-4
    squall_chunk_bytes: int = 16384  # 8 MB scaled with the data volume
    topology: str = None  # network preset (single|multi_az|geo); None = flat
    pump_share: float = None  # migration's contended-trunk share cap
    warmup: float = 2.0
    settle: float = 3.0
    max_sim_time: float = 120.0
    seed: int = 0

    def make_costs(self):
        from repro.config import CostModel

        return CostModel(
            snapshot_scan_per_tuple=self.snapshot_cost,
            cpu_read=self.op_cost,
            cpu_write=self.op_cost * 1.5,
        )


def balancing_batches(cluster, hot_node, hot_shards, migrate_fraction, group_size):
    """Spread ``migrate_fraction`` of the hot shards over the other nodes."""
    to_move = hot_shards[: int(len(hot_shards) * migrate_fraction)]
    targets = [n for n in cluster.node_ids() if n != hot_node]
    batches = []
    for i in range(0, len(to_move), group_size):
        group = to_move[i : i + group_size]
        dest = targets[(i // group_size) % len(targets)]
        batches.append((group, hot_node, dest))
    return batches


@registry.register(
    "load_balancing",
    config_cls=LoadBalancingConfig,
    description="hotspot-shard load balancing under skewed YCSB (Figure 8)",
)
def _load_balancing(approach, config=None):
    config = config or LoadBalancingConfig()
    cluster = build_cluster(
        config.num_nodes,
        approach,
        seed=config.seed,
        costs=config.make_costs(),
        cpu_per_node=config.cpu_per_node,
        topology=config.topology,
        pump_share=config.pump_share,
    )
    workload = build_ycsb(
        cluster,
        num_tuples=config.num_tuples,
        num_shards=config.num_shards,
        tuple_size=config.tuple_size,
        num_clients=config.ycsb_clients,
        think_time=config.ycsb_think,
        distribution="hotspot",
        hotspot_fraction=config.hotspot_fraction,
    )
    hot_node = "node-1"
    workload.set_hot_node(hot_node)
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=config.warmup)

    batches = balancing_batches(
        cluster, hot_node, workload.hot_shards, config.migrate_fraction, config.group_size
    )
    plan_kwargs = {}
    if approach == "squall":
        plan_kwargs["chunk_bytes"] = config.squall_chunk_bytes
    plan = Migration.plan(approach, batches, **plan_kwargs)
    proc = cluster.spawn(Migration.launch(cluster, plan), name="balancing")
    run_until_finished(
        cluster, proc, config.max_sim_time,
        what="{} load balancing".format(approach),
    )
    end = cluster.sim.now + config.settle
    cluster.run(until=end)
    pool.stop()
    cluster.run(until=end + 0.5)
    check_no_crashes(cluster)

    result = ExperimentResult(approach=approach, scenario="load_balancing")
    summarize(result, cluster.metrics, label="ycsb", end_time=end)
    mig_start, mig_end = result.migration_window
    metrics = cluster.metrics
    # Throughput gain: steady-state after balancing vs before.
    result.extra["tput_before"] = metrics.average_throughput(
        label="ycsb", start=0.5, end=mig_start
    )
    result.extra["tput_after"] = metrics.average_throughput(
        label="ycsb", start=mig_end + 0.5, end=end
    )
    result.extra["migration_aborts"] = metrics.abort_count(kind="migration")
    result.extra["ww_aborts"] = metrics.abort_count(kind="ww_conflict")
    result.extra["data_intact"] = len(cluster.dump_table("ycsb")) == config.num_tuples
    result.extra["plan_stats"] = plan.stats
    if config.topology is not None:
        note_topology(result, cluster)
    return result
