"""The experiment registry: declarative scenario specs instead of if-chains.

Every paper scenario registers itself once, with its runner, its config
dataclass and the approaches it supports::

    @register(
        "hybrid_a",
        config_cls=ConsolidationConfig,
        description="cluster consolidation under hybrid workload A",
    )
    def _hybrid_a(approach, config):
        ...

Callers then resolve scenarios uniformly — the CLI, the latency table, the
capability matrix and the seed-sweep harness all go through here::

    from repro.experiments import registry

    result = registry.run("hybrid_a", approach="remus", seed=3)
    spec = registry.get("hybrid_a")
    config = registry.make_config("hybrid_a", seed=3, group_size=4)

``run`` accepts either a scenario name or an :class:`ExperimentSpec`, and
either a ready config object or keyword overrides applied on top of the
spec's defaults. Config construction is uniform because every scenario
config is a dataclass with a ``seed`` field.
"""

from dataclasses import dataclass, fields
from importlib import import_module
from typing import Callable

#: Modules whose import triggers their ``@register`` calls. Kept explicit so
#: ``names()`` works without the caller having to know the module layout.
_EXPERIMENT_MODULES = (
    "repro.experiments.consolidation",
    "repro.experiments.load_balancing",
    "repro.experiments.scale_out",
    "repro.experiments.high_contention",
    "repro.experiments.geo",
)

_REGISTRY: dict[str, "ExperimentSpec"] = {}
_loaded = False


@dataclass(frozen=True)
class ExperimentSpec:
    """One scenario: how to build its config and run it."""

    name: str
    runner: Callable  # (approach, config) -> ExperimentResult
    config_cls: type
    approaches: tuple  # approach names this scenario supports
    default_approach: str = "remus"
    config_defaults: tuple = ()  # ((field, value), ...) applied by make_config
    description: str = ""

    def make_config(self, seed=0, **overrides):
        """Build the scenario config: spec defaults, then overrides."""
        kwargs = dict(self.config_defaults)
        kwargs.update(overrides)
        kwargs["seed"] = seed
        known = {f.name for f in fields(self.config_cls)}
        unknown = set(kwargs) - known
        if unknown:
            raise ValueError(
                "unknown {} fields for scenario {!r}: {}".format(
                    self.config_cls.__name__, self.name, sorted(unknown)
                )
            )
        return self.config_cls(**kwargs)

    def run(self, approach=None, config=None, seed=0, **overrides):
        """Run the scenario; returns its ``ExperimentResult``."""
        approach = approach or self.default_approach
        if approach not in self.approaches:
            raise ValueError(
                "scenario {!r} does not support approach {!r}; pick one of {}".format(
                    self.name, approach, list(self.approaches)
                )
            )
        if config is None:
            config = self.make_config(seed=seed, **overrides)
        elif overrides:
            raise ValueError("pass either a config object or overrides, not both")
        return self.runner(approach, config)


# The paper's full approach line-up; scale-out excludes Squall (§4.6: the
# port does not support multi-key range partitioning).
ALL_APPROACHES = ("remus", "lock_and_abort", "wait_and_remaster", "squall")
NO_SQUALL = ("remus", "lock_and_abort", "wait_and_remaster")


def register(
    name,
    *,
    config_cls,
    approaches=ALL_APPROACHES,
    default_approach="remus",
    config_defaults=(),
    description="",
):
    """Class-decorator-style registration of a scenario runner."""

    def decorate(runner):
        if name in _REGISTRY:
            raise ValueError("scenario {!r} registered twice".format(name))
        _REGISTRY[name] = ExperimentSpec(
            name=name,
            runner=runner,
            config_cls=config_cls,
            approaches=tuple(approaches),
            default_approach=default_approach,
            config_defaults=tuple(config_defaults),
            description=description,
        )
        return runner

    return decorate


def ensure_loaded():
    """Import every experiment module so registrations have run."""
    global _loaded
    if not _loaded:
        _loaded = True
        for module in _EXPERIMENT_MODULES:
            import_module(module)


def names():
    """Registered scenario names, in paper order.

    Insertion order in ``_REGISTRY`` depends on which module happened to be
    imported first (a test importing ``high_contention`` directly registers
    it before ``ensure_loaded`` walks the canonical list), so presentation
    order is pinned to ``_EXPERIMENT_MODULES`` instead. The sort is stable:
    scenarios from one module keep their top-to-bottom registration order.
    """
    ensure_loaded()
    rank = {module: index for index, module in enumerate(_EXPERIMENT_MODULES)}
    return tuple(
        sorted(
            _REGISTRY,
            key=lambda name: rank.get(_REGISTRY[name].runner.__module__, len(rank)),
        )
    )


def get(name):
    """Resolve a scenario name to its :class:`ExperimentSpec`."""
    ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown scenario {!r}; pick one of {}".format(name, list(_REGISTRY))
        ) from None


def make_config(name, seed=0, **overrides):
    return get(name).make_config(seed=seed, **overrides)


def run(spec, approach=None, config=None, seed=0, **overrides):
    """Run a scenario by name or :class:`ExperimentSpec`."""
    if not isinstance(spec, ExperimentSpec):
        spec = get(spec)
    return spec.run(approach=approach, config=config, seed=seed, **overrides)
