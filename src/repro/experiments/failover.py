"""Failover soak: migrate a replicated shard while its replicas crash.

The scenario family behind the replicated-shard robustness claims:

* every ``counters`` shard runs as a leader + N followers replication
  group with quorum-acknowledged commit (:mod:`repro.cluster.replication`);
* a supervised Remus consolidation drains one node while a contended
  counter workload runs;
* the nemesis crashes the migrating shard's **group leader** exactly when
  the migration enters a chosen phase (snapshot copy or async
  propagation), forcing a lease-based election, an epoch bump, stale-epoch
  2PC rejections and a supervisor-driven migration recovery — all at once;
* the :class:`~repro.faults.invariants.InvariantChecker` watches
  single-owner, no-dual-leader and replica-divergence invariants
  throughout, and the run ends with the no-lost-updates counter audit plus
  a full leader-vs-follower state comparison.

Runs are fully determined by ``(config, seed)``; the metrics mark stream
doubles as a replayable timeline, exactly as in the chaos soak.

:func:`run_remaster_comparison` is the STAR-style asymmetric-availability
probe: migrating a replicated shard onto a node that already holds an
in-sync follower (wait-and-remaster) must move strictly less data than a
full Remus copy onto a fresh node.
"""

from dataclasses import dataclass, field

from repro.experiments.common import (
    build_cluster,
    check_no_crashes,
    run_until_finished,
)
from repro.faults import FaultPlan, InvariantChecker, Nemesis
from repro.faults.plan import Fault
from repro.migration import (
    MigrationPlan,
    MigrationSupervisor,
    RemusMigration,
    WaitAndRemasterMigration,
)
from repro.profiling import COUNTERS
from repro.workloads.client import run_transaction

TABLE = "counters"


@dataclass
class FailoverConfig:
    """Scaled-down replicated consolidation for multi-seed soaks."""

    num_nodes: int = 4
    num_keys: int = 120
    num_shards: int = 4
    n_followers: int = 2
    num_clients: int = 6
    think_time: float = 0.002
    warmup: float = 0.25  # workload-only time before the plan starts
    snapshot_cost: float = 1.5e-3  # stretches the copy so crashes land inside
    batch_pause: float = 0.3
    crash_phase: str = "snapshot_copy"  # when the leader crash fires
    crash_at: float = 0.3  # earliest time the phase wait is armed
    crash_duration: float = 1.2  # leader heals (as a follower) after this
    follow_crash: bool = False  # also crash a follower later in the run
    fault_spec: str = None  # explicit plan spec; None => phase-targeted crash
    max_sim_time: float = 90.0
    settle: float = 3.0  # post-plan drain (election, catch-up, final ticks)
    seed: int = 0

    def make_costs(self):
        from repro.config import CostModel

        return CostModel(snapshot_scan_per_tuple=self.snapshot_cost)


@dataclass
class FailoverResult:
    """Outcome of one failover soak iteration."""

    seed: int
    crash_phase: str = ""
    committed: int = 0
    violations: list = field(default_factory=list)
    fault_plan: str = ""
    nemesis_timeline: list = field(default_factory=list)
    supervisor_events: list = field(default_factory=list)
    marks: list = field(default_factory=list)  # (time, name): event timeline
    plan_stats: object = None
    epochs: dict = field(default_factory=dict)  # shard -> final group epoch
    failover_elections: int = 0
    stale_epoch_rejects: int = 0
    repl_ship_batches: int = 0
    finished_at: float = 0.0

    def timeline_signature(self):
        """Hashable replay signature: the full metrics mark stream plus the
        commit count. Two runs of the same seed must produce equal values."""
        return (tuple(self.marks), self.committed)


def _increment_body(key):
    def body(session, txn):
        row = yield from session.read(txn, TABLE, key)
        yield from session.update(txn, TABLE, key, {"n": row["n"] + 1})

    return body


def _build_replicated(config):
    """Cluster + replicated counters table, loaded and group-started."""
    cluster = build_cluster(
        config.num_nodes, "remus", seed=config.seed, costs=config.make_costs()
    )
    cluster.create_table(TABLE, num_shards=config.num_shards, tuple_size=64)
    cluster.bulk_load(TABLE, [(k, {"n": 0}) for k in range(config.num_keys)])
    cluster.enable_replication(TABLE, n_followers=config.n_followers)
    return cluster


def run_failover(config=None):
    """Run one failover soak iteration; returns a :class:`FailoverResult`.

    Raises if any invariant is violated (including replica divergence and
    dual leadership), a background process crashes, the counter audit finds
    a lost update, or the supervised plan wedges."""
    config = config or FailoverConfig()
    COUNTERS.reset()
    cluster = _build_replicated(config)
    node_ids = cluster.node_ids()

    state = {"running": True, "committed": 0}

    def client(client_id):
        rng = cluster.sim.rng("failover-client-{}".format(client_id))
        session = cluster.session(node_ids[client_id % len(node_ids)])

        def loop():
            while state["running"]:
                key = rng.randint(0, config.num_keys - 1)
                ok, _err = yield from run_transaction(
                    session, _increment_body(key), label="inc"
                )
                if ok:
                    state["committed"] += 1
                yield config.think_time

        return loop()

    for i in range(config.num_clients):
        cluster.spawn(client(i), name="failover-client-{}".format(i))

    # Supervised Remus migration of one replicated shard from node-1 to the
    # node *outside* its replication group — the full copy + propagation
    # protocol (a member destination would take the remaster fast path and
    # never exercise the crash-mid-copy recovery this soak is about).
    target_shard = cluster.shards_on_node("node-1", table=TABLE)[0]
    member_nodes = {
        replica.node_id
        for replica in cluster.replication.group_for(target_shard).replicas
    }
    dest = min(n for n in node_ids if n not in member_nodes)
    batches = [([target_shard], "node-1", dest)]
    plan = MigrationPlan(RemusMigration, batches, pause=config.batch_pause)
    supervisor = MigrationSupervisor(cluster, plan)

    def supervised():
        yield config.warmup
        result = yield from supervisor.run()
        return result

    plan_proc = cluster.spawn(supervised(), name="failover-consolidation")

    # Fault plan: crash the migrating shard's group leader once the
    # migration reaches the configured phase (plus, optionally, a later
    # follower crash on the same shard).
    if config.fault_spec:
        fault_plan = FaultPlan.parse(config.fault_spec)
    else:
        faults = [
            Fault(
                "crash_leader",
                at=config.crash_at,
                shard=(target_shard.table, target_shard.index),
                phase=config.crash_phase,
                duration=config.crash_duration,
            )
        ]
        if config.follow_crash:
            faults.append(
                Fault(
                    "crash_follower",
                    at=config.crash_at + 1.5,
                    shard=(target_shard.table, target_shard.index),
                    duration=config.crash_duration,
                )
            )
        fault_plan = FaultPlan(faults)
    nemesis = Nemesis(cluster, fault_plan, supervisor=supervisor)
    cluster.spawn(nemesis.run(), name="nemesis")
    checker = InvariantChecker(cluster, supervisor=supervisor)
    cluster.spawn(checker.run(), name="invariant-checker")

    run_until_finished(
        cluster, plan_proc, config.max_sim_time, what="supervised failover plan"
    )
    plan_proc.result()

    # Drain: stop clients, let the election/catch-up settle, final audits.
    state["running"] = False
    cluster.run(until=cluster.sim.now + config.settle)
    checker.check_once()
    checker.final_check(TABLE, state["committed"])
    checker.final_replication_check()
    check_no_crashes(cluster)

    result = FailoverResult(seed=config.seed, crash_phase=config.crash_phase)
    result.committed = state["committed"]
    result.violations = list(checker.violations)
    result.fault_plan = fault_plan.describe()
    result.nemesis_timeline = list(nemesis.timeline)
    result.supervisor_events = list(supervisor.events)
    result.marks = list(cluster.metrics.marks)
    result.plan_stats = plan.stats
    result.epochs = {
        str(group.shard_id): group.epoch
        for group in cluster.replication.sorted_groups()
    }
    result.failover_elections = COUNTERS.failover_elections
    result.stale_epoch_rejects = COUNTERS.stale_epoch_rejects
    result.repl_ship_batches = COUNTERS.repl_ship_batches
    result.finished_at = cluster.sim.now
    return result


def run_remaster_comparison(config=None):
    """STAR-style probe: bytes moved by a full Remus copy onto a fresh node
    vs wait-and-remaster onto a node already holding an in-sync follower.

    Returns ``{"remus_bytes": ..., "remaster_bytes": ..., "remus_tuples":
    ..., "remaster_tuples": ...}``; the remaster path must move strictly
    less (its destination already replicates the data)."""
    config = config or FailoverConfig()
    out = {}
    for approach, cls in (
        ("remus", RemusMigration),
        ("remaster", WaitAndRemasterMigration),
    ):
        cluster = _build_replicated(config)
        shard_id = cluster.shards_on_node("node-1", table=TABLE)[0]
        group = cluster.replication.group_for(shard_id)
        member_nodes = {replica.node_id for replica in group.replicas}
        if approach == "remaster":
            # Onto an in-sync follower: the prepositioned fast path.
            dest = min(
                n for n in sorted(member_nodes) if n != group.leader_node_id
            )
        else:
            # Onto a fresh node: the full copy the comparison is against.
            dest = min(n for n in cluster.node_ids() if n not in member_nodes)
        migration = cls(cluster, [shard_id], "node-1", dest)
        proc = cluster.spawn(migration.run(), name="compare-{}".format(approach))
        run_until_finished(
            cluster, proc, config.max_sim_time, what="comparison migration"
        )
        check_no_crashes(cluster)
        assert cluster.shard_owner(shard_id) == dest
        out["{}_bytes".format(approach)] = migration.stats.bytes_copied
        out["{}_tuples".format(approach)] = migration.stats.tuples_copied
    return out
