"""TPC-C scale-out (§4.6, Figure 9).

The cluster starts with five nodes, one of which hosts twice as many
warehouses as the others. A sixth node is added and the overloaded node's
extra warehouses migrate to it, several warehouses (x 8 collocated tables)
per batch. Expected shapes: throughput rises for every approach after the
scale-out; Remus shows the smallest fluctuation, lock-and-abort and
wait-and-remaster much larger troughs (blocked/aborted transactions during
transfer and waits on longer TPC-C transactions). Squall is not shown — as
in the paper, the port does not support multi-key range partitioning.
"""

from dataclasses import dataclass

from repro.cluster.shard import ShardId
from repro.experiments import registry
from repro.experiments.common import (
    ExperimentResult,
    build_cluster,
    check_no_crashes,
    note_topology,
    run_until_finished,
    summarize,
)
from repro.migration import Migration
from repro.workloads.tpcc import TABLES, TpccConfig, TpccWorkload


@dataclass
class ScaleOutConfig:
    """Simulator-scale version of §4.6 (paper values in comments)."""

    initial_nodes: int = 5
    num_warehouses: int = 18  # 480 warehouses
    overloaded_node: str = "node-1"  # holds 2x the warehouses of the others
    warehouses_to_move: int = 3  # half the overloaded node's share (80/160)
    warehouses_per_batch: int = 1  # 3 warehouses (24 shards) per batch
    districts_per_warehouse: int = 2
    customers_per_district: int = 12
    items: int = 30
    clients_per_warehouse: int = 1
    client_think: float = 0.016  # paces the others below CPU capacity so
    cpu_per_node: int = 1  # only the overloaded node saturates and the
    op_cost: float = 2.5e-4  # scale-out visibly lifts throughput
    snapshot_cost: float = 1e-3  # stretched so consecutive migrations span
    warmup: float = 3.0  # several seconds, as in Figure 9
    settle: float = 3.0
    max_sim_time: float = 90.0
    topology: str = None  # network preset (single|multi_az|geo); None = flat
    pump_share: float = None  # migration's contended-trunk share cap
    seed: int = 0

    def make_costs(self):
        from repro.config import CostModel

        return CostModel(
            snapshot_scan_per_tuple=self.snapshot_cost,
            cpu_read=self.op_cost,
            cpu_write=self.op_cost,
        )


def overloaded_placement(config, node_ids):
    """Warehouse -> node map with the first node holding a double share
    (the paper's 160-vs-80 warehouse imbalance)."""
    others = [n for n in node_ids if n != config.overloaded_node]
    placement = {}
    share = config.num_warehouses // (config.initial_nodes + 1)
    cursor = 0
    for w in range(config.num_warehouses):
        if w < 2 * share:
            placement[w] = config.overloaded_node
        else:
            placement[w] = others[cursor % len(others)]
            cursor += 1
    return placement


@registry.register(
    "scale_out",
    config_cls=ScaleOutConfig,
    approaches=registry.NO_SQUALL,
    description="TPC-C scale-out: add a node, drain the overloaded one (Figure 9)",
)
def _scale_out(approach, config=None):
    if approach == "squall":
        raise NotImplementedError(
            "Squall is not shown in the scale-out evaluation: the port does "
            "not support multi-key range partitioning (§4.6)"
        )
    config = config or ScaleOutConfig()
    cluster = build_cluster(
        config.initial_nodes,
        approach,
        seed=config.seed,
        costs=config.make_costs(),
        cpu_per_node=config.cpu_per_node,
        topology=config.topology,
        pump_share=config.pump_share,
    )
    workload = TpccWorkload(
        cluster,
        TpccConfig(
            num_warehouses=config.num_warehouses,
            districts_per_warehouse=config.districts_per_warehouse,
            customers_per_district=config.customers_per_district,
            items=config.items,
            client_think=config.client_think,
        ),
    )
    workload.create(
        placement_by_warehouse=overloaded_placement(config, cluster.node_ids())
    )
    pool = workload.make_clients(clients_per_warehouse=config.clients_per_warehouse)
    pool.start()
    cluster.run(until=config.warmup)

    new_node = "node-{}".format(config.initial_nodes + 1)
    cluster.add_node(new_node)
    # Migrate whole warehouses: all 8 collocated shards per warehouse.
    moving = [
        w
        for w in range(config.num_warehouses)
        if cluster.shard_owner(ShardId("warehouse", w)) == config.overloaded_node
    ][: config.warehouses_to_move]
    batches = []
    for i in range(0, len(moving), config.warehouses_per_batch):
        group = []
        for w in moving[i : i + config.warehouses_per_batch]:
            group.extend(ShardId(table, w) for table in TABLES)
        batches.append((group, config.overloaded_node, new_node))
    plan = Migration.plan(approach, batches)
    proc = cluster.spawn(Migration.launch(cluster, plan), name="scale-out")
    run_until_finished(
        cluster, proc, config.max_sim_time,
        what="{} scale-out".format(approach),
    )
    end = cluster.sim.now + config.settle
    cluster.run(until=end)
    pool.stop()
    cluster.run(until=end + 0.5)
    check_no_crashes(cluster)

    result = ExperimentResult(approach=approach, scenario="scale_out")
    summarize(result, cluster.metrics, label="tpcc", end_time=end)
    mig_start, mig_end = result.migration_window
    metrics = cluster.metrics
    result.extra["tput_before"] = metrics.average_throughput(
        label="tpcc", start=0.5, end=mig_start
    )
    result.extra["tput_after"] = metrics.average_throughput(
        label="tpcc", start=mig_end + 0.2, end=end
    )
    result.extra["migration_aborts"] = metrics.abort_count(kind="migration")
    series_during = [
        v for t, v in result.throughput if mig_start <= t < mig_end
    ]
    if series_during:
        mean = sum(series_during) / len(series_during)
        variance = sum((v - mean) ** 2 for v in series_during) / len(series_during)
        result.extra["tput_stddev_during"] = variance ** 0.5
        result.extra["tput_mean_during"] = mean
        result.extra["tput_min_during"] = min(series_during)
    result.extra["warehouses_moved"] = len(moving)
    result.extra["new_node_shards"] = len(cluster.shards_on_node(new_node))
    result.extra["plan_stats"] = plan.stats
    if config.topology is not None:
        note_topology(result, cluster)
    return result
