"""High-contention hot-shard migration (§4.8, Figure 10).

200 clients read/update 100 tuples of a single shard while Remus migrates
that shard. Reproduced effects:

- a throughput dip during snapshot copying: the copy's snapshot pins the
  vacuum horizon, version chains on the hot tuples grow, and every MVCC read
  pays for the extra chain traversal (~26 % in the paper);
- elevated source-node CPU during the copy (scan work, ~+15 %) and a smaller
  bump afterwards for update propagation (~+6 %);
- destination CPU spent on transaction-level parallel replay (~+8 %);
- very few WW-conflicts between shadow and destination transactions (the
  dual execution window is short).
"""

from dataclasses import dataclass

from repro.experiments import registry
from repro.experiments.common import (
    ExperimentResult,
    build_cluster,
    check_no_crashes,
    note_topology,
    run_until_finished,
)
from repro.migration import Migration
from repro.workloads.client import ClientPool, ClosedLoopClient


@dataclass
class HighContentionConfig:
    """Simulator-scale version of §4.8 (paper values in comments)."""

    num_nodes: int = 3
    shard_tuples: int = 4000  # the migrating shard's total tuples
    hot_tuples: int = 100  # 100 randomly-updated tuples
    num_clients: int = 24  # 200 clients
    read_ratio: float = 0.5
    tuple_size: int = 1024
    snapshot_cost: float = 8e-4  # stretches the copy so chains build up
    version_cost: float = 1e-5  # per dead version walked on a read
    vacuum_interval: float = 0.25
    warmup: float = 2.0  # steady state before migration
    run_after: float = 3.0  # observation after migration completes
    max_sim_time: float = 60.0
    topology: str = None  # network preset (single|multi_az|geo); None = flat
    pump_share: float = None  # migration's contended-trunk share cap
    seed: int = 0

    def make_costs(self):
        from repro.config import CostModel

        return CostModel(
            snapshot_scan_per_tuple=self.snapshot_cost,
            cpu_per_version=self.version_cost,
        )


@registry.register(
    "high_contention",
    config_cls=HighContentionConfig,
    approaches=("remus", "lock_and_abort", "wait_and_remaster", "stop_and_copy"),
    description="hot-shard migration under high contention with CPU accounting "
    "(Figure 10)",
)
def _high_contention(approach="remus", config=None):
    config = config or HighContentionConfig()
    cluster = build_cluster(
        config.num_nodes,
        approach,
        seed=config.seed,
        costs=config.make_costs(),
        vacuum_interval=config.vacuum_interval,
        cpu_bin_width=0.5,
        topology=config.topology,
        pump_share=config.pump_share,
    )
    # One single-shard table: the hot shard to be migrated.
    cluster.create_table("hot", num_shards=1, tuple_size=config.tuple_size)
    cluster.bulk_load("hot", [(k, {"f0": k}) for k in range(config.shard_tuples)])
    cluster.start_vacuum_daemons()
    shard = cluster.tables["hot"].shard_ids()[0]
    source = cluster.shard_owner(shard)
    dest = next(n for n in cluster.node_ids() if n != source)

    def body_factory(rng):
        def factory():
            def body(session, txn):
                key = rng.randint(0, config.hot_tuples - 1)
                if rng.random() < config.read_ratio:
                    yield from session.read(txn, "hot", key)
                else:
                    yield from session.update(txn, "hot", key, {"f0": rng.randint(0, 1 << 30)})

            return body

        return factory

    node_ids = cluster.node_ids()
    clients = [
        ClosedLoopClient(
            cluster,
            node_ids[i % len(node_ids)],
            body_factory(cluster.sim.rng("hot-client-{}".format(i))),
            "hot",
            think_time=0.002,
        )
        for i in range(config.num_clients)
    ]
    pool = ClientPool(clients)
    pool.start()
    cluster.run(until=config.warmup)

    plan = Migration.plan(approach, [([shard], source, dest)])
    proc = cluster.spawn(Migration.launch(cluster, plan), name="hot-migration")
    run_until_finished(cluster, proc, config.max_sim_time, what="hot-shard migration")
    end = cluster.sim.now + config.run_after
    cluster.run(until=end)
    pool.stop()
    cluster.run(until=end + 0.5)
    check_no_crashes(cluster)

    metrics = cluster.metrics
    mig_start = metrics.first_mark("migration_start")
    mig_end = metrics.last_mark("migration_end")
    migration = plan.migrations[0]
    copy_start, copy_end = migration.stats.phase_times.get(
        "snapshot_copy", (mig_start, mig_end)
    )

    result = ExperimentResult(approach=approach, scenario="high_contention")
    result.migration_window = (mig_start, mig_end)
    result.throughput = metrics.throughput_series(label="hot", bin_width=0.5, end=end)
    result.extra["cpu_source"] = cluster.nodes[source].cpu.usage_series(0.0, end)
    result.extra["cpu_dest"] = cluster.nodes[dest].cpu.usage_series(0.0, end)
    result.extra["tput_baseline"] = metrics.average_throughput(
        label="hot", start=0.5, end=mig_start
    )
    result.extra["tput_during_copy"] = metrics.average_throughput(
        label="hot", start=copy_start, end=max(copy_end, copy_start + 1e-9)
    )
    result.extra["tput_after"] = metrics.average_throughput(
        label="hot", start=mig_end + 0.5, end=end
    )
    result.extra["cpu_source_baseline"] = cluster.nodes[source].cpu.usage_between(
        0.5, mig_start
    )
    result.extra["cpu_source_copy"] = cluster.nodes[source].cpu.usage_between(
        copy_start, max(copy_end, copy_start + 1e-9)
    )
    result.extra["cpu_dest_baseline"] = cluster.nodes[dest].cpu.usage_between(
        0.5, mig_start
    )
    result.extra["cpu_dest_migration"] = cluster.nodes[dest].cpu.usage_between(
        mig_start, mig_end
    )
    result.extra["ww_conflicts_dual_exec"] = migration.stats.ww_conflicts
    result.extra["ww_aborts_total"] = metrics.abort_count(kind="ww_conflict")
    result.extra["copy_window"] = (copy_start, copy_end)
    result.extra["data_intact"] = len(cluster.dump_table("hot")) == config.shard_tuples
    if config.topology is not None:
        note_topology(result, cluster)
    return result
