"""Ablations of the design choices DESIGN.md calls out.

1. **Parallel replay** (§3.6) — transaction-level parallel apply keeps
   ``speed_replay > speed_update``; serial replay inflates catch-up and the
   sync-wait latency of synchronized source transactions.
2. **Prepare-wait** (§2.2) — without it, a reader can miss the writes of a
   prepared-but-not-yet-committed transaction whose commit timestamp is
   below the reader's snapshot: read-modify-write workloads lose updates.
3. **Dual execution vs stop-and-copy** — the downtime axis: Remus migrates
   with zero downtime where stop-and-copy blocks everything for the copy.
4. **Cache read-through** (§3.5.1) — without it, a transaction that starts
   after T_m commits can be routed to the source by a stale cache entry and
   its writes are lost when the source copy is retired.
5. **GTS vs DTS** (§2.2) — the centralized sequencer pays two network round
   trips per transaction; DTS is local.
"""

from repro.cluster import Cluster
from repro.config import ClusterConfig, CostModel
from repro.migration import MigrationPlan, RemusMigration, run_plan
from repro.workloads.client import run_transaction
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


def _ycsb_cluster(replay_parallelism=18, timestamp_scheme="dts", num_clients=8,
                  think=0.002, seed=0, snapshot_cost=None):
    costs = CostModel()
    if snapshot_cost is not None:
        costs = CostModel(snapshot_scan_per_tuple=snapshot_cost)
    cluster = Cluster(
        ClusterConfig(
            num_nodes=3,
            replay_parallelism=replay_parallelism,
            timestamp_scheme=timestamp_scheme,
            costs=costs,
            seed=seed,
        )
    )
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(
            num_tuples=3000,
            num_shards=6,
            num_clients=num_clients,
            tuple_size=512,
            read_ratio=0.2,  # write-heavy: stress the replay pipeline
            think_time=think,
        ),
    )
    workload.create()
    cluster.start_vacuum_daemons()
    return cluster, workload


def run_parallel_replay_ablation(parallelism):
    """Migrate half the shards under write-heavy load; returns timing stats."""
    cluster, workload = _ycsb_cluster(replay_parallelism=parallelism)
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=1.0)
    shards = cluster.shards_on_node("node-1", table="ycsb")
    plan = MigrationPlan(RemusMigration, [(shards, "node-1", "node-2")])
    proc = cluster.spawn(run_plan(cluster, plan))
    deadline = 60.0
    while not proc.finished and cluster.sim.now < deadline:
        cluster.run(until=cluster.sim.now + 0.5)
    assert proc.finished
    proc.result()
    pool.stop()
    cluster.run(until=cluster.sim.now + 0.5)
    migration = plan.migrations[0]
    return {
        "parallelism": parallelism,
        "duration": sum(
            migration.stats.phase_duration(p)
            for p in ("async_propagation", "mode_change", "dual_execution")
        ),
        "avg_sync_wait": migration.stats.avg_sync_wait,
        "records_applied": migration.stats.records_applied,
    }


def run_counter_correctness(prepare_wait, duration=1.5, num_keys=10, num_clients=8,
                            scheme="dts"):
    """Read-modify-write counters; returns (committed, final_sum, lost)."""
    cluster = Cluster(ClusterConfig(num_nodes=3, timestamp_scheme=scheme))
    if not prepare_wait:
        for node in cluster.nodes.values():
            node.clog.prepare_wait_enabled = False
    cluster.create_table("counters", num_shards=6, tuple_size=64)
    cluster.bulk_load("counters", [(k, {"n": 0}) for k in range(num_keys)])
    committed = {"count": 0}

    def client(i):
        rng = cluster.sim.rng("abl-counter-{}".format(i))
        session = cluster.session(cluster.node_ids()[i % 3])

        def body_for(key):
            def body(sess, txn):
                row = yield from sess.read(txn, "counters", key)
                yield from sess.update(txn, "counters", key, {"n": row["n"] + 1})

            return body

        def loop():
            while cluster.sim.now < duration:
                ok, _err = yield from run_transaction(
                    session, body_for(rng.randint(0, num_keys - 1)), label="inc"
                )
                if ok:
                    committed["count"] += 1

        return loop()

    for i in range(num_clients):
        cluster.spawn(client(i))
    cluster.run(until=duration + 5.0)
    total = sum(row["n"] for row in cluster.dump_table("counters").values())
    return {
        "committed": committed["count"],
        "final_sum": total,
        "lost_updates": committed["count"] - total,
    }


def run_downtime_ablation(approach_cls, **migration_kwargs):
    """One shard migration under uniform YCSB; returns downtime + aborts.

    The per-tuple copy cost is stretched so that stop-and-copy's blocking
    window is visible at simulator scale (Remus stays at zero regardless).
    """
    cluster, workload = _ycsb_cluster(snapshot_cost=1e-3)
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=1.0)
    shards = cluster.shards_on_node("node-1", table="ycsb")[:2]
    plan = MigrationPlan(approach_cls, [(shards, "node-1", "node-3")], **migration_kwargs)
    proc = cluster.spawn(run_plan(cluster, plan))
    while not proc.finished and cluster.sim.now < 60.0:
        cluster.run(until=cluster.sim.now + 0.5)
    assert proc.finished
    proc.result()
    end = cluster.sim.now + 1.0
    cluster.run(until=end)
    pool.stop()
    cluster.run(until=end + 0.5)
    mig_start = cluster.metrics.first_mark("migration_start")
    mig_end = cluster.metrics.last_mark("migration_end")
    longest, total = cluster.metrics.downtime(
        label="ycsb", start=mig_start, end=mig_end, min_window=0.2
    )
    return {
        "downtime_longest": longest,
        "downtime_total": total,
        "migration_aborts": cluster.metrics.abort_count(kind="migration"),
        "window": (mig_start, mig_end),
    }


def run_cache_read_through_ablation(use_read_through, duration=3.0):
    """Counter workload across a Remus migration with/without read-through.

    Returns lost-update and error counts; without read-through (and with a
    delayed cache invalidation) post-T_m transactions can be misrouted to
    the source and their writes silently dropped with the source copy.
    """
    cluster = Cluster(ClusterConfig(num_nodes=3))
    cluster.create_table("counters", num_shards=6, tuple_size=64)
    num_keys = 30
    cluster.bulk_load("counters", [(k, {"n": 0}) for k in range(num_keys)])
    committed = {"count": 0}
    errors = {"count": 0}

    def client(i):
        rng = cluster.sim.rng("rt-counter-{}".format(i))
        session = cluster.session(cluster.node_ids()[i % 3])

        def body_for(key):
            def body(sess, txn):
                row = yield from sess.read(txn, "counters", key)
                if row is None:
                    raise KeyError(key)
                yield from sess.update(txn, "counters", key, {"n": row["n"] + 1})

            return body

        def loop():
            while cluster.sim.now < duration:
                try:
                    ok, _err = yield from run_transaction(
                        session, body_for(rng.randint(0, num_keys - 1)), label="inc"
                    )
                except KeyError:
                    errors["count"] += 1
                    continue
                if ok:
                    committed["count"] += 1

        return loop()

    for i in range(10):
        cluster.spawn(client(i))

    def migrate():
        yield 0.5
        for shard in cluster.shards_on_node("node-1", table="counters"):
            plan = MigrationPlan(
                RemusMigration,
                [([shard], "node-1", "node-2")],
                use_cache_read_through=use_read_through,
                cache_refresh_delay=0.05,
            )
            yield from run_plan(cluster, plan)

    proc = cluster.spawn(migrate())
    cluster.run(until=duration + 10.0)
    assert proc.finished
    dump = cluster.dump_table("counters")
    total = sum(row["n"] for row in dump.values())
    return {
        "committed": committed["count"],
        "final_sum": total,
        "lost_updates": committed["count"] - total,
        "routing_errors": errors["count"]
        + sum(1 for p, _e in cluster.sim.failed_processes),
    }


def run_timestamp_scheme_ablation(scheme, duration=2.0):
    """Plain YCSB throughput/latency under GTS vs DTS."""
    cluster, workload = _ycsb_cluster(timestamp_scheme=scheme, think=0.0,
                                      num_clients=6)
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=duration)
    pool.stop()
    cluster.run(until=duration + 0.5)
    return {
        "scheme": scheme,
        "throughput": cluster.metrics.average_throughput(label="ycsb", end=duration),
        "avg_latency": cluster.metrics.average_latency(label="ycsb"),
    }
