"""Experiment harnesses reproducing the paper's evaluation (§4).

Each module builds the scenario, drives the workload and migrations inside
the simulator, and returns a structured result that the benchmark targets
render as the corresponding table or figure:

- :mod:`repro.experiments.consolidation` — cluster consolidation under
  hybrid workloads A and B (Table 2, Figures 6 and 7);
- :mod:`repro.experiments.load_balancing` — hotspot rebalancing (Figure 8);
- :mod:`repro.experiments.scale_out` — TPC-C scale-out (Figure 9);
- :mod:`repro.experiments.high_contention` — hot-shard migration with CPU
  accounting (Figure 10);
- :mod:`repro.experiments.latency` — migration-induced latency increase
  (Table 3);
- :mod:`repro.experiments.capability` — the qualitative capability matrix
  (Table 1), derived from measured micro-runs.
"""

from repro.experiments import registry
from repro.experiments.common import APPROACH_ORDER, ExperimentResult

__all__ = ["APPROACH_ORDER", "ExperimentResult", "registry"]
