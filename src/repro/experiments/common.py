"""Shared experiment plumbing: cluster construction, runs, result objects."""

from dataclasses import dataclass, field, fields

from repro.cluster import Cluster
from repro.config import ClusterConfig, TierProfiles
from repro.migration import Migration
from repro.sim.network import MIGRATION_CLASS
from repro.sim.topology import Topology, make_topology
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload

# The order the paper's figures present the approaches in.
APPROACH_ORDER = ("remus", "lock_and_abort", "wait_and_remaster", "squall")


def _jsonify(value):
    """Recursively reduce a result value to JSON-native types.

    Tuples become lists, dict keys become strings, and stats objects that
    know how to snapshot themselves (``to_dict``) are snapshotted; anything
    else non-native falls back to ``repr`` so a payload never fails to
    serialize.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return _jsonify(to_dict())
    return repr(value)


@dataclass
class ExperimentResult:
    """Everything a benchmark needs to render one approach's run."""

    approach: str
    scenario: str
    throughput: list = field(default_factory=list)  # (t, txns/s) for YCSB/TPC-C
    batch_throughput: list = field(default_factory=list)  # (t, tuples/s)
    migration_window: tuple = (None, None)
    workload_window: tuple = (None, None)  # batch/analytical start-end marks
    aborts: dict = field(default_factory=dict)  # kind -> count
    abort_ratio: float = 0.0
    downtime_longest: float = 0.0
    downtime_total: float = 0.0
    avg_latency_before: float = 0.0
    avg_latency_during: float = 0.0
    avg_throughput_before: float = 0.0
    avg_throughput_during: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def latency_increase(self):
        return max(0.0, self.avg_latency_during - self.avg_latency_before)

    def to_dict(self):
        """Stable JSON-safe payload of the whole result.

        The contract: ``to_dict`` is deterministic for a deterministic run
        (the seed-sweep harness compares serial and parallel executions
        byte-for-byte on the canonical JSON encoding of this payload), and
        ``from_dict(d).to_dict() == d`` round-trips exactly. Rich objects in
        ``extra`` (e.g. ``plan_stats``) are flattened to plain dicts.
        """
        return {f.name: _jsonify(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a result from :meth:`to_dict` output.

        Values stay in their JSON-native form (windows and series are
        lists; ``extra["plan_stats"]`` is a plain dict, not a
        :class:`~repro.migration.MigrationStats`).
        """
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError("unknown ExperimentResult fields: {}".format(sorted(unknown)))
        kwargs = dict(payload)
        for window in ("migration_window", "workload_window"):
            if window in kwargs and isinstance(kwargs[window], list):
                kwargs[window] = tuple(kwargs[window])
        return cls(**kwargs)


def build_cluster(
    num_nodes, approach, seed=0, topology=None, pump_share=None, **config_kwargs
):
    """A cluster configured for ``approach`` (Squall needs shard locks).

    ``topology`` is either a ready :class:`~repro.sim.topology.Topology` or
    a preset name (``single`` / ``multi_az`` / ``geo``) instantiated over
    the cluster's node ids with the config's tier profiles; ``None`` keeps
    the flat single-rack network. ``pump_share`` caps the migration traffic
    class at that fraction of any contended trunk (``None``/1.0 = plain
    fair share).

    Vacuum daemons run as they would in PostgreSQL — without them version
    chains grow without bound and every read slows down over time.
    """
    tiers = config_kwargs.get("tiers") or TierProfiles()
    if topology is not None and not isinstance(topology, Topology):
        node_ids = ["node-{}".format(i + 1) for i in range(num_nodes)]
        topology = make_topology(topology, node_ids, tiers.as_profiles())
    if topology is not None:
        config_kwargs["topology"] = topology
    if pump_share is not None:
        config_kwargs["pump_share"] = pump_share
    config = ClusterConfig(num_nodes=num_nodes, seed=seed, **config_kwargs)
    cluster = Cluster(config)
    if approach == "squall":
        cluster.cc_mode = "shard_lock"
    cluster.start_vacuum_daemons()
    return cluster


def note_topology(result, cluster):
    """Record the run's network shape in ``result.extra`` (round-trips
    through ``to_dict``/``from_dict`` with the rest of the payload)."""
    topology = cluster.network.topology
    result.extra["topology"] = topology.name
    result.extra["topology_contended"] = topology.contended
    result.extra["pump_share"] = cluster.network.class_cap(MIGRATION_CLASS)
    return result


def build_ycsb(cluster, **ycsb_kwargs):
    workload = YcsbWorkload(cluster, YcsbConfig(**ycsb_kwargs))
    workload.create()
    return workload


def approach_class(approach):
    """Approach name -> migration class (delegates to the unified factory)."""
    return Migration.resolve(approach)


def migration_window(metrics):
    return metrics.first_mark("migration_start"), metrics.last_mark("migration_end")


def summarize(result, metrics, label, end_time, weighted_label=None):
    """Fill the common measurement fields of ``result`` from the metrics."""
    start_mig, end_mig = migration_window(metrics)
    result.migration_window = (start_mig, end_mig)
    result.throughput = metrics.throughput_series(label=label, bin_width=1.0, end=end_time)
    if weighted_label:
        result.batch_throughput = metrics.throughput_series(
            label=weighted_label, bin_width=1.0, end=end_time, weighted=True
        )
    result.aborts = dict(metrics.abort_kinds())
    if start_mig is not None and end_mig is not None:
        result.avg_latency_before = metrics.average_latency(label=label, end=start_mig)
        result.avg_latency_during = metrics.average_latency(
            label=label, start=start_mig, end=end_mig
        )
        result.avg_throughput_before = metrics.average_throughput(label=label, end=start_mig)
        result.avg_throughput_during = metrics.average_throughput(
            label=label, start=start_mig, end=end_mig
        )
        result.downtime_longest, result.downtime_total = metrics.downtime(
            label=label, start=start_mig, end=end_mig
        )
    return result


def run_until_finished(cluster, proc, deadline, step=0.5, what="migration plan"):
    """Advance the sim in steps until ``proc`` completes (or the deadline)."""
    while not proc.finished and cluster.sim.now < deadline:
        cluster.run(until=min(deadline, cluster.sim.now + step))
    if not proc.finished:
        raise AssertionError("{} did not finish by t={}s".format(what, deadline))
    return proc.result()


def check_no_crashes(cluster, allow_prefixes=()):
    """Raise if any detached simulated process died with an exception."""
    crashes = [
        (proc.name, exc)
        for proc, exc in cluster.sim.failed_processes
        if not any(proc.name.startswith(p) for p in allow_prefixes)
    ]
    if crashes:
        name, exc = crashes[0]
        raise AssertionError(
            "{} background process(es) crashed; first: {} -> {!r}".format(
                len(crashes), name, exc
            )
        ) from exc
