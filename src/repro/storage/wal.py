"""Write-ahead log with typed records, LSNs and streaming readers.

Remus tracks incremental changes by traversing WAL records (§3.3). The
propagation (send) process is a streaming reader of this log: it builds an
update-cache queue per transaction and ships a transaction's changes when its
commit record is encountered. The record kinds below cover everything the
protocols need: row changes, 2PC prepare ("validation records"), plain
commit/abort and the resolution records for prepared transactions.

Group commit: concurrent committers on one node whose flushes would
complete at the same instant share a single flush completion event through
:class:`FlushCoalescer` (PostgreSQL's commit_delay-free group commit — the
batch forms naturally from same-tick committers). The first flush keeps its
own timer; subsequent same-completion-time flushes wait on one shared event
closed by a single timer, so a storm of N committers costs 2 kernel events
instead of N.
"""

import enum
from dataclasses import dataclass, field

from repro.profiling.counters import COUNTERS
from repro.sim.events import Event


class WalRecordKind(enum.Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    LOCK = "lock"  # explicit row-level lock (SELECT ... FOR UPDATE)
    PREPARE = "prepare"  # 2PC prepare / MOCC validation record
    COMMIT = "commit"
    ABORT = "abort"
    COMMIT_PREPARED = "commit_prepared"
    ROLLBACK_PREPARED = "rollback_prepared"

    @property
    def is_change(self):
        return self in (
            WalRecordKind.INSERT,
            WalRecordKind.UPDATE,
            WalRecordKind.DELETE,
            WalRecordKind.LOCK,
        )


@dataclass
class WalRecord:
    """One WAL entry. ``lsn`` is assigned by :meth:`Wal.append`."""

    kind: WalRecordKind
    xid: int
    shard_id: object = None
    key: object = None
    value: object = None
    size: int = 0
    commit_ts: int = None
    start_ts: int = None
    lsn: int = field(default=None, compare=False)


class FlushCoalescer:
    """Coalesces same-completion-time WAL flush waits on one node.

    Protocol (chosen so the simulated timeline is *byte-identical* to every
    committer paying its own timer):

    - the **leader** (first flush targeting a completion time) returns
      ``None`` and does a plain ``yield delay`` — the exact event the
      unbatched path would create;
    - the **first joiner** allocates the shared event and schedules the one
      close timer, which therefore occupies precisely the (time, seq) slot
      the joiner's own timer would have occupied;
    - later joiners just wait on the shared event, allocating nothing;
    - the close timer completes the event with
      :meth:`~repro.sim.events.Event.succeed_inline`, resuming joiners
      synchronously in join order — the order their individual timers
      would have fired in.

    A single pending slot suffices: a flush targeting a different
    completion time simply starts a new group (the old close timer holds
    its own event reference), and a missed coalesce degrades to the exact
    legacy behavior, never to a wrong one.
    """

    __slots__ = ("sim", "_pending_at", "_event")

    def __init__(self, sim):
        self.sim = sim
        self._pending_at = None
        self._event = None

    def join(self, delay):
        """Register a flush taking ``delay``; returns a waitable or None.

        ``None`` means the caller is the group leader and must pay the
        delay with its own ``yield delay``.
        """
        complete_at = self.sim.now + delay
        if self._pending_at != complete_at:
            self._pending_at = complete_at
            self._event = None
            return None
        if self._event is None:
            event = Event(self.sim)
            self._event = event
            self.sim.schedule(delay, self._close, event)
            COUNTERS.wal_flush_groups += 1
        COUNTERS.wal_flush_joins += 1
        return self._event

    def _close(self, event):
        if self._event is event:
            self._event = None
            self._pending_at = None
        event.succeed_inline(None)


class Wal:
    """Append-only log for one node.

    Readers (:class:`WalReader`) consume records in order and block on an
    event when they reach the tail, waking as soon as new records land.
    """

    def __init__(self, sim, node_id=""):
        self.sim = sim
        self.node_id = node_id
        self._records = []
        self._appended = None  # event armed while a reader waits at the tail
        self.flush_group = FlushCoalescer(sim)
        # Per-shard routing index for the migration pump fast path: built
        # lazily on the first ``routing_index()`` call (nodes that never
        # source a migration pay nothing) and maintained by ``append`` from
        # then on. ``_route_change`` maps shard_id -> [lsn, ...] of change
        # records; ``_route_control`` lists the control-record LSNs
        # (prepare/commit/abort and their 2PC resolutions), which every
        # pump must see regardless of its shard set.
        self._route_change = None
        self._route_control = None

    @property
    def tail_lsn(self):
        """LSN that the *next* appended record will receive."""
        return len(self._records)

    def append(self, record):
        """Assign the next LSN to ``record`` and append it. Returns the LSN."""
        record.lsn = lsn = len(self._records)
        self._records.append(record)
        if self._route_change is not None:
            if record.kind.is_change:
                route = self._route_change.get(record.shard_id)
                if route is None:
                    route = self._route_change[record.shard_id] = []
                route.append(lsn)
            else:
                self._route_control.append(lsn)
        if self._appended is not None:
            armed, self._appended = self._appended, None
            armed.succeed(None)
        return record.lsn

    def routing_index(self):
        """The (change-by-shard, control) LSN routing index, built lazily."""
        if self._route_change is None:
            change = {}
            control = []
            for record in self._records:
                if record.kind.is_change:
                    route = change.get(record.shard_id)
                    if route is None:
                        route = change[record.shard_id] = []
                    route.append(record.lsn)
                else:
                    control.append(record.lsn)
            self._route_change = change
            self._route_control = control
        return self._route_change, self._route_control

    def record_at(self, lsn):
        return self._records[lsn]

    def records_between(self, from_lsn, to_lsn):
        """Records with from_lsn <= lsn < to_lsn."""
        return self._records[from_lsn:to_lsn]

    def reader(self, from_lsn=0):
        return WalReader(self, from_lsn)

    def _wait_appended(self):
        if self._appended is None:
            self._appended = self.sim.event(name="wal-append:{}".format(self.node_id))
        return self._appended


class WalReader:
    """Sequential streaming reader over a :class:`Wal`.

    Usage inside a simulated process::

        record = yield from reader.next_record()
    """

    def __init__(self, wal, from_lsn=0):
        self.wal = wal
        self.next_lsn = from_lsn

    @property
    def lag(self):
        """Number of records appended but not yet consumed by this reader."""
        return self.wal.tail_lsn - self.next_lsn

    def poll(self):
        """Return the next record without blocking, or None at the tail."""
        if self.next_lsn < self.wal.tail_lsn:
            record = self.wal.record_at(self.next_lsn)
            self.next_lsn += 1
            return record
        return None

    def next_record(self):
        """Generator: yields until a record is available, then returns it."""
        while True:
            record = self.poll()
            if record is not None:
                return record
            yield self.wal._wait_appended()
