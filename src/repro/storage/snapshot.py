"""Snapshots and MVCC visibility checking with prepare-wait.

A transaction reads with a :class:`Snapshot` carrying its start timestamp.
Visibility of a tuple version is decided by consulting the CLOG for the
creating (and, if set, deleting) transaction:

- aborted / in-progress writers are ignored,
- **prepared** writers force the reader to wait for completion (the
  prepare-wait mechanism of §2.2 that both GTS and DTS rely on),
- committed writers are visible iff their commit timestamp is <= the
  snapshot's start timestamp.

The check functions are generators so that prepare-wait can block the calling
simulated process.
"""

from repro.storage.clog import TxnStatus


class VisibilityError(Exception):
    """Internal inconsistency detected during a visibility check."""


class Snapshot:
    """An MVCC read snapshot.

    Attributes:
        start_ts: the snapshot (start) timestamp.
        xid: the reading transaction's id on this node, so it sees its own
            uncommitted writes; None for pure snapshot reads (e.g. the
            migration's snapshot scan).
    """

    __slots__ = ("start_ts", "xid")

    def __init__(self, start_ts, xid=None):
        self.start_ts = start_ts
        self.xid = xid

    def __repr__(self):
        return "Snapshot(start_ts={}, xid={})".format(self.start_ts, self.xid)


def creation_visible(version, snapshot, clog):
    """Generator: is the *creation* of ``version`` visible to ``snapshot``?

    Returns True/False; blocks (prepare-wait) while the creator is prepared.
    """
    if snapshot.xid is not None and version.xmin == snapshot.xid:
        return True
    while True:
        status = clog.status(version.xmin)
        if status is TxnStatus.ABORTED:
            return False
        if status is TxnStatus.IN_PROGRESS:
            return False
        if status is TxnStatus.PREPARED:
            if not clog.prepare_wait_enabled:
                return False  # ablation: unsafely treat prepared as invisible
            yield clog.wait_completion(version.xmin)
            continue
        return clog.commit_ts(version.xmin) <= snapshot.start_ts


def deletion_visible(version, snapshot, clog):
    """Generator: is the *deletion* of ``version`` visible to ``snapshot``?

    A version whose ``xmax`` deletion is visible is gone for this snapshot.
    """
    if version.xmax is None:
        return False
    if snapshot.xid is not None and version.xmax == snapshot.xid:
        return True
    while True:
        status = clog.status(version.xmax)
        if status in (TxnStatus.ABORTED, TxnStatus.IN_PROGRESS):
            return False
        if status is TxnStatus.PREPARED:
            if not clog.prepare_wait_enabled:
                return False  # ablation: unsafely treat prepared as not deleted
            yield clog.wait_completion(version.xmax)
            continue
        return clog.commit_ts(version.xmax) <= snapshot.start_ts


def version_is_dead(version, clog):
    """Non-blocking: True if this version was superseded by a *committed* txn
    or created by an aborted one (used by MOCC validation and vacuum)."""
    if clog.status(version.xmin) is TxnStatus.ABORTED:
        return True
    return version.xmax is not None and clog.status(version.xmax) is TxnStatus.COMMITTED
