"""Snapshots and MVCC visibility checking with prepare-wait.

A transaction reads with a :class:`Snapshot` carrying its start timestamp.
Visibility of a tuple version is decided by consulting the CLOG for the
creating (and, if set, deleting) transaction:

- aborted / in-progress writers are ignored,
- **prepared** writers force the reader to wait for completion (the
  prepare-wait mechanism of §2.2 that both GTS and DTS rely on),
- committed writers are visible iff their commit timestamp is <= the
  snapshot's start timestamp.

The check functions are generators so that prepare-wait can block the calling
simulated process.

Fast path
---------
The hot variant of each check (:func:`creation_visible_fast`,
:func:`deletion_visible_fast`) is a plain function: it decides visibility
from the tuple's hint bits — or from a non-blocking CLOG probe, stamping the
hint for next time — and returns :data:`UNDECIDED` only when the writer is
PREPARED and the caller must block. Callers (``HeapTable.visible_version``)
try the fast variant first and fall back to the generator only for the rare
prepare-wait, which removes two generator frames and several dict/enum
operations per version on the common path. The verdicts are identical by
construction: hints are immutable CLOG facts (``repro.storage.tuples``).
"""

from repro import fastpath
from repro.profiling.counters import COUNTERS
from repro.storage.clog import TxnStatus
from repro.storage.tuples import ABORTED


class VisibilityError(Exception):
    """Internal inconsistency detected during a visibility check."""


class _Undecided:
    """Singleton: the fast path could not decide without blocking."""

    __slots__ = ()

    def __repr__(self):
        return "UNDECIDED"


#: Returned by the fast checks when the writer is PREPARED (prepare-wait).
UNDECIDED = _Undecided()


class Snapshot:
    """An MVCC read snapshot.

    Attributes:
        start_ts: the snapshot (start) timestamp.
        xid: the reading transaction's id on this node, so it sees its own
            uncommitted writes; None for pure snapshot reads (e.g. the
            migration's snapshot scan).
        active_xids: optional frozenset of the node-local xids that were
            active when the snapshot was built (epoch-tagged shared
            snapshots attach it). Purely informational — visibility is
            decided by commit timestamps — but ``xid in snapshot`` is O(1)
            frozenset membership for invariant checks and introspection.
    """

    __slots__ = ("start_ts", "xid", "active_xids")

    def __init__(self, start_ts, xid=None, active_xids=None):
        self.start_ts = start_ts
        self.xid = xid
        self.active_xids = active_xids

    def __contains__(self, xid):
        """O(1): was ``xid`` active on the owning node at snapshot build?"""
        if self.active_xids is None:
            return False
        return xid in self.active_xids

    def __repr__(self):
        return "Snapshot(start_ts={}, xid={})".format(self.start_ts, self.xid)


def creation_visible_fast(version, snapshot, clog):
    """Non-blocking: is the *creation* of ``version`` visible to ``snapshot``?

    Returns True/False, or :data:`UNDECIDED` when the creator is PREPARED
    and the caller must prepare-wait. Stamps the ``cts_min`` hint whenever
    the creator resolves to a terminal state.
    """
    if snapshot.xid is not None and version.xmin == snapshot.xid:
        return True
    COUNTERS.visibility_probes += 1
    if fastpath.clog_hints:
        hint = version.cts_min
        if hint is not None:
            if hint is ABORTED:
                return False
            return hint <= snapshot.start_ts
    status = clog.status(version.xmin)
    COUNTERS.clog_slow_lookups += 1
    if status is TxnStatus.ABORTED:
        if fastpath.clog_hints:
            version.cts_min = ABORTED
            COUNTERS.hint_stamps += 1
        return False
    if status is TxnStatus.IN_PROGRESS:
        return False
    if status is TxnStatus.PREPARED:
        return UNDECIDED
    commit_ts = clog.commit_ts(version.xmin)
    if fastpath.clog_hints:
        version.cts_min = commit_ts
        COUNTERS.hint_stamps += 1
    return commit_ts <= snapshot.start_ts


def deletion_visible_fast(version, snapshot, clog):
    """Non-blocking: is the *deletion* of ``version`` visible to ``snapshot``?

    Same contract as :func:`creation_visible_fast`, for ``xmax``.
    """
    if version.xmax is None:
        return False
    if snapshot.xid is not None and version.xmax == snapshot.xid:
        return True
    COUNTERS.visibility_probes += 1
    if fastpath.clog_hints:
        hint = version.cts_max
        if hint is not None:
            if hint is ABORTED:
                return False
            return hint <= snapshot.start_ts
    status = clog.status(version.xmax)
    COUNTERS.clog_slow_lookups += 1
    if status is TxnStatus.ABORTED:
        if fastpath.clog_hints:
            version.cts_max = ABORTED
            COUNTERS.hint_stamps += 1
        return False
    if status is TxnStatus.IN_PROGRESS:
        return False
    if status is TxnStatus.PREPARED:
        return UNDECIDED
    commit_ts = clog.commit_ts(version.xmax)
    if fastpath.clog_hints:
        version.cts_max = commit_ts
        COUNTERS.hint_stamps += 1
    return commit_ts <= snapshot.start_ts


def creation_visible(version, snapshot, clog):
    """Generator: is the *creation* of ``version`` visible to ``snapshot``?

    Returns True/False; blocks (prepare-wait) while the creator is prepared.
    """
    while True:
        decided = creation_visible_fast(version, snapshot, clog)
        if decided is not UNDECIDED:
            return decided
        if not clog.prepare_wait_enabled:
            return False  # ablation: unsafely treat prepared as invisible
        yield clog.wait_completion(version.xmin)


def deletion_visible(version, snapshot, clog):
    """Generator: is the *deletion* of ``version`` visible to ``snapshot``?

    A version whose ``xmax`` deletion is visible is gone for this snapshot.
    """
    while True:
        decided = deletion_visible_fast(version, snapshot, clog)
        if decided is not UNDECIDED:
            return decided
        if not clog.prepare_wait_enabled:
            return False  # ablation: unsafely treat prepared as not deleted
        yield clog.wait_completion(version.xmax)


def version_is_dead(version, clog):
    """Non-blocking: True if this version was superseded by a *committed* txn
    or created by an aborted one (used by MOCC validation and vacuum)."""
    if fastpath.clog_hints:
        if version.cts_min is ABORTED:
            return True
        if version.xmax is not None and version.cts_max is not None:
            return version.cts_max is not ABORTED
    if clog.status(version.xmin) is TxnStatus.ABORTED:
        if fastpath.clog_hints:
            version.cts_min = ABORTED
        return True
    return version.xmax is not None and clog.status(version.xmax) is TxnStatus.COMMITTED
