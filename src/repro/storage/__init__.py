"""PostgreSQL-style MVCC storage engine for one simulated node.

This package implements the storage substrate the paper's protocols rely on:

- :mod:`repro.storage.tuples` — multi-versioned tuples with ``xmin``/``xmax``
  transaction ids, chained newest-first per primary key;
- :mod:`repro.storage.clog` — the commit log mapping each transaction id to
  its status (in-progress / **prepared** / committed / aborted) and commit
  timestamp, including the *prepare-wait* hook used for distributed SI;
- :mod:`repro.storage.wal` — a write-ahead log with typed records, LSNs and
  streaming readers (the substrate for Remus' update propagation);
- :mod:`repro.storage.heap` — versioned heap tables (one per shard) with a
  primary-key index and MVCC reads/writes;
- :mod:`repro.storage.snapshot` — snapshots and visibility checking.
"""

from repro.storage.clog import Clog, TxnStatus
from repro.storage.heap import HeapTable
from repro.storage.snapshot import Snapshot, VisibilityError
from repro.storage.tuples import TupleVersion
from repro.storage.wal import Wal, WalReader, WalRecord, WalRecordKind

__all__ = [
    "Clog",
    "HeapTable",
    "Snapshot",
    "TupleVersion",
    "TxnStatus",
    "VisibilityError",
    "Wal",
    "WalReader",
    "WalRecord",
    "WalRecordKind",
]
