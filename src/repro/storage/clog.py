"""The commit log (CLOG).

PolarDB-PG extends PostgreSQL's CLOG to store each transaction's commit
timestamp next to its status (§2.2). The special PREPARED status implements
the *prepare-wait* mechanism: a reader that encounters a version created by a
prepared transaction must wait for that transaction to complete before it can
decide visibility. :meth:`Clog.wait_completion` provides exactly that hook.
"""

import enum


class TxnStatus(enum.Enum):
    IN_PROGRESS = "in_progress"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Clog:
    """Per-node transaction status table with completion wait events."""

    def __init__(self, sim, node_id=""):
        self.sim = sim
        self.node_id = node_id
        # The prepare-wait mechanism (§2.2) is what keeps timestamp order
        # consistent across nodes; the flag exists only for the ablation
        # that demonstrates SI violations without it.
        self.prepare_wait_enabled = True
        self._status = {}
        self._commit_ts = {}
        self._waiters = {}

    def begin(self, xid):
        if xid in self._status:
            raise ValueError("xid {} already begun on {}".format(xid, self.node_id))
        self._status[xid] = TxnStatus.IN_PROGRESS

    def status(self, xid):
        """Status of ``xid``; unknown ids read as ABORTED (as crashed txns)."""
        return self._status.get(xid, TxnStatus.ABORTED)

    def commit_ts(self, xid):
        """Commit timestamp of a committed transaction."""
        return self._commit_ts[xid]

    def set_prepared(self, xid):
        current = self.status(xid)
        if current is not TxnStatus.IN_PROGRESS:
            raise ValueError(
                "cannot prepare xid {} in state {}".format(xid, current)
            )
        self._status[xid] = TxnStatus.PREPARED

    def set_committed(self, xid, commit_ts):
        current = self.status(xid)
        if current not in (TxnStatus.IN_PROGRESS, TxnStatus.PREPARED):
            raise ValueError(
                "cannot commit xid {} in state {}".format(xid, current)
            )
        self._commit_ts[xid] = commit_ts
        self._status[xid] = TxnStatus.COMMITTED
        self._wake(xid)

    def set_aborted(self, xid):
        current = self.status(xid)
        if current is TxnStatus.COMMITTED:
            raise ValueError("cannot abort committed xid {}".format(xid))
        self._status[xid] = TxnStatus.ABORTED
        self._wake(xid)

    def is_finished(self, xid):
        return self.status(xid) in (TxnStatus.COMMITTED, TxnStatus.ABORTED)

    def wait_completion(self, xid):
        """Event that fires once ``xid`` is committed or aborted.

        This is the prepare-wait primitive: MVCC readers that see a PREPARED
        creator block on this event before re-checking visibility.
        """
        event = self.sim.event(name="clog-wait:{}".format(xid))
        if self.is_finished(xid):
            event.succeed(self.status(xid))
            return event
        self._waiters.setdefault(xid, []).append(event)
        return event

    def _wake(self, xid):
        for event in self._waiters.pop(xid, []):
            event.succeed(self._status[xid])
