"""The commit log (CLOG).

PolarDB-PG extends PostgreSQL's CLOG to store each transaction's commit
timestamp next to its status (§2.2). The special PREPARED status implements
the *prepare-wait* mechanism: a reader that encounters a version created by a
prepared transaction must wait for that transaction to complete before it can
decide visibility. :meth:`Clog.wait_completion` provides exactly that hook.

Layout note: status and commit timestamp are stored side by side in one
entry table (as in PolarDB-PG's extended CLOG page format), so resolving a
committed writer — status probe followed by its timestamp — costs a single
dictionary lookup via :meth:`Clog.entry`. Repeat lookups for the same writer
are usually avoided entirely: visibility checks stamp resolved outcomes onto
the tuple headers as hint bits (see :mod:`repro.storage.tuples`), and the
CLOG is consulted only the first time an xid's fate is needed.
"""

import enum


class TxnStatus(enum.Enum):
    IN_PROGRESS = "in_progress"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


#: Entry tuples for states that carry no commit timestamp, interned so
#: ``begin``/``set_prepared``/``set_aborted`` allocate nothing.
_IN_PROGRESS_ENTRY = (TxnStatus.IN_PROGRESS, None)
_PREPARED_ENTRY = (TxnStatus.PREPARED, None)
_ABORTED_ENTRY = (TxnStatus.ABORTED, None)


class Clog:
    """Per-node transaction status table with completion wait events."""

    def __init__(self, sim, node_id=""):
        self.sim = sim
        self.node_id = node_id
        # The prepare-wait mechanism (§2.2) is what keeps timestamp order
        # consistent across nodes; the flag exists only for the ablation
        # that demonstrates SI violations without it.
        self.prepare_wait_enabled = True
        self._entries = {}  # xid -> (TxnStatus, commit_ts | None)
        self._waiters = {}

    def begin(self, xid):
        if xid in self._entries:
            raise ValueError("xid {} already begun on {}".format(xid, self.node_id))
        self._entries[xid] = _IN_PROGRESS_ENTRY

    def status(self, xid):
        """Status of ``xid``; unknown ids read as ABORTED (as crashed txns)."""
        return self._entries.get(xid, _ABORTED_ENTRY)[0]

    def commit_ts(self, xid):
        """Commit timestamp of a committed transaction."""
        status, commit_ts = self._entries[xid]
        if status is not TxnStatus.COMMITTED:
            raise KeyError(xid)
        return commit_ts

    def entry(self, xid):
        """(status, commit_ts_or_None) in one lookup (the fast-path probe)."""
        return self._entries.get(xid, _ABORTED_ENTRY)

    def statuses(self):
        """Iterate (xid, status) pairs (invariant checking / introspection)."""
        for xid, (status, _commit_ts) in self._entries.items():
            yield xid, status

    def set_prepared(self, xid):
        current = self.status(xid)
        if current is not TxnStatus.IN_PROGRESS:
            raise ValueError(
                "cannot prepare xid {} in state {}".format(xid, current)
            )
        self._entries[xid] = _PREPARED_ENTRY

    def set_committed(self, xid, commit_ts):
        current = self.status(xid)
        if current not in (TxnStatus.IN_PROGRESS, TxnStatus.PREPARED):
            raise ValueError(
                "cannot commit xid {} in state {}".format(xid, current)
            )
        self._entries[xid] = (TxnStatus.COMMITTED, commit_ts)
        self._wake(xid)

    def set_aborted(self, xid):
        current = self.status(xid)
        if current is TxnStatus.COMMITTED:
            raise ValueError("cannot abort committed xid {}".format(xid))
        self._entries[xid] = _ABORTED_ENTRY
        self._wake(xid)

    def is_finished(self, xid):
        return self.status(xid) in (TxnStatus.COMMITTED, TxnStatus.ABORTED)

    def wait_completion(self, xid):
        """Event that fires once ``xid`` is committed or aborted.

        This is the prepare-wait primitive: MVCC readers that see a PREPARED
        creator block on this event before re-checking visibility.
        """
        event = self.sim.event(name="clog-wait:{}".format(xid))
        if self.is_finished(xid):
            event.succeed(self.status(xid))
            return event
        self._waiters.setdefault(xid, []).append(event)
        return event

    def _wake(self, xid):
        for event in self._waiters.pop(xid, []):
            event.succeed(self.status(xid))
