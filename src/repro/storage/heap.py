"""Versioned heap tables: one per shard per node.

A heap table stores version chains newest-first per primary key, exactly the
structure the paper's protocols manipulate: MVCC reads traverse the chain
until the first version visible to the reader's snapshot; updates append a
new version and stamp the old one's ``xmax``; vacuum trims versions that no
active snapshot can see (long snapshot scans hold vacuum back, which is the
mechanism behind the paper's Figure 10 throughput dip).

Hot-path note: :meth:`HeapTable.visible_version` decides visibility through
the non-blocking hint-bit checks (``creation_visible_fast``) and only falls
back to the blocking generator when a writer is PREPARED, so the common
read pays no sub-generator frames and, once hints are stamped, no CLOG
lookups at all. The verdicts — and therefore every simulated timeline — are
identical to the slow path by construction.
"""

from bisect import bisect_left, insort

from repro import fastpath
from repro.profiling.counters import COUNTERS
from repro.storage.clog import TxnStatus
from repro.storage.snapshot import (
    UNDECIDED,
    creation_visible,
    creation_visible_fast,
    deletion_visible,
    deletion_visible_fast,
    version_is_dead,
)
from repro.storage.tuples import ABORTED, TupleVersion


class HeapTable:
    """MVCC storage for one shard on one node."""

    def __init__(self, sim, clog, shard_id=None):
        self.sim = sim
        self.clog = clog
        self.shard_id = shard_id
        self._chains = {}
        self.version_count = 0
        # Sorted key index for migration snapshot scans: built lazily on the
        # first ``sorted_keys()`` call and maintained incrementally from then
        # on, so repeated scans (crash-recovery retries, repair passes) stop
        # re-sorting the whole heap. Heaps that are never scanned (e.g. the
        # shard map replica) never pay for it.
        self._sorted_keys = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, key):
        return key in self._chains

    def keys(self):
        return self._chains.keys()

    def chain(self, key):
        """Version chain for ``key``, newest first (empty if unknown)."""
        return self._chains.get(key, [])

    def chain_length(self, key):
        return len(self._chains.get(key, ()))

    @property
    def key_count(self):
        return len(self._chains)

    def sorted_keys(self):
        """The incrementally maintained sorted key index (§3.2 fast scan).

        Returns the live index list — callers that scan while the heap can
        mutate must take a copy, exactly as ``sorted(heap.keys())`` would
        have materialised one.
        """
        keys = self._sorted_keys
        if keys is None:
            keys = self._sorted_keys = sorted(self._chains)
        return keys

    def _index_discard(self, key):
        keys = self._sorted_keys
        if keys is not None:
            index = bisect_left(keys, key)
            if index < len(keys) and keys[index] == key:
                del keys[index]

    # ------------------------------------------------------------------
    # Physical mutation (called by the transaction layer under locks)
    # ------------------------------------------------------------------
    def put_version(self, key, value, xmin):
        """Prepend a new version for ``key`` created by ``xmin``."""
        version = TupleVersion(key, value, xmin)
        chain = self._chains.get(key)
        if chain is None:
            chain = self._chains[key] = []
            if self._sorted_keys is not None:
                insort(self._sorted_keys, key)
        chain.insert(0, version)
        self.version_count += 1
        return version

    def mark_deleted(self, version, xmax):
        """Stamp ``version`` as superseded/deleted by transaction ``xmax``."""
        version.xmax = xmax
        version.cts_max = None  # the old deleter's hint no longer applies

    def unmark_deleted(self, version, xmax):
        """Roll back an xmax stamp if it still belongs to ``xmax``."""
        if version.xmax == xmax:
            version.xmax = None
            version.cts_max = None

    def remove_version(self, version):
        chain = self._chains.get(version.key)
        if chain and version in chain:
            chain.remove(version)
            self.version_count -= 1
            if not chain:
                del self._chains[version.key]
                self._index_discard(version.key)

    # ------------------------------------------------------------------
    # MVCC reads (generators: may prepare-wait via the CLOG)
    # ------------------------------------------------------------------
    def visible_version(self, key, snapshot):
        """Generator returning (version, versions_traversed) or (None, n).

        Walks the chain newest-first to the first version whose creation is
        visible to ``snapshot``; the row is then visible iff that version's
        deletion is not. ``versions_traversed`` lets callers charge CPU time
        proportional to chain length.

        The loop checks the hint bits *inline* — a stamped junk version
        costs three attribute loads to skip, no function call — and drops
        to :func:`creation_visible_fast` / the blocking generators only on
        a hint miss or a PREPARED writer. A non-None hint implies the
        writer is in a terminal CLOG state, which an active reader's own
        xid never is, so the hint can be trusted before the own-xid check.
        """
        clog = self.clog
        traversed = 0
        try:
            if not fastpath.clog_hints:
                for version in list(self.chain(key)):
                    traversed += 1
                    created = creation_visible_fast(version, snapshot, clog)
                    if created is UNDECIDED:
                        created = yield from creation_visible(version, snapshot, clog)
                    if not created:
                        continue
                    deleted = deletion_visible_fast(version, snapshot, clog)
                    if deleted is UNDECIDED:
                        deleted = yield from deletion_visible(version, snapshot, clog)
                    if deleted:
                        return None, traversed
                    return version, traversed
                return None, traversed
            start_ts = snapshot.start_ts
            for version in list(self.chain(key)):
                traversed += 1
                hint = version.cts_min
                if hint is not None:
                    if hint is ABORTED or hint > start_ts:
                        continue
                else:
                    created = creation_visible_fast(version, snapshot, clog)
                    if created is UNDECIDED:
                        created = yield from creation_visible(version, snapshot, clog)
                    if not created:
                        continue
                if version.xmax is None:
                    return version, traversed
                hint = version.cts_max
                if hint is not None:
                    # Terminal deleter: aborted or committed after us means
                    # the deletion is invisible and the version survives.
                    if hint is ABORTED or hint > start_ts:
                        return version, traversed
                    return None, traversed
                deleted = deletion_visible_fast(version, snapshot, clog)
                if deleted is UNDECIDED:
                    deleted = yield from deletion_visible(version, snapshot, clog)
                if deleted:
                    return None, traversed
                return version, traversed
            return None, traversed
        finally:
            COUNTERS.visibility_checks += 1
            COUNTERS.visibility_versions += traversed

    def read(self, key, snapshot):
        """Generator returning (value_or_None, versions_traversed)."""
        version, traversed = yield from self.visible_version(key, snapshot)
        if version is None:
            return None, traversed
        return version.value, traversed

    def latest_committed_or_locked(self, key):
        """Newest version not created by an aborted transaction (or None).

        This is the version an updater contends on after acquiring the row
        lock: it is either committed, prepared or belongs to the lock holder.
        """
        if fastpath.clog_hints:
            clog = self.clog
            for version in self.chain(key):
                hint = version.cts_min
                if hint is not None:
                    if hint is ABORTED:
                        continue
                    return version
                status = clog.status(version.xmin)
                if status is TxnStatus.ABORTED:
                    version.cts_min = ABORTED
                    continue
                if status is TxnStatus.COMMITTED:
                    version.cts_min = clog.commit_ts(version.xmin)
                return version
            return None
        for version in self.chain(key):
            if self.clog.status(version.xmin) is not TxnStatus.ABORTED:
                return version
        return None

    # ------------------------------------------------------------------
    # Snapshot scan (for migration snapshot copying, §3.2)
    # ------------------------------------------------------------------
    def scan_visible_fast(self, key, snapshot):
        """Non-blocking visibility for the batched migration scan.

        Returns the visible version for ``key``, ``None`` (no visible
        version), or :data:`UNDECIDED`. Unlike the per-version fast checks,
        *any* non-terminal writer — IN_PROGRESS as well as PREPARED —
        returns UNDECIDED: the batched scan inspects a key slightly before
        the instant the per-tuple path would, and only terminal CLOG
        verdicts (committed with a fixed timestamp, or aborted) are stable
        across that window. An in-progress writer could be PREPARED — and
        force a prepare-wait — by the time the legacy check would have run,
        so the caller must flush its deferred CPU charges and re-check
        through :meth:`visible_version` at the legacy instant.
        """
        if snapshot.xid is not None:
            return UNDECIDED
        clog = self.clog
        stamp = fastpath.clog_hints
        start_ts = snapshot.start_ts
        traversed = 0
        outcome = None
        for version in self._chains.get(key, ()):
            traversed += 1
            hint = version.cts_min if stamp else None
            if hint is None:
                status = clog.status(version.xmin)
                if status is TxnStatus.ABORTED:
                    if stamp:
                        version.cts_min = ABORTED
                    continue
                if status is not TxnStatus.COMMITTED:
                    return UNDECIDED
                hint = clog.commit_ts(version.xmin)
                if stamp:
                    version.cts_min = hint
            if hint is ABORTED or hint > start_ts:
                continue
            # Creation visible: the row survives iff its deletion is not.
            if version.xmax is None:
                outcome = version
                break
            dhint = version.cts_max if stamp else None
            if dhint is None:
                status = clog.status(version.xmax)
                if status is TxnStatus.ABORTED:
                    if stamp:
                        version.cts_max = ABORTED
                    outcome = version
                    break
                if status is not TxnStatus.COMMITTED:
                    return UNDECIDED
                dhint = clog.commit_ts(version.xmax)
                if stamp:
                    version.cts_max = dhint
            if dhint is ABORTED or dhint > start_ts:
                outcome = version
            break
        COUNTERS.visibility_checks += 1
        COUNTERS.visibility_versions += traversed
        return outcome

    def scan_at(self, snapshot):
        """Materialise all (key, value) pairs visible to ``snapshot``.

        Returns a generator *process* whose return value is the list of
        pairs; it prepare-waits on in-doubt writers, so the snapshot is
        transactionally consistent.
        """
        pairs = []
        if fastpath.migration_scan:
            keys = list(self.sorted_keys())
        else:
            keys = sorted(self._chains.keys())
        for key in keys:
            version, _traversed = yield from self.visible_version(key, snapshot)
            if version is not None:
                pairs.append((key, version.value))
        return pairs

    # ------------------------------------------------------------------
    # Vacuum
    # ------------------------------------------------------------------
    def vacuum(self, horizon_ts):
        """Remove versions no snapshot at/after ``horizon_ts`` can see.

        A version is reclaimable if its creator aborted, or its deletion
        committed with a timestamp <= ``horizon_ts``. Returns the number of
        versions removed. A long-running snapshot (e.g. a migration snapshot
        scan) holds ``horizon_ts`` back and lets chains grow.

        Dead versions whose hint bits already prove the verdict are dropped
        without touching the CLOG, and statuses resolved here are stamped
        back onto the surviving versions — so a long soak's periodic vacuum
        both reclaims memory eagerly and leaves the chains cheaper to read.
        Chains with nothing to reclaim are kept in place (no list rebuild).
        """
        clog = self.clog
        hints = fastpath.clog_hints
        removed = 0
        for key in list(self._chains.keys()):
            chain = self._chains[key]
            kept = None  # built lazily: only chains that lose a version
            for index, version in enumerate(chain):
                reclaim = False
                if hints and version.cts_min is ABORTED:
                    reclaim = True
                elif clog.status(version.xmin) is TxnStatus.ABORTED:
                    if hints:
                        version.cts_min = ABORTED
                    reclaim = True
                elif version.xmax is not None:
                    cts_max = version.cts_max if hints else None
                    if cts_max is None:
                        if clog.status(version.xmax) is TxnStatus.COMMITTED:
                            cts_max = clog.commit_ts(version.xmax)
                            if hints:
                                version.cts_max = cts_max
                    if cts_max is not None and cts_max is not ABORTED:
                        reclaim = cts_max <= horizon_ts
                if reclaim:
                    removed += 1
                    if kept is None:
                        kept = chain[:index]
                elif kept is not None:
                    kept.append(version)
            if kept is not None:
                if kept:
                    self._chains[key] = kept
                else:
                    del self._chains[key]
                    self._index_discard(key)
        self.version_count -= removed
        return removed

    def is_dead(self, version):
        return version_is_dead(version, self.clog)

    def clear(self):
        """Drop all data (used when cleaning up a migrated-away shard)."""
        self._chains.clear()
        self.version_count = 0
        self._sorted_keys = None
