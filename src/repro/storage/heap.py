"""Versioned heap tables: one per shard per node.

A heap table stores version chains newest-first per primary key, exactly the
structure the paper's protocols manipulate: MVCC reads traverse the chain
until the first version visible to the reader's snapshot; updates append a
new version and stamp the old one's ``xmax``; vacuum trims versions that no
active snapshot can see (long snapshot scans hold vacuum back, which is the
mechanism behind the paper's Figure 10 throughput dip).
"""

from repro.storage.clog import TxnStatus
from repro.storage.snapshot import creation_visible, deletion_visible, version_is_dead
from repro.storage.tuples import TupleVersion


class HeapTable:
    """MVCC storage for one shard on one node."""

    def __init__(self, sim, clog, shard_id=None):
        self.sim = sim
        self.clog = clog
        self.shard_id = shard_id
        self._chains = {}
        self.version_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, key):
        return key in self._chains

    def keys(self):
        return self._chains.keys()

    def chain(self, key):
        """Version chain for ``key``, newest first (empty if unknown)."""
        return self._chains.get(key, [])

    def chain_length(self, key):
        return len(self._chains.get(key, ()))

    @property
    def key_count(self):
        return len(self._chains)

    # ------------------------------------------------------------------
    # Physical mutation (called by the transaction layer under locks)
    # ------------------------------------------------------------------
    def put_version(self, key, value, xmin):
        """Prepend a new version for ``key`` created by ``xmin``."""
        version = TupleVersion(key, value, xmin)
        self._chains.setdefault(key, []).insert(0, version)
        self.version_count += 1
        return version

    def mark_deleted(self, version, xmax):
        """Stamp ``version`` as superseded/deleted by transaction ``xmax``."""
        version.xmax = xmax

    def unmark_deleted(self, version, xmax):
        """Roll back an xmax stamp if it still belongs to ``xmax``."""
        if version.xmax == xmax:
            version.xmax = None

    def remove_version(self, version):
        chain = self._chains.get(version.key)
        if chain and version in chain:
            chain.remove(version)
            self.version_count -= 1
            if not chain:
                del self._chains[version.key]

    # ------------------------------------------------------------------
    # MVCC reads (generators: may prepare-wait via the CLOG)
    # ------------------------------------------------------------------
    def visible_version(self, key, snapshot):
        """Generator returning (version, versions_traversed) or (None, n).

        Walks the chain newest-first to the first version whose creation is
        visible to ``snapshot``; the row is then visible iff that version's
        deletion is not. ``versions_traversed`` lets callers charge CPU time
        proportional to chain length.
        """
        traversed = 0
        for version in list(self.chain(key)):
            traversed += 1
            created = yield from creation_visible(version, snapshot, self.clog)
            if not created:
                continue
            deleted = yield from deletion_visible(version, snapshot, self.clog)
            if deleted:
                return None, traversed
            return version, traversed
        return None, traversed

    def read(self, key, snapshot):
        """Generator returning (value_or_None, versions_traversed)."""
        version, traversed = yield from self.visible_version(key, snapshot)
        if version is None:
            return None, traversed
        return version.value, traversed

    def latest_committed_or_locked(self, key):
        """Newest version not created by an aborted transaction (or None).

        This is the version an updater contends on after acquiring the row
        lock: it is either committed, prepared or belongs to the lock holder.
        """
        for version in self.chain(key):
            if self.clog.status(version.xmin) is not TxnStatus.ABORTED:
                return version
        return None

    # ------------------------------------------------------------------
    # Snapshot scan (for migration snapshot copying, §3.2)
    # ------------------------------------------------------------------
    def scan_at(self, snapshot):
        """Materialise all (key, value) pairs visible to ``snapshot``.

        Returns a generator *process* whose return value is the list of
        pairs; it prepare-waits on in-doubt writers, so the snapshot is
        transactionally consistent.
        """
        pairs = []
        for key in sorted(self._chains.keys()):
            version, _traversed = yield from self.visible_version(key, snapshot)
            if version is not None:
                pairs.append((key, version.value))
        return pairs

    # ------------------------------------------------------------------
    # Vacuum
    # ------------------------------------------------------------------
    def vacuum(self, horizon_ts):
        """Remove versions no snapshot at/after ``horizon_ts`` can see.

        A version is reclaimable if its creator aborted, or its deletion
        committed with a timestamp <= ``horizon_ts``. Returns the number of
        versions removed. A long-running snapshot (e.g. a migration snapshot
        scan) holds ``horizon_ts`` back and lets chains grow.
        """
        removed = 0
        for key in list(self._chains.keys()):
            chain = self._chains[key]
            kept = []
            for version in chain:
                if self.clog.status(version.xmin) is TxnStatus.ABORTED:
                    removed += 1
                    continue
                if (
                    version.xmax is not None
                    and self.clog.status(version.xmax) is TxnStatus.COMMITTED
                    and self.clog.commit_ts(version.xmax) <= horizon_ts
                ):
                    removed += 1
                    continue
                kept.append(version)
            if kept:
                self._chains[key] = kept
            else:
                del self._chains[key]
        self.version_count -= removed
        return removed

    def is_dead(self, version):
        return version_is_dead(version, self.clog)

    def clear(self):
        """Drop all data (used when cleaning up a migrated-away shard)."""
        self._chains.clear()
        self.version_count = 0
