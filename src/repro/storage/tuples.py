"""Multi-versioned tuples.

Mirrors PostgreSQL's tuple header as extended by PolarDB-PG (§2.2 of the
paper): each version records the transaction that created it (``xmin``) and,
once updated or deleted, the transaction that invalidated it (``xmax``). The
commit timestamp of the creating/deleting transaction lives in the CLOG, not
in the tuple, exactly as in the paper's design.
"""


class TupleVersion:
    """One version of a row.

    Attributes:
        key: primary key value.
        value: column payload (any Python object; workloads use dicts).
        xmin: id of the transaction that created this version.
        xmax: id of the transaction that deleted/superseded it, or None.
    """

    __slots__ = ("key", "value", "xmin", "xmax")

    def __init__(self, key, value, xmin, xmax=None):
        self.key = key
        self.value = value
        self.xmin = xmin
        self.xmax = xmax

    def __repr__(self):
        return "TupleVersion(key={!r}, xmin={}, xmax={})".format(
            self.key, self.xmin, self.xmax
        )
