"""Multi-versioned tuples.

Mirrors PostgreSQL's tuple header as extended by PolarDB-PG (§2.2 of the
paper): each version records the transaction that created it (``xmin``) and,
once updated or deleted, the transaction that invalidated it (``xmax``). The
commit timestamp of the creating/deleting transaction lives in the CLOG, not
in the tuple, exactly as in the paper's design.

On top of that the header carries PostgreSQL-style **hint bits**
(``cts_min``/``cts_max``): once a visibility check resolves the creating or
deleting transaction to a *terminal* CLOG state, it stamps the outcome on
the version so repeat checks skip the CLOG entirely. A hint is either

- ``None`` — not yet resolved (or resolved to a non-terminal state),
- the transaction's commit timestamp — it committed, or
- :data:`ABORTED` — it aborted.

Terminal CLOG states are immutable, so a stamped hint can never go stale;
the one mutable input is ``xmax`` itself (a deleter can abort and a later
transaction re-stamp the version), which is why
:meth:`~repro.storage.heap.HeapTable.mark_deleted` and
:meth:`~repro.storage.heap.HeapTable.unmark_deleted` reset ``cts_max``.
Hints are a pure cache of CLOG facts: stamping them never changes any
visibility verdict or any simulated timeline.
"""


class _AbortedHint:
    """Singleton hint marker: the stamped transaction is known aborted."""

    __slots__ = ()

    def __repr__(self):
        return "ABORTED"


#: Hint value recording that the creating/deleting transaction aborted.
ABORTED = _AbortedHint()


class TupleVersion:
    """One version of a row.

    Attributes:
        key: primary key value.
        value: column payload (any Python object; workloads use dicts).
        xmin: id of the transaction that created this version.
        xmax: id of the transaction that deleted/superseded it, or None.
        cts_min: hint for ``xmin`` — commit ts, :data:`ABORTED` or None.
        cts_max: hint for ``xmax`` — commit ts, :data:`ABORTED` or None.
    """

    __slots__ = ("key", "value", "xmin", "xmax", "cts_min", "cts_max")

    def __init__(self, key, value, xmin, xmax=None):
        self.key = key
        self.value = value
        self.xmin = xmin
        self.xmax = xmax
        self.cts_min = None
        self.cts_max = None

    def __repr__(self):
        return "TupleVersion(key={!r}, xmin={}, xmax={})".format(
            self.key, self.xmin, self.xmax
        )
