"""simrace: yield-point race & resource-leak rules (SIM101–SIM104).

The protocol packages (``txn``/``migration``/``cluster``/``faults``) are
written as cooperative generator processes: between two ``yield``s a step is
atomic, but *across* a yield anything may happen — another process mutates
the shared attribute you just read, the leader you resolved fails over, or
the fault injector throws :class:`~repro.sim.process.Interrupt` into the
suspension point. Both real bug classes this repo has already paid for are
instances of that pattern: the replay-slot leak (a ``Resource`` acquire
whose release was skipped on an interrupted path) and the epoch-fencing
races of the replicated 2PC. These rules catch the pattern statically, on
the yield-aware CFG of :mod:`repro.analysis.cfg`:

- **SIM101** — check-then-act across a yield: a local caches mutable shared
  state (``self.*`` attributes the module reassigns outside ``__init__``),
  the process yields, and the stale local is acted on without re-reading or
  re-validating the source.
- **SIM102** — a zero-argument ``.acquire()`` (sim ``Resource`` slots) whose
  event can reach function exit — normal *or* exceptional/Interrupt — with
  neither ``.release()`` nor ``.cancel_acquire(...)`` on that path.
- **SIM103** — epoch/route fencing: an epoch or leader/owner read before a
  yield that is not carried into (epoch) or re-read before (route) a later
  RPC send; the fenced value may no longer be current when the message is
  built.
- **SIM104** — an ``Event`` stored on ``self`` and settled
  (``succeed``/``fail``) from more than one function without a
  ``.triggered`` guard or an ownership transfer; double settling raises
  ``triggered twice`` at runtime.

All four are heuristic like the SIM00x family: false positives are silenced
with ``# simlint: ignore[CODE]`` on the flagged line (with a rationale
comment) or accepted in the baseline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.cfg import CFG, CFGNode, build_cfg, header_walk, walk_no_functions
from repro.analysis.rules import Rule, _terminal_name, rule

#: Reliable-RPC entry points plus the raw sends SIM004 polices; a message
#: built from pre-yield state is hazardous regardless of transport.
SEND_NAMES = frozenset({"rpc_send", "rpc_broadcast", "send", "broadcast"})
#: Attribute / helper names that denote a configuration epoch.
EPOCH_NAMES = frozenset({"epoch", "group_epoch", "epoch_of"})
#: Attribute / helper names that resolve a routing destination.
ROUTE_NAMES = frozenset(
    {"leader_node_id", "leader_of", "shard_owner", "owner_of", "primary_of"}
)


def receiver_key(node: ast.AST) -> str | None:
    """Normalize a Name / dotted-Attribute chain to ``"a.b.c"`` (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _assign_parts(stmt: ast.stmt):
    """(targets, value) of an assignment statement, else (None, None)."""
    if isinstance(stmt, ast.Assign):
        return stmt.targets, stmt.value
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return [stmt.target], stmt.value
    return None, None


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _binds_name(stmt: ast.stmt, name: str) -> bool:
    """Does this statement (re)bind local ``name``?"""
    targets, _value = _assign_parts(stmt)
    if targets is None:
        if isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            targets = [stmt.target]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            targets = [i.optional_vars for i in stmt.items if i.optional_vars]
        else:
            return False
    return any(name in _target_names(t) for t in targets if t is not None)


def _attr_reads(expr: ast.AST) -> set[str]:
    """Attribute names read (Load context) anywhere inside ``expr``."""
    return {
        node.attr
        for node in walk_no_functions(expr)
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load)
    }


def _name_reads(expr: ast.AST) -> set[str]:
    return {
        node.id
        for node in walk_no_functions(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def _uses_name(expr: ast.AST, name: str) -> bool:
    for node in walk_no_functions(expr):
        if isinstance(node, ast.Name) and node.id == name and isinstance(node.ctx, ast.Load):
            return True
    return False


def _header_uses_name(stmt: ast.AST, name: str) -> bool:
    for node in header_walk(stmt):
        if isinstance(node, ast.Name) and node.id == name and isinstance(node.ctx, ast.Load):
            return True
    return False


# ----------------------------------------------------------------------
class ModuleIndex:
    """Per-module facts shared by the simrace rules (built once, cached)."""

    def __init__(self, module) -> None:
        tree = module.tree
        #: attr -> functions with a plain ``x.attr = ...`` store (not __init__)
        self.attr_writers: dict[str, set[str]] = {}
        #: attr -> functions with an ``x.attr op= ...`` store (not __init__)
        self.attr_aug_writers: dict[str, set[str]] = {}
        self.releases_by_func: dict[str, set[str]] = {}
        self.event_attrs: set[str] = set()
        self._cfgs: dict[int, CFG] = {}

        for func in _functions(tree):
            releases = self.releases_by_func.setdefault(func.name, set())
            for node in walk_no_functions(ast.Module(body=func.body, type_ignores=[])):
                if isinstance(node, ast.Assign) and func.name != "__init__":
                    for target in node.targets:
                        for attr in self._attr_store_names(target):
                            self.attr_writers.setdefault(attr, set()).add(func.name)
                elif isinstance(node, ast.AugAssign) and func.name != "__init__":
                    for attr in self._attr_store_names(node.target):
                        self.attr_aug_writers.setdefault(attr, set()).add(func.name)
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    if node.func.attr in ("release", "cancel_acquire"):
                        key = receiver_key(node.func.value)
                        if key is not None:
                            releases.add(key)

    @staticmethod
    def _attr_store_names(target: ast.expr) -> Iterator[str]:
        if isinstance(target, ast.Attribute):
            yield target.attr
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from ModuleIndex._attr_store_names(element)

    def mutable_attrs_for(self, func_name: str) -> set[str]:
        """Attributes a capture in ``func_name`` must treat as shared-mutable.

        Two stability heuristics, calibrated on this tree:

        - attrs written *only* with ``+=``-style AugAssign are monotonic
          counters/allocators — reading one is not check-then-act state;
        - an attr whose every writer is ``func_name`` itself is single-writer
          state (a pump cursor): no concurrent process moves it under us.
        """
        mutable = set()
        for attr, writers in self.attr_writers.items():
            all_writers = writers | self.attr_aug_writers.get(attr, set())
            if all_writers and all_writers != {func_name}:
                mutable.add(attr)
        return mutable

    @classmethod
    def of(cls, module) -> "ModuleIndex":
        index = getattr(module, "_simrace_index", None)
        if index is None:
            index = cls(module)
            index._collect_event_attrs(module.tree)
            module._simrace_index = index
        return index

    def _collect_event_attrs(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            targets, value = _assign_parts(node) if isinstance(node, ast.stmt) else (None, None)
            if targets is None or not isinstance(value, ast.Call):
                continue
            maker = _terminal_name(value.func)
            if maker not in ("event", "Event"):
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self.event_attrs.add(target.attr)

    def cfg(self, func) -> CFG:
        cached = self._cfgs.get(id(func))
        if cached is None:
            cached = build_cfg(func)
            self._cfgs[id(func)] = cached
        return cached


# ----------------------------------------------------------------------
# Shared phase-flip path search: phase 0 before the first yield after the
# capture, phase 1 after it. Callers supply the per-statement verdicts.
# ----------------------------------------------------------------------
def _phased_search(cfg, start: CFGNode, kill, hit) -> list[tuple[ast.stmt, object]]:
    """Walk ``cfg`` from ``start``'s successors, flipping a phase bit at
    yield nodes. ``kill(stmt, phase)`` prunes a branch; ``hit(stmt, phase)``
    (checked only in phase 1) reports a finding and prunes. Returns the
    findings as ``(stmt, payload)`` pairs, deduplicated by statement."""
    findings: dict[int, tuple[ast.stmt, object]] = {}
    stack = [(succ, 0) for succ in start.succ]
    stack += [(succ, 1) for succ in start.exc_succ]
    seen: set[tuple[int, int]] = set()
    while stack:
        node, phase = stack.pop()
        if (node.index, phase) in seen or node.is_terminal:
            continue
        seen.add((node.index, phase))
        if node.stmt is not None:
            if kill(node.stmt, phase):
                continue
            if phase == 1:
                payload = hit(node.stmt, phase)
                if payload is not None:
                    findings.setdefault(id(node.stmt), (node.stmt, payload))
                    continue
        next_phase = 1 if node.yields else phase
        for succ in node.succ:
            stack.append((succ, next_phase))
        for succ in node.exc_succ:
            stack.append((succ, 1 if node.yields else next_phase))
    return list(findings.values())


# ----------------------------------------------------------------------
@rule
class StaleReadAcrossYieldRule(Rule):
    """SIM101 — check-then-act on shared attributes across a yield.

    ``v = self.x`` (where some method reassigns ``self.x``) followed by a
    yield and then a dependent use of ``v`` acts on state that may have
    changed while the process was suspended. Re-read the attribute after
    the yield, or re-validate before acting. Exemptions: using ``v`` in a
    ``return`` (the caller decides), and the save/restore idiom
    ``self.x = v`` with a bare local (writing back a deliberately captured
    snapshot).
    """

    code = "SIM101"
    title = "stale read across yield"

    def check(self, module):
        index = ModuleIndex.of(module)
        for func in _functions(module.tree):
            cfg = index.cfg(func)
            if not any(cfg.yield_nodes()):
                continue
            mutable = index.mutable_attrs_for(func.name) - self.config.simrace_stable_attrs
            if mutable:
                yield from self._check_function(cfg, mutable)

    def _check_function(self, cfg, mutable):
        taint: dict[str, set[str]] = {}
        flagged: set[tuple[int, str]] = set()
        for node in cfg.stmt_nodes():
            targets, value = _assign_parts(node.stmt)
            if targets is None:
                continue
            sources = _attr_reads(value) & mutable
            for read in _name_reads(value):
                sources |= taint.get(read, set())
            names = [n for t in targets for n in _target_names(t)]
            for name in names:
                taint[name] = set(sources)
            if not sources:
                continue
            for name in names:
                for use_stmt, srcs in self._search(cfg, node, name, sources):
                    if (use_stmt.lineno, name) in flagged:
                        continue
                    flagged.add((use_stmt.lineno, name))
                    yield use_stmt, (
                        "{!r} (from {} at line {}) may be stale: the process "
                        "yielded since it was read; re-read or re-validate "
                        "the attribute before acting on it".format(
                            name,
                            "/".join("self.{}".format(s) for s in sorted(srcs)),
                            node.stmt.lineno,
                        )
                    )

    def _search(self, cfg, start, name, sources):
        def kill(stmt, phase):
            if _binds_name(stmt, name):
                return True
            if phase == 1 and self._revalidates(stmt, sources):
                return True
            return False

        def hit(stmt, phase):
            if isinstance(stmt, (ast.Return, ast.ExceptHandler)):
                return None
            if self._is_restore(stmt, name, sources):
                return None
            if _header_uses_name(stmt, name):
                return sources
            return None

        return _phased_search(cfg, start, kill, hit)

    @staticmethod
    def _revalidates(stmt, sources):
        for node in header_walk(stmt):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr in sources
            ):
                return True
        return False

    @staticmethod
    def _is_restore(stmt, name, sources):
        targets, value = _assign_parts(stmt)
        if targets is None or len(targets) != 1:
            return False
        target = targets[0]
        return (
            isinstance(target, ast.Attribute)
            and target.attr in sources
            and isinstance(value, ast.Name)
            and value.id == name
        )


# ----------------------------------------------------------------------
@rule
class LeakedAcquireRule(Rule):
    """SIM102 — acquire without release/cancel_acquire on every path.

    A sim ``Resource`` slot is acquired with a zero-argument ``.acquire()``
    returning an event. Every path from the acquire to function exit —
    including the exceptional continuations created by an Interrupt thrown
    at a later yield — must either ``.release()`` the resource (if the
    grant was taken) or ``.cancel_acquire(event)`` it (if still queued).
    A path that reaches exit with neither wedges every later waiter: the
    PR 5 replay-slot leak class.
    """

    code = "SIM102"
    title = "leaked acquire"

    def check(self, module):
        index = ModuleIndex.of(module)
        for func in _functions(module.tree):
            cfg = index.cfg(func)
            for node in cfg.stmt_nodes():
                finding = self._check_acquire(index, func, cfg, node)
                if finding is not None:
                    yield finding

    def _check_acquire(self, index, func, cfg, node):
        targets, value = _assign_parts(node.stmt)
        if targets is None or len(targets) != 1:
            return None
        if not isinstance(targets[0], ast.Name):
            return None  # stored on self / in a container: tracked elsewhere
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "acquire"
            and not value.args
            and not value.keywords
        ):
            return None
        key = receiver_key(value.func.value)
        if key is None:
            return None
        var = targets[0].id
        if self._escapes(func, node.stmt, var):
            return None
        leak_kinds = self._leak_paths(index, cfg, node, key)
        if not leak_kinds:
            return None
        where = " and ".join(sorted(leak_kinds))
        return node.stmt, (
            "acquire of {key} can leak: a {where} reaches function exit "
            "without {key}.release() or {key}.cancel_acquire({var}); waiters "
            "behind the lost slot wedge forever".format(key=key, where=where, var=var)
        )

    @staticmethod
    def _escapes(func, acquire_stmt, var):
        """The event handle leaves the function: someone else may clean up."""
        for node in walk_no_functions(ast.Module(body=func.body, type_ignores=[])):
            if isinstance(node, ast.Return) and node.value is not None:
                if _uses_name(node.value, var):
                    return True
            elif isinstance(node, ast.Assign) and node is not acquire_stmt:
                if _uses_name(node.value, var) and any(
                    not isinstance(t, ast.Name) for t in node.targets
                ):
                    return True
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("append", "add", "put") and any(
                    _uses_name(arg, var) for arg in node.args
                ):
                    return True
        return False

    def _leak_paths(self, index, cfg, start, key):
        """Which kinds of paths (normal / Interrupt) leak the acquire."""
        kinds: set[str] = set()
        stack = [(succ, False) for succ in start.succ]
        seen: set[tuple[int, bool]] = set()
        while stack:
            node, via_exc = stack.pop()
            if (node.index, via_exc) in seen:
                continue
            seen.add((node.index, via_exc))
            if node.is_terminal:
                kinds.add("Interrupt/exception path" if via_exc else "normal path")
                continue
            if node.stmt is not None and self._closes(index, node.stmt, key):
                continue
            for succ in node.succ:
                stack.append((succ, via_exc))
            for succ in node.exc_succ:
                stack.append((succ, True))
        return kinds

    @staticmethod
    def _closes(index, stmt, key):
        for node in header_walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                if node.func.attr in ("release", "cancel_acquire"):
                    if receiver_key(node.func.value) == key:
                        return True
                # One-level interprocedural: self._helper() that releases.
                if isinstance(node.func.value, ast.Name) and node.func.value.id == "self":
                    if key in index.releases_by_func.get(node.func.attr, ()):
                        return True
            elif isinstance(node.func, ast.Name):
                if key in index.releases_by_func.get(node.func.id, ()):
                    return True
        return False


# ----------------------------------------------------------------------
@rule
class UnfencedEpochRule(Rule):
    """SIM103 — epoch / route read before a yield, acted on after it.

    Two complementary hazards around RPC sends:

    - *epoch*: a configuration epoch captured before a yield is neither
      re-read nor carried in a send issued after the yield — the receiver
      cannot fence out the stale sender (the PR 6 StaleEpoch class).
    - *route*: a destination resolved from leader/owner state before a
      yield is used as a send argument after it — the leader may have
      failed over while the process was suspended.
    """

    code = "SIM103"
    title = "unfenced epoch/route across yield"

    def check(self, module):
        index = ModuleIndex.of(module)
        for func in _functions(module.tree):
            cfg = index.cfg(func)
            if not any(cfg.yield_nodes()):
                continue
            for node in cfg.stmt_nodes():
                targets, value = _assign_parts(node.stmt)
                if targets is None or len(targets) != 1:
                    continue
                if not isinstance(targets[0], ast.Name):
                    continue
                source = self._fence_source(value)
                if source is None:
                    continue
                kind, src_name = source
                var = targets[0].id
                yield from self._trace(cfg, node, var, kind, src_name)

    @staticmethod
    def _fence_source(value):
        name = None
        if isinstance(value, ast.Attribute) and isinstance(value.ctx, ast.Load):
            name = value.attr
        elif isinstance(value, ast.Call):
            name = _terminal_name(value.func)
        if name in EPOCH_NAMES:
            return ("epoch", name)
        if name in ROUTE_NAMES:
            return ("route", name)
        return None

    def _trace(self, cfg, start, var, kind, src_name):
        def kill(stmt, phase):
            if _binds_name(stmt, var):
                return True
            if phase == 1 and self._rereads(stmt, src_name):
                return True
            return False

        def hit(stmt, phase):
            for call in self._send_calls(stmt):
                carried = any(_uses_name(arg, var) for arg in call.args) or any(
                    _uses_name(kw.value, var) for kw in call.keywords
                )
                if kind == "epoch" and not carried:
                    return "unfenced"
                if kind == "route" and carried:
                    return "stale"
            return None

        for stmt, verdict in _phased_search(cfg, start, kill, hit):
            if verdict == "unfenced":
                yield stmt, (
                    "send after a yield does not carry the epoch fence "
                    "{!r} captured at line {}; re-read the epoch after the "
                    "yield or pass {!r} so the receiver can fence staleness".format(
                        src_name, start.stmt.lineno, var
                    )
                )
            else:
                yield stmt, (
                    "destination {!r} (from {!r} at line {}) may be stale "
                    "after the yield: the leader/owner can change while "
                    "suspended; re-resolve it before sending".format(
                        var, src_name, start.stmt.lineno
                    )
                )

    @staticmethod
    def _rereads(stmt, src_name):
        for node in header_walk(stmt):
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if node.attr == src_name:
                    return True
            elif isinstance(node, ast.Call) and _terminal_name(node.func) == src_name:
                return True
        return False

    @staticmethod
    def _send_calls(stmt):
        for node in header_walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in SEND_NAMES
            ):
                yield node


# ----------------------------------------------------------------------
@rule
class UnguardedEventSettleRule(Rule):
    """SIM104 — a shared Event settled from two processes without a guard.

    ``Event.succeed()`` / ``.fail()`` raise ``triggered twice`` when the
    event is already settled. An event stored on ``self`` and settled from
    more than one function is a rendezvous between concurrent processes:
    every settle site needs either a ``.triggered`` guard or an ownership
    transfer (swap the attribute to a local and clear it — the ``_kick``
    idiom — or ``pop`` it from a registry) so only one process can win.
    """

    code = "SIM104"
    title = "unguarded event settle"

    def check(self, module):
        index = ModuleIndex.of(module)
        if not index.event_attrs:
            return
        sites: dict[str, list[tuple[str, ast.Call, bool]]] = {}
        for func in _functions(module.tree):
            for attr, call, guarded in self._settle_sites(index, func):
                sites.setdefault(attr, []).append((func.name, call, guarded))
        for attr, entries in sorted(sites.items()):
            functions = {name for name, _call, _guarded in entries}
            if len(functions) < 2:
                continue
            for name, call, guarded in entries:
                if guarded:
                    continue
                yield call, (
                    "event attribute 'self.{attr}' is settled from {n} "
                    "functions ({fns}); an unguarded {verb}() loses the race "
                    "and raises 'triggered twice' — guard with .triggered or "
                    "take ownership (swap the attribute to a local, clear it, "
                    "then settle)".format(
                        attr=attr,
                        n=len(functions),
                        fns=", ".join(sorted(functions)),
                        verb=call.func.attr,
                    )
                )

    def _settle_sites(self, index, func):
        transfers, aliases = self._aliases(index, func)
        for node in walk_no_functions(ast.Module(body=func.body, type_ignores=[])):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("succeed", "fail")
            ):
                continue
            receiver = node.func.value
            attr = None
            owned = False
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and receiver.attr in index.event_attrs
            ):
                attr = receiver.attr
            elif isinstance(receiver, ast.Name) and receiver.id in aliases:
                attr = aliases[receiver.id]
                owned = receiver.id in transfers
            if attr is None:
                continue
            guarded = owned or self._has_triggered_guard(func, node)
            yield attr, node, guarded

    def _aliases(self, index, func):
        """Locals aliasing ``self.X`` events; which took ownership."""
        aliases: dict[str, str] = {}
        transfers: set[str] = set()
        cleared: set[str] = set()
        for node in walk_no_functions(ast.Module(body=func.body, type_ignores=[])):
            if not isinstance(node, ast.Assign):
                continue
            # Tuple swap: ``armed, self.X = self.X, None``
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Tuple)
                and isinstance(node.value, ast.Tuple)
                and len(node.targets[0].elts) == len(node.value.elts)
            ):
                pairs = zip(node.targets[0].elts, node.value.elts)
            else:
                pairs = [(t, node.value) for t in node.targets]
            for target, value in pairs:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr in index.event_attrs
                    and not (
                        isinstance(value, ast.Attribute)
                        and receiver_key(value) == "self." + target.attr
                    )
                ):
                    cleared.add(target.attr)  # attribute replaced/cleared
                if (
                    isinstance(target, ast.Name)
                    and isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                    and value.attr in index.event_attrs
                ):
                    aliases[target.id] = value.attr
        for name, attr in aliases.items():
            if attr in cleared:
                transfers.add(name)
        return transfers, aliases

    @staticmethod
    def _has_triggered_guard(func, settle_call):
        """Is the settle nested under an ``if`` testing ``.triggered``?"""

        def guarded(stmts, active):
            for stmt in stmts:
                if isinstance(stmt, ast.If):
                    tests_triggered = any(
                        isinstance(n, ast.Attribute) and n.attr == "triggered"
                        for n in walk_no_functions(stmt.test)
                    )
                    if any(n is settle_call for n in walk_no_functions(stmt.test)):
                        return active
                    for block in (stmt.body, stmt.orelse):
                        found = guarded(block, active or tests_triggered)
                        if found is not None:
                            return found
                    continue
                # Other compound statements: recurse into child blocks first.
                blocks: list[ast.stmt] = []
                for _field, value in ast.iter_fields(stmt):
                    if isinstance(value, list):
                        for child in value:
                            if isinstance(child, ast.ExceptHandler):
                                blocks.extend(child.body)
                            elif isinstance(child, ast.stmt):
                                blocks.append(child)
                if blocks:
                    found = guarded(blocks, active)
                    if found is not None:
                        return found
                for node in walk_no_functions(stmt):
                    if node is settle_call:
                        return active
            return None

        return bool(guarded(func.body, False))
