"""simlint: AST-based determinism & protocol-safety analysis for this repo.

The chaos soak tests assert *bit-identical* event timelines across runs, so
any hidden nondeterminism — wall-clock reads, unseeded ``random``, iteration
over hash-ordered containers in protocol paths, raw network sends that hang
under partitions — silently breaks the reproduction's core guarantee. The
rules in :mod:`repro.analysis.rules` encode those hazards as static checks;
:mod:`repro.analysis.engine` runs them over the tree, honouring per-line
``# simlint: ignore[RULE]`` suppressions and a JSON baseline of accepted
pre-existing findings.

:mod:`repro.analysis.simrace` extends the catalogue with yield-point race
rules (SIM101–SIM104): check-then-act across a yield, leaked resource
acquires on Interrupt paths, unfenced epoch/route reads, and unguarded
event settles — evaluated on the yield-aware control-flow graphs of
:mod:`repro.analysis.cfg`.

Entry point: ``repro lint`` (see :mod:`repro.analysis.cli`).
"""

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import (
    LintConfig,
    analyze_paths,
    analyze_source,
    default_config,
)
from repro.analysis.rules import RULES
from repro.analysis.violations import Violation

__all__ = [
    "LintConfig",
    "RULES",
    "Violation",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "default_config",
    "load_baseline",
    "write_baseline",
]
