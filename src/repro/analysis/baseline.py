"""Baseline files: accepted pre-existing findings that don't block CI.

A baseline is a JSON document mapping violation fingerprints (rule | path |
stripped source line) to accepted counts. ``repro lint --baseline FILE``
subtracts baselined findings from the report, so a legacy tree can turn the
gate on immediately while *new* violations — including a second copy of a
baselined one — still fail the build. Regenerate with ``--write-baseline``
after deliberate changes.
"""

from __future__ import annotations

import json
from collections import Counter

BASELINE_VERSION = 1


def load_baseline(path: str) -> Counter:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("version") != BASELINE_VERSION:
        raise ValueError(
            "unsupported baseline version {!r} in {}".format(document.get("version"), path)
        )
    return Counter(document.get("entries", {}))


def write_baseline(violations, path: str) -> None:
    entries = Counter(v.fingerprint for v in violations)
    document = {
        "version": BASELINE_VERSION,
        "entries": dict(sorted(entries.items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")


def apply_baseline(violations, baseline: Counter):
    """Split ``violations`` into (new, baselined) against accepted counts."""
    remaining = Counter(baseline)
    fresh, accepted = [], []
    for violation in violations:
        if remaining[violation.fingerprint] > 0:
            remaining[violation.fingerprint] -= 1
            accepted.append(violation)
        else:
            fresh.append(violation)
    return fresh, accepted
