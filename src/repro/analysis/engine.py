"""simlint engine: scoping, suppression, and the per-file rule driver."""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from fnmatch import fnmatch

import repro.analysis.simrace  # noqa: F401  (registers SIM101–SIM104)
from repro.analysis.rules import RULES
from repro.analysis.violations import Violation, sort_key
from repro.config import LINT_RULE_SCOPES

#: Trailing-comment suppression: ``x = set()  # simlint: ignore[SIM003]``
#: (several codes may be listed, comma-separated).
_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class RuleScope:
    """Path scoping for one rule, matched with fnmatch on posix paths.

    ``include`` empty means "everywhere under the linted roots"; ``exclude``
    always wins. Patterns are matched against the path relative to the lint
    root with a leading ``*/`` tolerance, so ``*/sim/kernel.py`` matches both
    ``src/repro/sim/kernel.py`` and a bare ``sim/kernel.py``.
    """

    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def matches(self, path: str) -> bool:
        if self.include and not any(_path_match(path, p) for p in self.include):
            return False
        return not any(_path_match(path, p) for p in self.exclude)


def _path_match(path: str, pattern: str) -> bool:
    return fnmatch(path, pattern) or fnmatch("/" + path, pattern.lstrip("*"))


@dataclass
class LintConfig:
    """Which rules run where, plus the cross-module knowledge they need."""

    scopes: dict[str, RuleScope] = field(default_factory=dict)
    #: Attribute names known (from other modules) to hold plain sets —
    #: feeds SIM003's inference across module boundaries.
    known_set_attrs: frozenset[str] = frozenset()
    #: Exception type names SIM006 treats as "must not be swallowed".
    swallowed_exceptions: frozenset[str] = frozenset(
        {"SimulationError", "SimError", "Interrupt"}
    )
    #: Attribute names SIM101 treats as stable across yields even though
    #: the module reassigns them somewhere (calibration escape hatch).
    simrace_stable_attrs: frozenset[str] = frozenset()

    def scope_for(self, rule_code: str) -> RuleScope:
        return self.scopes.get(rule_code, RuleScope())


def default_config() -> LintConfig:
    """The scoping used by ``repro lint`` on this tree.

    Which rule runs where is declared in one place —
    :data:`repro.config.LINT_RULE_SCOPES` (see the rationale comments
    there); this just materializes that table into :class:`RuleScope`
    objects.
    """
    return LintConfig(
        scopes={
            code: RuleScope(
                include=tuple(spec.get("include", ())),
                exclude=tuple(spec.get("exclude", ())),
            )
            for code, spec in LINT_RULE_SCOPES.items()
        },
    )


class ModuleUnderLint:
    """Parsed module handed to each rule."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppressions(self) -> dict[int, set[str]]:
        table: dict[int, set[str]] = {}
        for index, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                codes = {c.strip().upper() for c in match.group(1).split(",") if c.strip()}
                table[index] = codes
        return table


def analyze_source(source: str, path: str = "<string>", config: LintConfig | None = None):
    """Run every in-scope rule over one source string."""
    config = config or default_config()
    module = ModuleUnderLint(path, source)
    suppressions = module.suppressions()
    violations = []
    for code, rule_cls in sorted(RULES.items()):
        if not config.scope_for(code).matches(path):
            continue
        for node, message in rule_cls(config).check(module):
            lineno = getattr(node, "lineno", 1)
            if code in suppressions.get(lineno, ()):
                continue
            violations.append(
                Violation(
                    rule=code,
                    path=path,
                    line=lineno,
                    col=getattr(node, "col_offset", 0),
                    message=message,
                    line_text=module.line_text(lineno),
                )
            )
    return sorted(violations, key=sort_key)


def iter_python_files(paths):
    """Yield .py files under each path (files are yielded as-is), sorted."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames.sort()
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def analyze_paths(paths, config: LintConfig | None = None, root: str | None = None):
    """Lint every python file under ``paths``; returns sorted violations.

    Paths in the report are relative to ``root`` (default: the current
    working directory) and posix-style, so baselines are machine-portable.
    """
    config = config or default_config()
    root = root or os.getcwd()
    violations = []
    errors = []
    for filepath in iter_python_files(paths):
        relpath = os.path.relpath(filepath, root).replace(os.sep, "/")
        try:
            with open(filepath, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            errors.append("{}: unreadable: {}".format(relpath, exc))
            continue
        try:
            violations.extend(analyze_source(source, path=relpath, config=config))
        except SyntaxError as exc:
            errors.append("{}: syntax error: {}".format(relpath, exc))
    return sorted(violations, key=sort_key), errors
