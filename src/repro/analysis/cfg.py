"""Yield-aware control-flow graphs for generator-based protocol code.

The simrace rules (SIM101–SIM104) reason about what can happen *across* a
cooperative yield: another process may mutate shared state, or an
``interrupt()`` may be delivered at the suspension point. Plain AST walks
cannot answer "is there a path from this acquire to function exit that skips
the release?", so this module builds a small statement-level CFG per
function with the scheduling semantics of :mod:`repro.sim` baked in:

- Every statement is one node. Compound statements (``if``/``while``/
  ``for``/``try``/``with``) are represented by their *header*; their bodies
  become separate nodes. A node's ``yields`` lists the ``yield`` /
  ``yield from`` expressions evaluated by that node itself (header
  expressions only — yields inside a loop body belong to the body nodes).
- Yield nodes are **preemption points**: an Interrupt can be thrown at any
  of them, so each yield node (and each explicit ``raise``) gets exception
  edges (``exc_succ``) to the innermost handlers / ``finally`` gate and,
  transitively, to the synthetic ``raise_exit`` node.
- **Single-fault model**: the fault injector delivers at most one Interrupt
  per task lifetime, and cleanup code runs after the fault has already
  fired. Yields inside ``except`` handlers and ``finally`` bodies therefore
  do *not* spawn exception edges (``node.in_cleanup`` is set on them); this
  is what makes the standard try/except-Interrupt/finally-release idiom of
  the migration data path analyzable without flagging the cleanup itself.
- ``finally`` blocks are modeled with a *gate* node. Whatever routes into
  the gate (normal fall-through, an exception edge, a ``return`` /
  ``break`` / ``continue``) registers its real target as a *continuation*;
  after the whole function is built, the finally body's fall-through edges
  are wired to the union of registered continuations. Continuations no
  path ever used are therefore absent — ``acquire(); try: ...;
  finally: pass`` followed by ``release()`` does not grow a phantom early
  exit unless something in the ``try`` can actually escape. Nested
  finallys chain gate-to-gate, which joins escape kinds at each gate: an
  over-approximation (extra paths, never missing ones).

Terminals: ``exit`` (normal return / fall off the end) and ``raise_exit``
(uncaught exception — the process dies, or the Interrupt propagates to the
crash-injection driver). Reaching either without passing a cleanup action
is exactly the question SIM102 asks.
"""

from __future__ import annotations

import ast
from typing import Iterator

ENTRY = "entry"
EXIT = "exit"
RAISE_EXIT = "raise_exit"
STMT = "stmt"
FINALLY_GATE = "finally"


class CFGNode:
    """One statement (or synthetic point) in a function's CFG."""

    __slots__ = ("index", "kind", "stmt", "succ", "exc_succ", "yields", "in_cleanup")

    def __init__(self, index: int, kind: str, stmt: ast.AST | None = None) -> None:
        self.index = index
        self.kind = kind
        self.stmt = stmt
        self.succ: list[CFGNode] = []  # normal control flow
        self.exc_succ: list[CFGNode] = []  # Interrupt-at-yield / raise flow
        self.yields: list[ast.expr] = []  # Yield/YieldFrom evaluated here
        self.in_cleanup = False  # inside an except handler / finally body

    @property
    def is_terminal(self) -> bool:
        return self.kind in (EXIT, RAISE_EXIT)

    def add_succ(self, node: "CFGNode") -> None:
        if node not in self.succ:
            self.succ.append(node)

    def add_exc(self, node: "CFGNode") -> None:
        if node not in self.exc_succ:
            self.exc_succ.append(node)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = getattr(self.stmt, "lineno", "-")
        return "<CFGNode {} {} L{}>".format(self.index, self.kind, where)


class CFG:
    """The graph for one function: ``entry`` → statements → terminals."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.nodes: list[CFGNode] = []
        self.entry = self.new_node(ENTRY)
        self.exit = self.new_node(EXIT)
        self.raise_exit = self.new_node(RAISE_EXIT)

    def new_node(self, kind: str, stmt: ast.AST | None = None) -> CFGNode:
        node = CFGNode(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        return node

    def stmt_nodes(self) -> Iterator[CFGNode]:
        for node in self.nodes:
            if node.stmt is not None and node.kind == STMT:
                yield node

    def yield_nodes(self) -> Iterator[CFGNode]:
        for node in self.nodes:
            if node.yields:
                yield node


def header_yields(stmt: ast.stmt) -> list[ast.expr]:
    """Yield/YieldFrom expressions evaluated by the statement itself.

    For compound statements only the header expressions count (``if``/
    ``while`` test, ``for`` iterable, ``with`` items); body statements get
    their own nodes. Nested function/lambda bodies never count — their
    yields belong to the inner generator.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        exprs: list[ast.AST] = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        exprs = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        exprs = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        exprs = []
    else:
        exprs = [stmt]
    found: list[ast.expr] = []
    for expr in exprs:
        for node in walk_no_functions(expr):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                found.append(node)
    return found


def header_walk(stmt: ast.AST) -> Iterator[ast.AST]:
    """Walk the expressions *this CFG node itself* evaluates.

    A compound statement's node represents only its header (test / iterable
    / context managers); the body statements have their own nodes, so rules
    inspecting a node must not match things that live in the body.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        exprs: list[ast.AST] = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        exprs = [stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        exprs = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, ast.ExceptHandler):
        exprs = [stmt.type] if stmt.type is not None else []
    elif isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        exprs = []
    elif isinstance(stmt, ast.Match):
        exprs = [stmt.subject]
    else:
        exprs = [stmt]
    for expr in exprs:
        yield from walk_no_functions(expr)


def walk_no_functions(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/lambda scopes."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


class _GateInfo:
    """Pending continuations of one finally gate, filled while building."""

    __slots__ = ("gate", "body_exits", "continuations")

    def __init__(self, gate: CFGNode) -> None:
        self.gate = gate
        self.body_exits: list[CFGNode] = []  # finally-body fall-through nodes
        self.continuations: list[CFGNode] = []

    def add_continuation(self, target: CFGNode) -> None:
        if target not in self.continuations:
            self.continuations.append(target)


class _Frame:
    """Builder context: where exceptions, escapes and breaks go right now."""

    __slots__ = ("exc_targets", "loop", "gate_stack", "in_cleanup")

    def __init__(self, exc_targets, loop, gate_stack, in_cleanup) -> None:
        self.exc_targets = exc_targets  # list[CFGNode]
        self.loop = loop  # (header_node, breaks, gate_depth) or None
        self.gate_stack = gate_stack  # enclosing finally gates, innermost last
        self.in_cleanup = in_cleanup

    def replaced(self, **kw) -> "_Frame":
        frame = _Frame(self.exc_targets, self.loop, self.gate_stack, self.in_cleanup)
        for key, value in kw.items():
            setattr(frame, key, value)
        return frame


class _Builder:
    def __init__(self, func) -> None:
        self.cfg = CFG(func)
        self.gates: dict[int, _GateInfo] = {}

    def build(self) -> CFG:
        cfg = self.cfg
        frame = _Frame(
            exc_targets=[cfg.raise_exit], loop=None, gate_stack=[], in_cleanup=False
        )
        exits = self.block(cfg.func.body, [cfg.entry], frame)
        for node in exits:
            node.add_succ(cfg.exit)
        # Wire each finally body's fall-through to the continuations real
        # paths routed through its gate.
        for info in self.gates.values():
            targets = info.continuations or [cfg.exit]
            for node in info.body_exits:
                for target in targets:
                    node.add_succ(target)
        return cfg

    # -- structure ------------------------------------------------------
    def block(self, stmts, frontier, frame):
        for stmt in stmts:
            if not frontier:
                break  # unreachable after return/raise/break/continue
            frontier = self.stmt(stmt, frontier, frame)
        return frontier

    def stmt(self, stmt, frontier, frame):
        node = self.cfg.new_node(STMT, stmt)
        node.in_cleanup = frame.in_cleanup
        node.yields = header_yields(stmt)
        for prev in frontier:
            prev.add_succ(node)
        # Preemption: an Interrupt may arrive at any yield this node performs
        # (unless we are already in cleanup code — single-fault model).
        if node.yields and not frame.in_cleanup:
            for target in frame.exc_targets:
                node.add_exc(target)

        if isinstance(stmt, ast.If):
            then_exits = self.block(stmt.body, [node], frame)
            else_exits = self.block(stmt.orelse, [node], frame) if stmt.orelse else [node]
            return then_exits + else_exits

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: list[CFGNode] = []
            loop_frame = frame.replaced(loop=(node, breaks, len(frame.gate_stack)))
            body_exits = self.block(stmt.body, [node], loop_frame)
            for exit_node in body_exits:  # back edge
                exit_node.add_succ(node)
            after = self.block(stmt.orelse, [node], frame) if stmt.orelse else [node]
            return after + breaks

        if isinstance(stmt, ast.Try):
            return self.try_stmt(stmt, node, frame)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.block(stmt.body, [node], frame)

        if isinstance(stmt, ast.Match):
            exits = [node]  # no case may match
            for case in stmt.cases:
                exits += self.block(case.body, [node], frame)
            return exits

        if isinstance(stmt, ast.Return):
            self.escape(node, frame.gate_stack, self.cfg.exit)
            return []

        if isinstance(stmt, ast.Raise):
            for target in frame.exc_targets:
                node.add_exc(target)
            return []

        if isinstance(stmt, (ast.Break, ast.Continue)):
            if frame.loop is not None:
                header, breaks, gate_depth = frame.loop
                inner_gates = frame.gate_stack[gate_depth:]
                if isinstance(stmt, ast.Break) and not inner_gates:
                    breaks.append(node)  # joins the loop's fall-through
                else:
                    # continue → header; break through a finally also joins
                    # at the header (which flows to the loop's after-set):
                    # reachability-exact, path-over-approximate.
                    self.escape(node, inner_gates, header)
            return []

        return [node]

    def try_stmt(self, stmt, node, frame):
        cfg = self.cfg
        outer_exc = frame.exc_targets
        gate = None
        if stmt.finalbody:
            gate = cfg.new_node(FINALLY_GATE, stmt)
            self.gates[gate.index] = _GateInfo(gate)

        handler_nodes = []
        for handler in stmt.handlers:
            handler_node = cfg.new_node(STMT, handler)
            handler_node.in_cleanup = True
            handler_nodes.append(handler_node)

        # The exception targets of the protected body: any handler may match;
        # a non-matching exception runs the finally, then propagates.
        body_exc = list(handler_nodes)
        if gate is not None:
            body_exc.append(gate)
            gate_stack = frame.gate_stack + [gate]
        else:
            body_exc.extend(outer_exc)
            gate_stack = frame.gate_stack
        body_frame = frame.replaced(exc_targets=body_exc, gate_stack=gate_stack)
        body_exits = self.block(stmt.body, [node], body_frame)

        # else-clause: runs on normal body completion, unprotected by the
        # handlers but still covered by the finally.
        post_exc = [gate] if gate is not None else outer_exc
        orelse_frame = frame.replaced(exc_targets=post_exc, gate_stack=gate_stack)
        if stmt.orelse:
            body_exits = self.block(stmt.orelse, body_exits, orelse_frame)

        # Handler bodies are cleanup code: the single fault already fired.
        handler_frame = orelse_frame.replaced(in_cleanup=True)
        normal_exits = list(body_exits)
        for handler_node, handler in zip(handler_nodes, stmt.handlers):
            normal_exits += self.block(handler.body, [handler_node], handler_frame)

        if gate is None:
            return normal_exits

        info = self.gates[gate.index]
        finally_frame = frame.replaced(exc_targets=outer_exc, in_cleanup=True)
        info.body_exits = self.block(stmt.finalbody, [gate], finally_frame)
        # An exception edge into the gate continues, after the finally, to
        # the outer exception targets.
        if any(gate in n.exc_succ for n in cfg.nodes):
            for target in outer_exc:
                info.add_continuation(target)
        if not normal_exits:
            return []  # nothing falls through the try normally
        for exit_node in normal_exits:
            exit_node.add_succ(gate)
        # Fall-through continues after the finally body: hand its exits to
        # the caller as the new frontier (their extra escape continuations
        # are wired in build()).
        return list(info.body_exits)

    # -- escapes through finally gates ---------------------------------
    def escape(self, node, gate_stack, final_target) -> None:
        """Route a return/break/continue through enclosing finally gates."""
        if not gate_stack:
            node.add_succ(final_target)
            return
        node.add_succ(gate_stack[-1])
        chain = list(gate_stack)
        for inner, outer in zip(reversed(chain), list(reversed(chain))[1:]):
            self.gates[inner.index].add_continuation(outer)
        self.gates[chain[0].index].add_continuation(final_target)


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the yield-aware CFG of one function definition."""
    return _Builder(func).build()
