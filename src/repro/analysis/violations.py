"""The finding record shared by every simlint rule."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Violation:
    """One rule hit, anchored to a file:line with the offending source text.

    ``line_text`` (stripped) is part of the baseline fingerprint instead of
    the line number so that unrelated edits above a baselined finding do not
    resurrect it.
    """

    rule: str
    path: str  # posix-style path relative to the lint root
    line: int  # 1-based
    col: int  # 0-based, as reported by ast
    message: str
    line_text: str = ""

    @property
    def fingerprint(self) -> str:
        return "{}|{}|{}".format(self.rule, self.path, self.line_text.strip())

    def render(self) -> str:
        return "{}:{}:{}: {} {}".format(
            self.path, self.line, self.col + 1, self.rule, self.message
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
            "fingerprint": self.fingerprint,
        }


def sort_key(violation: Violation) -> tuple:
    return (violation.path, violation.line, violation.col, violation.rule)
