"""The simlint rule set.

Each rule is a class with a ``code``, a human ``title`` and a
``check(module)`` generator yielding ``(node, message)`` pairs. Rules
register themselves in :data:`RULES` via the :func:`rule` decorator; the
engine instantiates the registry per file and anchors each hit to the node's
location.

The rules are *heuristic by design*: they trade completeness for zero
dependencies and high signal on this codebase's idioms. Anything they get
wrong can be silenced with ``# simlint: ignore[CODE]`` on the offending line
or accepted wholesale in the baseline file.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

RULES: dict[str, type] = {}


def rule(cls: type) -> type:
    RULES[cls.code] = cls
    return cls


class Rule:
    """Base class; subclasses yield (ast.AST, message) findings."""

    code = ""
    title = ""

    def __init__(self, config) -> None:
        self.config = config

    def check(self, module) -> Iterator[tuple[ast.AST, str]]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Helpers shared between rules
# ----------------------------------------------------------------------
_WALLCLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "localtime",
        "gmtime",
    }
)
_WALLCLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


def _terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a Name / dotted Attribute chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_set_maker(node: ast.AST) -> bool:
    """Literal / constructor expressions that produce a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ----------------------------------------------------------------------
@rule
class WallClockRule(Rule):
    """SIM001 — wall-clock access inside the simulated world.

    Virtual time is ``sim.now``; reading the host clock makes runs
    unreproducible and couples results to machine speed.
    """

    code = "SIM001"
    title = "wall-clock access"

    def check(self, module):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                base = node.value
                if isinstance(base, ast.Name):
                    if base.id == "time" and node.attr in _WALLCLOCK_TIME_ATTRS:
                        yield node, (
                            "wall-clock read time.{}(); use the simulator's "
                            "virtual clock (sim.now)".format(node.attr)
                        )
                    elif (
                        base.id in ("datetime", "date")
                        and node.attr in _WALLCLOCK_DATETIME_ATTRS
                    ):
                        yield node, (
                            "wall-clock read {}.{}(); use the simulator's "
                            "virtual clock (sim.now)".format(base.id, node.attr)
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALLCLOCK_TIME_ATTRS:
                            yield node, (
                                "importing wall-clock primitive time.{}; use "
                                "the simulator's virtual clock".format(alias.name)
                            )


# ----------------------------------------------------------------------
@rule
class UnseededRandomRule(Rule):
    """SIM002 — the global ``random`` module instead of seeded streams.

    Every component must draw from ``sim.rng(label)`` (a
    :class:`repro.sim.rng.RngStream`): streams are independent per label, so
    adding a component never perturbs existing runs with the same seed.
    """

    code = "SIM002"
    title = "unseeded random"

    def check(self, module):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield node, (
                            "import of the global random module; draw from a "
                            "seeded repro.sim.rng stream (sim.rng(label))"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield node, (
                        "import from the global random module; draw from a "
                        "seeded repro.sim.rng stream (sim.rng(label))"
                    )
            elif isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Name) and node.value.id == "random":
                    yield node, (
                        "use of random.{}; draw from a seeded repro.sim.rng "
                        "stream instead".format(node.attr)
                    )


# ----------------------------------------------------------------------
@rule
class UnorderedIterationRule(Rule):
    """SIM003 — iteration over a hash-ordered set in protocol code.

    String (and tuple-of-string) hashing is randomized per process
    (PYTHONHASHSEED), so ``for x in some_set`` visits elements in a
    process-dependent order: lock releases, replay chaining and event waits
    issued from such a loop reorder the timeline. Iterate ``sorted(...)`` or
    use an insertion-ordered container (:class:`repro.sim.ordered.OrderedSet`).

    Detection is type-inference-lite: an expression is set-typed if it is a
    set literal / comprehension / ``set()``-``frozenset()`` call, a local or
    module name assigned from one, a ``self.X`` attribute assigned from one
    anywhere in the same module, or an attribute named in the config's
    ``known_set_attrs`` (cross-module knowledge). ``sorted()`` around the
    iterable makes it safe; ``list()`` / ``tuple()`` / ``iter()`` /
    ``enumerate()`` / ``reversed()`` do not impose an order and are looked
    through.
    """

    code = "SIM003"
    title = "unordered iteration"

    _TRANSPARENT = ("list", "tuple", "iter", "enumerate", "reversed")
    _ORDERING = ("sorted", "min", "max", "sum", "len", "any", "all")

    def check(self, module):
        self_attrs = self._collect_self_set_attrs(module.tree)
        module_names = self._collect_scope_sets(module.tree, toplevel=True)
        # Module-level iterations
        yield from self._check_scope(module.tree, module_names, self_attrs, toplevel=True)
        for func in _walk_functions(module.tree):
            local_names = set(module_names)
            local_names |= self._collect_scope_sets(func, toplevel=False)
            yield from self._check_scope(func, local_names, self_attrs, toplevel=False)

    # -- inference ------------------------------------------------------
    def _collect_self_set_attrs(self, tree) -> set[str]:
        attrs = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_set_maker(node.value):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        attrs.add(target.attr)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_set_maker(node.value) and isinstance(node.target, ast.Attribute):
                    if (
                        isinstance(node.target.value, ast.Name)
                        and node.target.value.id == "self"
                    ):
                        attrs.add(node.target.attr)
        return attrs

    def _collect_scope_sets(self, scope, toplevel: bool) -> set[str]:
        names = set()
        for node in self._scope_walk(scope, toplevel):
            value = None
            if isinstance(node, ast.Assign):
                value = node.value
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                value = node.value
                targets = [node.target]
            else:
                continue
            if value is not None and _is_set_maker(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _scope_walk(self, scope, toplevel: bool):
        """Walk ``scope`` without descending into nested function scopes."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if toplevel and isinstance(node, ast.ClassDef):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    # -- detection ------------------------------------------------------
    def _check_scope(self, scope, names, self_attrs, toplevel: bool):
        for node in self._scope_walk(scope, toplevel):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                reason = self._unordered_reason(candidate, names, self_attrs)
                if reason:
                    yield candidate, (
                        "iteration over {} is hash-ordered and process-"
                        "dependent; wrap in sorted() or use an insertion-"
                        "ordered container (repro.sim.ordered.OrderedSet)".format(reason)
                    )

    def _unordered_reason(self, expr, names, self_attrs) -> str | None:
        # Look through order-preserving / order-free wrappers.
        while isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in self._ORDERING:
                return None
            if expr.func.id in self._TRANSPARENT and expr.args:
                expr = expr.args[0]
                continue
            break
        if _is_set_maker(expr):
            return "a set expression"
        if isinstance(expr, ast.Name) and expr.id in names:
            return "set {!r}".format(expr.id)
        if isinstance(expr, ast.Attribute):
            if expr.attr in self_attrs or expr.attr in self.config.known_set_attrs:
                return "set attribute {!r}".format(expr.attr)
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub)
        ):
            return self._unordered_reason(
                expr.left, names, self_attrs
            ) or self._unordered_reason(expr.right, names, self_attrs)
        return None


# ----------------------------------------------------------------------
@rule
class RawNetworkSendRule(Rule):
    """SIM004 — raw ``Network.send``/``broadcast`` in protocol code.

    A raw send's arrival event *never fires* on a partitioned or lossy link,
    so any protocol step waiting on one hangs forever under chaos. Protocol
    code must route hops through the reliable-RPC layer
    (``cluster.rpc_send`` / ``repro.sim.rpc.reliable_send``), which bounds
    the wait with timeout + retry.
    """

    code = "SIM004"
    title = "raw network send"

    def check(self, module):
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in ("send", "broadcast"):
                continue
            receiver = _terminal_name(node.func.value)
            if receiver is None:
                continue
            if receiver == "net" or "network" in receiver.lower():
                yield node, (
                    "raw {}.{}() in protocol code hangs forever under "
                    "partitions; use the reliable RPC wrappers "
                    "(cluster.rpc_send / repro.sim.rpc)".format(receiver, node.func.attr)
                )


# ----------------------------------------------------------------------
@rule
class IdOrderingRule(Rule):
    """SIM005 — ``id()`` used for ordering or keying.

    CPython object ids are allocation addresses: they differ between runs
    and platforms, so sorting or keying by ``id()`` injects allocator state
    into the timeline. Key by a stable field (tid, xid, shard id) instead.
    """

    code = "SIM005"
    title = "id()-based ordering"

    def check(self, module):
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                yield node, (
                    "id() is allocation-dependent and varies across runs; "
                    "order/key by a stable identifier instead"
                )


# ----------------------------------------------------------------------
@rule
class SwallowedErrorRule(Rule):
    """SIM006 — bare ``except:`` or silently swallowed simulation errors.

    A bare except hides kernel bugs (including SystemExit/KeyboardInterrupt);
    an ``except SimulationError: pass`` in a fault-handling path turns an
    invariant violation into silent divergence. Handle the specific error or
    let it crash the run loudly.
    """

    code = "SIM006"
    title = "swallowed error"

    def check(self, module):
        swallowed = self.config.swallowed_exceptions
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield node, (
                    "bare except: hides simulation bugs (and SystemExit); "
                    "catch the specific exception"
                )
                continue
            if self._names_swallowed_type(node.type, swallowed) and self._body_is_noop(
                node.body
            ):
                yield node, (
                    "simulation error caught and discarded; handle it or let "
                    "it fail the run loudly"
                )

    def _names_swallowed_type(self, type_node, swallowed) -> bool:
        candidates: Iterable[ast.AST]
        if isinstance(type_node, ast.Tuple):
            candidates = type_node.elts
        else:
            candidates = [type_node]
        for candidate in candidates:
            name = _terminal_name(candidate)
            if name in swallowed:
                return True
        return False

    def _body_is_noop(self, body) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or ...
            return False
        return True
