"""``repro lint`` — the command-line front end of simlint."""

from __future__ import annotations

import json
import sys

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import analyze_paths, default_config
from repro.analysis.rules import RULES

DEFAULT_PATHS = ("src/repro",)


def add_lint_arguments(parser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="JSON baseline of accepted findings (see --write-baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint(args, stdout=None, stderr=None) -> int:
    out = stdout or sys.stdout
    err = stderr or sys.stderr

    if args.list_rules:
        for code, rule_cls in sorted(RULES.items()):
            print("{}  {}".format(code, rule_cls.title), file=out)
        return 0

    config = default_config()
    violations, errors = analyze_paths(args.paths, config=config)
    for error in errors:
        print("error: {}".format(error), file=err)

    if args.write_baseline:
        write_baseline(violations, args.write_baseline)
        print(
            "wrote baseline with {} finding(s) to {}".format(
                len(violations), args.write_baseline
            ),
            file=out,
        )
        return 0

    accepted = []
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print("error: cannot load baseline: {}".format(exc), file=err)
            return 2
        violations, accepted = apply_baseline(violations, baseline)

    if args.fmt == "json":
        document = {
            "violations": [v.to_dict() for v in violations],
            "baselined": len(accepted),
            "errors": errors,
            "ok": not violations and not errors,
        }
        print(json.dumps(document, indent=2), file=out)
    else:
        for violation in violations:
            print(violation.render(), file=out)
        summary = "simlint: {} finding(s)".format(len(violations))
        if accepted:
            summary += ", {} baselined".format(len(accepted))
        if errors:
            summary += ", {} file error(s)".format(len(errors))
        print(summary, file=out)

    return 1 if (violations or errors) else 0
