"""``repro lint`` — the command-line front end of simlint."""

from __future__ import annotations

import json
import sys

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import analyze_paths, default_config
from repro.analysis.rules import RULES

DEFAULT_PATHS = ("src/repro",)


def add_lint_arguments(parser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("text", "json", "github"),
        default="text",
        help="report format (github prints ::error workflow annotations)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule finding counts (text/github) or embed them (json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="JSON baseline of accepted findings (see --write-baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint(args, stdout=None, stderr=None) -> int:
    out = stdout or sys.stdout
    err = stderr or sys.stderr

    if args.list_rules:
        for code, rule_cls in sorted(RULES.items()):
            print("{}  {}".format(code, rule_cls.title), file=out)
        return 0

    config = default_config()
    violations, errors = analyze_paths(args.paths, config=config)
    for error in errors:
        print("error: {}".format(error), file=err)

    if args.write_baseline:
        write_baseline(violations, args.write_baseline)
        print(
            "wrote baseline with {} finding(s) to {}".format(
                len(violations), args.write_baseline
            ),
            file=out,
        )
        return 0

    accepted = []
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print("error: cannot load baseline: {}".format(exc), file=err)
            return 2
        violations, accepted = apply_baseline(violations, baseline)

    stats = rule_stats(violations) if args.stats else None

    if args.fmt == "json":
        document = {
            "violations": [v.to_dict() for v in violations],
            "baselined": len(accepted),
            "errors": errors,
            "ok": not violations and not errors,
        }
        if stats is not None:
            document["stats"] = stats
        print(json.dumps(document, indent=2), file=out)
    else:
        for violation in violations:
            if args.fmt == "github":
                print(github_annotation(violation), file=out)
            else:
                print(violation.render(), file=out)
        if stats is not None:
            for code, count in sorted(stats.items()):
                print("{}  {:>4}".format(code, count), file=out)
        summary = "simlint: {} finding(s)".format(len(violations))
        if accepted:
            summary += ", {} baselined".format(len(accepted))
        if errors:
            summary += ", {} file error(s)".format(len(errors))
        print(summary, file=out)

    return 1 if (violations or errors) else 0


def rule_stats(violations) -> dict[str, int]:
    """Finding count per rule code, zero-filled over the whole catalogue."""
    stats = {code: 0 for code in RULES}
    for violation in violations:
        stats[violation.rule] = stats.get(violation.rule, 0) + 1
    return stats


def github_annotation(violation) -> str:
    """One GitHub Actions workflow-command line for a finding.

    The message is the payload after ``::`` and must keep to one line;
    GitHub unescapes %0A, so newlines (never expected here) are stripped
    defensively.
    """
    message = "{} {}".format(violation.rule, violation.message).replace("\n", " ")
    return "::error file={},line={},col={},title=simlint {}::{}".format(
        violation.path, violation.line, violation.col + 1, violation.rule, message
    )
