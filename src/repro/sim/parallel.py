"""Parallel partition execution: multi-core drain of the windowed loop.

:class:`ParallelSimulator` extends :class:`PartitionedSimulator` so that a
*worker* — one OS process — executes only the partitions it **owns** (plus
the replicated control partition), while cross-partition messages are
buffered into per-destination **outboxes** and exchanged only at window
barriers. ``repro bench --cluster`` fans one worker per partition group
across a :class:`multiprocessing.Pool` and merges the per-worker timelines
into a result byte-identical to the single-loop run (the pinned digests in
``tests/test_fastpath_equivalence.py``).

Execution model: replicated control, owned data
-----------------------------------------------
Every worker rebuilds the *whole* cluster deterministically from the storm
spec — same topology, same seeds, same RNG streams — so the control
partition (arrival dispatcher, harness processes) executes identically in
all workers. What differs is ownership:

- a runner spawned via :meth:`spawn_on_node` onto an **owned** partition
  executes normally inside that partition's window drains;
- a runner spawned onto a **non-owned** partition parks forever: its start
  event sits in a subheap this worker never drains. The worker that owns
  that partition executes it instead. Union over workers = the single
  loop's work, exactly once each.

The drain therefore restricts every scan (:meth:`_next_time`,
:meth:`_drain_instant`, :meth:`step`, :meth:`run`) to the control subheap
plus the owned subheaps — scanning a non-owned subheap would either stall
the window schedule on a parked event or wrongly execute it here.

Barrier outboxes
----------------
Inside a window, :meth:`schedule_for_node` to a partition other than the
current one does not touch the destination subheap; the entry (with its
sequence number assigned immediately, preserving the global ``(time, seq)``
order of the single loop) is appended to that partition's outbox and
flushed at the next window top. This is safe for the same reason the
windowed drain is: a cross-partition delivery carries at least
``lookahead`` of network latency, so its time is at or beyond the current
window's limit and cannot execute before the barrier anyway.

A destination owned by *another* worker is **reflected**: the delivery is
executed under the current partition (same instant, same callback) and
counted in ``drain.reflected_msgs``. Inside the partition-closed storm
envelope (key-routed transactions, no migration, no vacuum) this never
happens — the bench and the equivalence suite assert the counter is zero —
but outside it reflection keeps foreign sends from deadlocking a worker
while making the envelope violation observable.

The worker shuttle (:func:`run_partition_jobs`) mirrors ``repro sweep``:
plain picklable job dicts in, plain report dicts out, and a serial
in-process fallback — one job owning *all* partitions, i.e. exactly the
serial windowed drain — when the platform cannot start a pool.
``fastpath.parallel_drain`` gates the fan-out and defaults off.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
from typing import Any, Callable

from repro.profiling.counters import COUNTERS
from repro.sim.errors import SimulationError
from repro.sim.kernel import _ARGS, _CALLBACK, _TIME, ScheduledCall, Simulator
from repro.sim.partition import CONTROL_PARTITION, PartitionedSimulator
from repro.sim.topology import Topology


class DrainCounters:
    """Per-simulator drain attribution (mirrored into the global
    :data:`~repro.profiling.counters.COUNTERS` for ``repro profile``)."""

    __slots__ = (
        "windows",
        "instants",
        "barrier_msgs",
        "barrier_exchanges",
        "reflected_msgs",
    )

    def __init__(self) -> None:
        self.windows = 0  # conservative windows executed
        self.instants = 0  # degenerate single-instant merged drains
        self.barrier_msgs = 0  # cross-partition messages buffered
        self.barrier_exchanges = 0  # (barrier, destination) flush batches
        self.reflected_msgs = 0  # sends to partitions owned elsewhere

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class ParallelSimulator(PartitionedSimulator):
    """A :class:`PartitionedSimulator` that drains only the partitions it
    owns, exchanging cross-partition messages at window barriers.

    With the default ownership (every partition) this is the serial
    windowed drain routed through the barrier outboxes — the fallback mode
    and the degenerate one-worker case are literally the same code path.
    """

    def __init__(
        self,
        seed: int = 0,
        num_partitions: int = 1,
        lookahead: float = 0.0,
        owned: Any = None,
    ) -> None:
        super().__init__(seed, num_partitions=num_partitions, lookahead=lookahead)
        self._outboxes: list[list[ScheduledCall]] = [[] for _ in self._heaps]
        self.drain = DrainCounters()
        self.owned: frozenset[int] = frozenset(range(1, num_partitions + 1))
        self._drain_order: tuple[int, ...] = ()
        self.own(self.owned if owned is None else owned)

    @classmethod
    def for_topology(
        cls, topology: Topology, seed: int = 0, owned: Any = None
    ) -> "ParallelSimulator":
        sim = super().for_topology(topology, seed)
        assert isinstance(sim, ParallelSimulator)
        if owned is not None:
            sim.own(owned)
        return sim

    def own(self, pids: Any) -> None:
        """Restrict this worker to draining partitions ``pids`` (plus the
        control partition). Call during setup, before :meth:`run`."""
        owned = frozenset(int(pid) for pid in pids)
        if not owned:
            raise SimulationError("a worker must own at least one partition")
        bad = [pid for pid in sorted(owned) if not 1 <= pid <= self.num_partitions]
        if bad:
            raise SimulationError(
                "owned partitions {} out of range 1..{}".format(
                    bad, self.num_partitions
                )
            )
        self.owned = owned
        self._drain_order = (CONTROL_PARTITION,) + tuple(sorted(owned))

    # ------------------------------------------------------------------
    # Barrier outboxes
    # ------------------------------------------------------------------
    def schedule_for_node(
        self, node: str, delay: float, callback: Callable[..., object], *args: Any
    ) -> ScheduledCall:
        pid = self._node_partition.get(node, CONTROL_PARTITION)
        if pid == self._current:
            return self.schedule(delay, callback, *args)
        if pid in self.owned or pid == CONTROL_PARTITION:
            # Cross-partition message to a partition this worker drains:
            # buffer for the next barrier. The seq is assigned *now* so the
            # merged (time, seq) order matches the single loop, where the
            # entry would have been pushed straight into the destination.
            if delay < 0:
                raise SimulationError(
                    "cannot schedule in the past (delay={})".format(delay)
                )
            self._seq = seq = self._seq + 1
            entry: ScheduledCall = [self.now + delay, seq, callback, args]
            self._outboxes[pid].append(entry)
            self.drain.barrier_msgs += 1
            COUNTERS.drain_barrier_msgs += 1
            return entry
        # Destination owned by another worker: its replica of the sender
        # executes the same send, so the delivery happens exactly once over
        # there. Reflect it locally (same instant, current partition) so a
        # foreign send cannot deadlock this worker, and count it — the
        # identity envelope requires this to stay zero.
        self.drain.reflected_msgs += 1
        COUNTERS.drain_reflected_msgs += 1
        return self.schedule(delay, callback, *args)

    def _flush_outboxes(self) -> None:
        push = heapq.heappush
        for pid, outbox in enumerate(self._outboxes):
            if not outbox:
                continue
            heap = self._heaps[pid]
            for entry in outbox:
                push(heap, entry)
            outbox.clear()
            self.drain.barrier_exchanges += 1

    # ------------------------------------------------------------------
    # Execution restricted to control + owned partitions
    # ------------------------------------------------------------------
    def _next_time(self) -> float | None:
        """Earliest live event among the partitions this worker drains.

        Non-owned subheaps are deliberately invisible: their events belong
        to other workers, and a parked foreign event would otherwise pin
        ``t0`` forever without any partition able to make progress.
        """
        self._flush_outboxes()
        best = None
        pop = heapq.heappop
        for pid in self._drain_order:
            heap = self._heaps[pid]
            while heap and heap[0][_CALLBACK] is None:
                pop(heap)
                self._cancelled -= 1
            if heap and (best is None or heap[0][_TIME] < best):
                best = heap[0][_TIME]
        return best

    def _drain_instant(self, boundary: float) -> None:
        heaps = self._heaps
        pop = heapq.heappop
        profiler = Simulator._active_profiler
        previous = self._current
        executed = 0
        try:
            while True:
                # Boundary callbacks may emit cross-partition sends; flush
                # each round so a same-instant delivery joins the merged
                # (time, seq) scan before anything later executes.
                self._flush_outboxes()
                best = None
                best_pid = -1
                for pid in self._drain_order:
                    heap = heaps[pid]
                    while heap and heap[0][_CALLBACK] is None:
                        pop(heap)
                        self._cancelled -= 1
                    if heap:
                        head = heap[0]
                        if head[_TIME] <= boundary and (best is None or head < best):
                            best = head
                            best_pid = pid
                if best is None:
                    return
                pop(heaps[best_pid])
                self._current = best_pid
                self.now = best[_TIME]
                if self.now > self._max_time:
                    self._max_time = self.now
                executed += 1
                if profiler is None:
                    best[_CALLBACK](*best[_ARGS])
                else:
                    profiler.dispatch(best[_CALLBACK], best[_ARGS])
        finally:
            self._current = previous
            self._executed += executed

    def run(self, until: float | None = None) -> float:
        lookahead = self.lookahead
        while True:
            t0 = self._next_time()  # flushes the barrier outboxes
            if t0 is None or (until is not None and t0 > until):
                break
            limit = t0 + lookahead
            if until is not None and limit > until:
                limit = until
            if limit > t0:
                self.drain.windows += 1
                COUNTERS.drain_windows += 1
                for pid in self._drain_order:
                    self._drain_window(pid, limit)
            else:
                self.drain.instants += 1
                COUNTERS.drain_instants += 1
                self._drain_instant(t0)
                if until is not None and t0 >= until:
                    break
        self._flush_outboxes()
        if self._max_time > self.now:
            self.now = self._max_time
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def step(self) -> bool:
        self._flush_outboxes()
        heaps = self._heaps
        pop = heapq.heappop
        profiler = Simulator._active_profiler
        best = None
        best_pid = -1
        for pid in self._drain_order:
            heap = heaps[pid]
            while heap and heap[0][_CALLBACK] is None:
                pop(heap)
                self._cancelled -= 1
            if heap:
                head = heap[0]
                if best is None or head < best:
                    best = head
                    best_pid = pid
        if best is None:
            return False
        pop(heaps[best_pid])
        previous = self._current
        self._current = best_pid
        try:
            self.now = best[_TIME]
            if self.now > self._max_time:
                self._max_time = self.now
            self._executed += 1
            if profiler is None:
                best[_CALLBACK](*best[_ARGS])
            else:
                profiler.dispatch(best[_CALLBACK], best[_ARGS])
        finally:
            self._current = previous
        return True

    @property
    def pending_events(self) -> int:
        queued = sum(len(heap) for heap in self._heaps)
        queued += sum(len(outbox) for outbox in self._outboxes)
        return queued - self._cancelled


def deal_partitions(num_partitions: int, workers: int) -> list[list[int]]:
    """Round-robin deal of node partitions ``1..P`` across ``workers``.

    Deterministic and independent of worker scheduling; never returns an
    empty ownership list (workers are capped at the partition count).
    """
    if num_partitions < 1:
        raise ValueError("need at least one partition to deal")
    workers = max(1, min(workers, num_partitions))
    plan: list[list[int]] = [[] for _ in range(workers)]
    for pid in range(1, num_partitions + 1):
        plan[(pid - 1) % workers].append(pid)
    return plan


def run_partition_jobs(jobs, worker_fn, serial_job):
    """The worker shuttle: run per-worker partition jobs on a process pool.

    ``jobs`` and the reports that come back must be plain picklable dicts
    (the same contract as ``repro sweep``). Returns
    ``(reports, pool_used, wall_seconds)``; ``wall_seconds`` is host wall
    clock around the whole exchange — setup, run and transport — which is
    what worker-utilization fractions are measured against.

    When the pool cannot start (sandboxes without semaphores or fork
    support), the shuttle degrades to one in-process run of ``serial_job``
    — a job owning *every* partition, i.e. the serial windowed drain — so
    the merged output bytes are identical either way.
    """
    started = time.perf_counter()
    if len(jobs) <= 1:
        reports = [worker_fn(job) for job in jobs]
        return reports, False, time.perf_counter() - started
    try:
        pool = multiprocessing.Pool(processes=len(jobs))
    except (OSError, PermissionError, ImportError, ValueError):
        reports = [worker_fn(serial_job)]
        return reports, False, time.perf_counter() - started
    with pool:
        reports = pool.map(worker_fn, jobs)
    return reports, True, time.perf_counter() - started
