"""Capacity-limited resources: generic semaphores and CPUs with accounting."""

from collections import deque

from repro.sim.errors import SimulationError


class Resource:
    """A counted resource with FIFO queuing.

    ``acquire()`` returns an :class:`Event` that succeeds when a unit becomes
    available; the holder must call :meth:`release` exactly once.
    """

    def __init__(self, sim, capacity=1, name=""):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue = deque()

    @property
    def in_use(self):
        return self._in_use

    @property
    def queued(self):
        return len(self._queue)

    def acquire(self):
        event = self.sim.event(name="acquire:{}".format(self.name))
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._queue.append(event)
        return event

    def release(self):
        if self._in_use <= 0:
            raise SimulationError("release of idle resource {!r}".format(self.name))
        if self._queue:
            waiter = self._queue.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1

    def cancel_acquire(self, event):
        """Abandon an :meth:`acquire` whose result will never be consumed.

        Crash teardown can interrupt a process parked on — or just granted —
        an acquire. Without cancellation the unit leaks: a granted event's
        holder never calls :meth:`release`, and a queued event is later
        granted to a dead process. Still-queued requests are withdrawn;
        already-granted ones are released.
        """
        if event is None:
            return
        try:
            self._queue.remove(event)
            return
        except ValueError:
            pass
        if event.triggered:
            self.release()


class CpuResource:
    """Models a node's CPU: ``capacity`` parallel execution slots.

    Work is submitted with :meth:`use`, which returns an event that succeeds
    once the work has queued for a free slot and then occupied it for
    ``duration`` virtual seconds. Busy time is accumulated into fixed-width
    bins so experiments can report a CPU-utilisation time series, as Figure 10
    of the paper does.
    """

    def __init__(self, sim, capacity, name="", bin_width=1.0):
        if capacity < 1:
            raise SimulationError("CPU capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.bin_width = bin_width
        self._free = capacity
        self._queue = deque()
        self._busy_bins = {}
        self.total_busy_time = 0.0

    def use(self, duration, tag=None):
        """Occupy one CPU slot for ``duration``; returns a completion event."""
        if duration < 0:
            raise SimulationError("negative CPU duration")
        done = self.sim.event(name="cpu:{}".format(self.name))
        self._queue.append((duration, done, tag))
        self._dispatch()
        return done

    def use_run(self, unit, count, tag=None):
        """Occupy one slot for ``count`` back-to-back charges of ``unit``.

        Returns a completion event, or ``None`` when no slot is immediately
        free — the caller must then fall back to sequential :meth:`use`
        calls, which queue exactly as the unbatched charges would have.
        The completion instant and the busy-bin accounting are computed
        with the same float operations ``count`` sequential ``use(unit)``
        calls perform (repeated addition, one ``_account`` per charge), so
        the granted case is byte-identical to the sequential chain while
        costing one kernel event instead of ``count``.
        """
        if unit < 0:
            raise SimulationError("negative CPU duration")
        if self._free <= 0 or self._queue:
            return None
        done = self.sim.event(name="cpu:{}".format(self.name))
        self._free -= 1
        cursor = self.sim.now
        for _ in range(count):
            self._account(cursor, unit)
            cursor += unit
        self.sim.schedule_at(cursor, self._complete, done)
        return done

    def _dispatch(self):
        while self._free > 0 and self._queue:
            duration, done, tag = self._queue.popleft()
            self._free -= 1
            self._account(self.sim.now, duration)
            self.sim.schedule(duration, self._complete, done)

    def _complete(self, done):
        self._free += 1
        done.succeed(None)
        self._dispatch()

    def _account(self, start, duration):
        """Spread ``duration`` of one slot's busy time across time bins."""
        self.total_busy_time += duration
        remaining = duration
        cursor = start
        while remaining > 1e-12:
            bin_index = int(cursor / self.bin_width)
            bin_end = (bin_index + 1) * self.bin_width
            chunk = min(remaining, bin_end - cursor)
            self._busy_bins[bin_index] = self._busy_bins.get(bin_index, 0.0) + chunk
            cursor += chunk
            remaining -= chunk

    def usage_series(self, start=0.0, end=None):
        """Utilisation fraction per bin over [start, end) as (time, frac)."""
        if end is None:
            end = self.sim.now
        points = []
        index = int(start / self.bin_width)
        last = int(end / self.bin_width)
        slot_seconds = self.capacity * self.bin_width
        while index < last:
            busy = self._busy_bins.get(index, 0.0)
            points.append((index * self.bin_width, busy / slot_seconds))
            index += 1
        return points

    def usage_between(self, start, end):
        """Average utilisation fraction over the window [start, end)."""
        if end <= start:
            return 0.0
        total = 0.0
        for time, frac in self.usage_series(start, end):
            del time
            total += frac
        bins = max(1, int(end / self.bin_width) - int(start / self.bin_width))
        return total / bins
