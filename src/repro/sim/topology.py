"""Declarative cluster topology: regions → AZs → racks → nodes.

A :class:`Topology` places every node in a rack, every rack in an
availability zone (AZ) and every AZ in a region, and assigns one
:class:`LinkProfile` — a (latency, bandwidth) pair — to each *tier* of the
hierarchy. A message's cost is governed by the **highest boundary its path
crosses**:

========  =======================================  =========================
tier      when it governs a path ``src -> dst``    shared trunk (link key)
========  =======================================  =========================
rack      same rack, different nodes               the ``(src, dst)`` pair
az        same AZ, different racks                 the rack uplink pair
region    same region, different AZs               the AZ trunk pair
geo       different regions                        the region trunk pair
========  =======================================  =========================

The link-key column is the contention domain: every transfer whose path's
governing boundary is the same ordered pair of units shares that trunk's
bandwidth (see :mod:`repro.sim.network`). Within a rack the switch is
modelled as non-blocking, so each directed node pair is its own link; above
the rack, flows aggregate onto the tier trunk — exactly where cross-AZ
bandwidth becomes the scarce resource.

Nodes that are *not* named in the topology (the control plane, nodes added
by scale-out after construction) are placed in the topology's **default
rack** — the first rack declared — which keeps placement deterministic and
makes the degenerate single-rack topology accept any node name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

#: Tier names from the tightest to the widest boundary. ``rack`` is the
#: intra-rack tier (same rack, distinct nodes); ``geo`` is cross-region.
TIERS: tuple[str, ...] = ("rack", "az", "region", "geo")

#: A node's position: (region, az, rack), each a fully qualified unit name.
Placement = tuple[str, str, str]

#: A contention domain: (tier, src unit, dst unit), directed.
LinkKey = tuple[str, str, str]


@dataclass(frozen=True, slots=True)
class LinkProfile:
    """The cost model of one topology tier.

    Attributes:
        latency: one-way propagation + stack delay in seconds.
        bandwidth: bytes per second of trunk capacity shared by every
            transfer whose path is governed by this tier.
    """

    latency: float
    bandwidth: float


class Topology:
    """Node placement plus per-tier link profiles.

    Build one declaratively with :meth:`build` (regions → AZs → racks →
    nodes), or degenerately with :meth:`single` (one implicit rack — the
    flat pre-topology network). ``contended`` selects the network's cost
    model: ``False`` prices each message independently (the constant-delay
    fast path), ``True`` makes every link a shared fair-share resource.
    ``None`` resolves to contended exactly when the topology spans more
    than one rack.
    """

    __slots__ = (
        "profiles",
        "contended",
        "name",
        "_placements",
        "_default_placement",
        "_route_cache",
    )

    def __init__(
        self,
        placements: Mapping[str, Placement],
        profiles: Mapping[str, LinkProfile],
        contended: bool | None = None,
        name: str = "custom",
    ) -> None:
        missing = [tier for tier in TIERS if tier not in profiles]
        if missing:
            raise ValueError("topology is missing tier profiles: {}".format(missing))
        self.profiles: dict[str, LinkProfile] = {tier: profiles[tier] for tier in TIERS}
        self._placements: dict[str, Placement] = dict(placements)
        if self._placements:
            first = next(iter(self._placements.values()))
        else:
            first = ("region-1", "az-1", "rack-1")
        self._default_placement: Placement = first
        if contended is None:
            contended = not self.is_single_rack
        self.contended = bool(contended)
        self.name = name
        self._route_cache: dict[tuple[str, str], tuple[str, LinkKey]] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        regions: Mapping[str, Mapping[str, Mapping[str, Sequence[str]]]],
        profiles: Mapping[str, LinkProfile],
        contended: bool | None = None,
        name: str = "custom",
    ) -> "Topology":
        """Build from a nested spec ``{region: {az: {rack: [node, ...]}}}``.

        Unit names are qualified internally (``region/az`` for AZ units,
        ``region/az/rack`` for racks) so the same short rack name may appear
        under different AZs without colliding.
        """
        placements: dict[str, Placement] = {}
        for region, azs in regions.items():
            for az, racks in azs.items():
                az_name = "{}/{}".format(region, az)
                for rack, nodes in racks.items():
                    rack_name = "{}/{}".format(az_name, rack)
                    for node in nodes:
                        if node in placements:
                            raise ValueError(
                                "node {!r} placed twice in topology".format(node)
                            )
                        placements[node] = (region, az_name, rack_name)
        return cls(placements, profiles, contended=contended, name=name)

    @classmethod
    def single(
        cls,
        profile: LinkProfile,
        contended: bool | None = None,
        name: str = "single",
    ) -> "Topology":
        """The degenerate one-rack topology: every node (named or not) sits
        in one rack, and every message is an intra-rack message priced by
        ``profile``. This is exactly the flat pre-topology network."""
        profiles = {tier: profile for tier in TIERS}
        return cls({}, profiles, contended=contended, name=name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_single_rack(self) -> bool:
        """True when every placed node shares one rack (or none are placed)."""
        racks = {placement[2] for placement in self._placements.values()}
        return len(racks) <= 1

    def nodes(self) -> list[str]:
        """The explicitly placed node names, in declaration order."""
        return list(self._placements)

    def placement(self, node: str) -> Placement:
        """``node``'s (region, az, rack); unplaced nodes get the default."""
        return self._placements.get(node, self._default_placement)

    def tier(self, src: str, dst: str) -> str:
        """The governing tier of a ``src -> dst`` path (highest boundary)."""
        return self.route(src, dst)[0]

    def profile_for(self, src: str, dst: str) -> LinkProfile:
        """The link profile governing a ``src -> dst`` message."""
        return self.profiles[self.route(src, dst)[0]]

    def route(self, src: str, dst: str) -> tuple[str, LinkKey]:
        """``(tier, link key)`` of a path — the contention domain it uses.

        The link key is directed: the ``a -> b`` and ``b -> a`` trunks are
        independent resources (full-duplex links), matching how a migration
        copy saturates one direction only.
        """
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        src_region, src_az, src_rack = self.placement(src)
        dst_region, dst_az, dst_rack = self.placement(dst)
        if src_region != dst_region:
            result = ("geo", ("geo", src_region, dst_region))
        elif src_az != dst_az:
            result = ("region", ("region", src_az, dst_az))
        elif src_rack != dst_rack:
            result = ("az", ("az", src_rack, dst_rack))
        else:
            result = ("rack", ("rack", src, dst))
        self._route_cache[(src, dst)] = result
        return result

    def to_dict(self) -> dict:
        """JSON-safe description (experiment result payloads)."""
        return {
            "name": self.name,
            "contended": self.contended,
            "nodes": {node: list(place) for node, place in self._placements.items()},
            "profiles": {
                tier: {"latency": p.latency, "bandwidth": p.bandwidth}
                for tier, p in self.profiles.items()
            },
        }

    def __repr__(self) -> str:
        return "Topology({!r}, {} nodes, contended={})".format(
            self.name, len(self._placements), self.contended
        )


#: Preset names accepted by :func:`make_topology` (and the CLI's
#: ``--topology`` flag).
PRESETS: tuple[str, ...] = ("single", "multi_az", "geo")


def _split(items: list[str], parts: int) -> list[list[str]]:
    """Deal ``items`` into ``parts`` contiguous, near-equal groups."""
    groups: list[list[str]] = []
    base, extra = divmod(len(items), parts)
    cursor = 0
    for index in range(parts):
        count = base + (1 if index < extra else 0)
        groups.append(items[cursor : cursor + count])
        cursor += count
    return groups


def make_topology(
    preset: str,
    node_ids: Iterable[str],
    profiles: Mapping[str, LinkProfile],
    contended: bool | None = None,
) -> Topology:
    """Build a standard topology over ``node_ids``.

    - ``single`` — one rack; with the default ``contended=None`` this is the
      uncontended constant-delay network.
    - ``multi_az`` — one region, two AZs of one rack each; the node list is
      split contiguously in half (``node-1..3`` in AZ 1, ``node-4..6`` in
      AZ 2 for a six-node cluster).
    - ``geo`` — two regions of one AZ each, split the same way.
    """
    nodes = list(node_ids)
    if preset == "single":
        return Topology.build(
            {"region-1": {"az-1": {"rack-1": nodes}}},
            profiles,
            contended=contended,
            name="single",
        )
    if preset == "multi_az":
        first, second = _split(nodes, 2)
        return Topology.build(
            {"region-1": {"az-1": {"rack-1": first}, "az-2": {"rack-1": second}}},
            profiles,
            contended=contended,
            name="multi_az",
        )
    if preset == "geo":
        first, second = _split(nodes, 2)
        return Topology.build(
            {
                "region-1": {"az-1": {"rack-1": first}},
                "region-2": {"az-1": {"rack-1": second}},
            },
            profiles,
            contended=contended,
            name="geo",
        )
    raise ValueError(
        "unknown topology preset {!r}; pick one of {}".format(preset, list(PRESETS))
    )
