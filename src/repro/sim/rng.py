"""Reproducible random number streams.

Every component that needs randomness asks the simulator for a stream keyed
by a stable label. Streams are independent of each other and of the order in
which other components draw numbers, so adding a new component never perturbs
existing runs with the same seed.
"""

from __future__ import annotations

import hashlib
import random


class SeedSequence:
    """Derives child seeds from a root seed plus a string label."""

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)

    def child_seed(self, label: str) -> int:
        digest = hashlib.sha256(
            "{}/{}".format(self.root_seed, label).encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, label: str) -> "RngStream":
        return RngStream(self.child_seed(label), label=label)


class RngStream:
    """A labelled wrapper over :class:`random.Random` with workload helpers."""

    def __init__(self, seed: int, label: str = "") -> None:
        self.label = label
        self._random = random.Random(seed)

    def random(self) -> float:
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq):
        return self._random.choice(seq)

    def shuffle(self, seq) -> None:
        self._random.shuffle(seq)

    def sample(self, population, k: int) -> list:
        return self._random.sample(population, k)

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def poisson(self, mean: float) -> int:
        """Poisson-distributed count with the given ``mean``.

        Exact (Knuth multiplication) for small means; for large means a
        normal approximation keeps the draw O(1) instead of O(mean) — the
        population arrival generator draws one of these per tick, so the
        cost must not scale with the simulated population. Both branches
        consume only this stream, so runs stay reproducible.
        """
        if mean <= 0.0:
            return 0
        if mean < 64.0:
            import math

            threshold = math.exp(-mean)
            count = 0
            product = self._random.random()
            while product > threshold:
                count += 1
                product *= self._random.random()
            return count
        value = self._random.gauss(mean, mean ** 0.5)
        return max(0, int(value + 0.5))

    def nuround(self, value: float) -> int:
        """Stochastic rounding: 2.3 becomes 3 with probability 0.3, else 2."""
        base = int(value)
        frac = value - base
        if frac > 0 and self._random.random() < frac:
            return base + 1
        return base
