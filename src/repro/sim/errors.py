"""Exception types raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for kernel-level errors (misuse of the API, double waits)."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupting party supplies a ``cause`` describing why the victim was
    interrupted (for example, a migration aborting a blocked transaction).
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self):
        return "Interrupt(cause={!r})".format(self.cause)
