"""RPC helper: timeout + exponential backoff + bounded retry budget.

The network (:mod:`repro.sim.network`) models partitions and message loss by
*never firing* the arrival event of a dropped message. Any protocol step that
waits on a raw ``send`` would therefore hang forever under chaos. This module
wraps sends in the standard distributed-systems discipline:

- wait at most ``timeout`` seconds for the delivery event;
- on timeout, back off exponentially (capped) and retransmit;
- give up after ``max_attempts`` tries and raise :class:`RpcTimeout` —
  unless the policy is *persistent*, in which case the sender keeps
  retransmitting with capped backoff until the link heals (2PC decision
  delivery: a commit/abort decision must eventually reach every
  participant, it can never be "given up").

Retransmits are harmless in this model: the effect of a message happens at
the *receiver-side continuation* after the arrival event fires, so a
duplicate delivery simply wakes the same waiter once.

The coordinator, the 2PC prepare/commit legs and the migration propagation
send path all route their cross-node hops through :func:`reliable_send`.

When the link carries no fault state at send time the timeout machinery is
skipped entirely and the sender waits on the delivery event directly
(:meth:`~repro.sim.network.Network.link_is_clean`): a clean link's message
is guaranteed to arrive, and dropping the ``AnyOf``/``Timeout`` allocation
per message keeps the fault-free hot path allocation-lean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.sim.errors import SimulationError
from repro.sim.events import AnyOf, Timeout

if TYPE_CHECKING:
    from repro.sim.network import Network


class RpcTimeout(SimulationError):
    """An RPC exhausted its retry budget without an acknowledged delivery."""

    def __init__(self, src: str, dst: str, attempts: int) -> None:
        super().__init__(
            "rpc {} -> {} gave up after {} attempts".format(src, dst, attempts)
        )
        self.src = src
        self.dst = dst
        self.attempts = attempts


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Timeout/retry discipline for one class of RPCs.

    ``timeout`` must comfortably exceed the fault-free one-way delivery time
    (sub-millisecond in the default cost model) so that retries only happen
    under injected faults. ``persistent`` policies never raise — they retry
    with capped backoff until delivery succeeds.
    """

    timeout: float = 0.05
    max_attempts: int = 4
    backoff_base: float = 0.02
    backoff_cap: float = 0.5
    persistent: bool = False

    def backoff(self, attempt: int) -> float:
        """Delay before retransmit number ``attempt`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))


#: Default bounded policy: statements, prepares, propagation transfers.
DEFAULT_POLICY = RetryPolicy()

#: Unbounded policy for 2PC decision delivery (commit/abort records).
PERSISTENT_POLICY = RetryPolicy(persistent=True, max_attempts=0)


def reliable_send(
    network: "Network",
    src: str,
    dst: str,
    size: int = 0,
    policy: RetryPolicy | None = None,
    stats: "RpcStats | None" = None,
    traffic_class: str | None = None,
) -> Generator:
    """Generator: deliver a one-way message with timeout + retry.

    Completes when one transmitted copy of the message has arrived. Raises
    :class:`RpcTimeout` once a bounded policy's budget is exhausted. Returns
    the number of transmission attempts (1 in the fault-free case). ``stats``
    (optional) is an object with ``rpc_timeouts``/``rpc_retries`` counters.
    ``traffic_class`` selects the contended network's fair-share class (the
    migration data path tags its bulk transfers so ``--pump-share`` can cap
    them; see :data:`repro.sim.network.MIGRATION_CLASS`).
    """
    policy = policy or DEFAULT_POLICY
    if network.link_is_clean(src, dst):
        # Fault-free fast path: the message is guaranteed to arrive, so wait
        # on the delivery event directly — no AnyOf/Timeout allocations, no
        # dangling timeout entry left in the heap.
        yield network.send(src, dst, size, traffic_class)
        return 1
    attempt = 0
    while True:
        attempt += 1
        arrived = network.send(src, dst, size, traffic_class)
        index, _value = yield AnyOf([arrived, Timeout(policy.timeout)])
        if index == 0:
            return attempt
        if stats is not None:
            stats.rpc_timeouts += 1
        if not policy.persistent and attempt >= policy.max_attempts:
            raise RpcTimeout(src, dst, attempt)
        if stats is not None:
            stats.rpc_retries += 1
        yield Timeout(policy.backoff(attempt))


def reliable_roundtrip(
    network: "Network",
    src: str,
    dst: str,
    request_size: int = 0,
    response_size: int = 0,
    policy: RetryPolicy | None = None,
    stats: "RpcStats | None" = None,
    traffic_class: str | None = None,
) -> Generator:
    """Generator: request/response round trip with timeout + retry."""
    policy = policy or DEFAULT_POLICY
    if network.link_is_clean(src, dst):
        # Fault-free fast path (the {src, dst} link state is unordered, so a
        # clean check covers both legs of the round trip).
        yield network.roundtrip(src, dst, request_size, response_size, traffic_class)
        return 1
    attempt = 0
    while True:
        attempt += 1
        done = network.roundtrip(src, dst, request_size, response_size, traffic_class)
        index, _value = yield AnyOf([done, Timeout(2 * policy.timeout)])
        if index == 0:
            return attempt
        if stats is not None:
            stats.rpc_timeouts += 1
        if not policy.persistent and attempt >= policy.max_attempts:
            raise RpcTimeout(src, dst, attempt)
        if stats is not None:
            stats.rpc_retries += 1
        yield Timeout(policy.backoff(attempt))


class RpcStats:
    """Cluster-wide RPC health counters (fed into chaos reports)."""

    __slots__ = ("rpc_timeouts", "rpc_retries")

    def __init__(self) -> None:
        self.rpc_timeouts = 0
        self.rpc_retries = 0
