"""Deterministic discrete-event simulation kernel.

The kernel provides the virtual-time substrate on which the simulated
distributed database runs: an event heap (:class:`~repro.sim.kernel.Simulator`),
generator-based cooperative processes (:class:`~repro.sim.process.Process`),
waitable events (:class:`~repro.sim.events.Event`), capacity-limited CPU
resources with usage accounting (:class:`~repro.sim.resources.CpuResource`) and
a latency/bandwidth network model (:class:`~repro.sim.network.Network`).

A process is a Python generator that yields *waitables*:

- a ``float``/``int`` or :class:`~repro.sim.events.Timeout` — sleep for a delay,
- an :class:`~repro.sim.events.Event` — wait until it is triggered,
- another :class:`~repro.sim.process.Process` — join it,
- :class:`~repro.sim.events.AllOf` — wait for several waitables at once.

All state transitions happen between yields, so protocol state machines are
exact and runs are fully deterministic for a given seed.
"""

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import AllOf, AnyOf, At, Event, Timeout
from repro.sim.kernel import Simulator
from repro.sim.partition import PartitionedSimulator, partition_lookahead, partitions_from_topology
from repro.sim.network import BACKUP_CLASS, MIGRATION_CLASS, Network, NetworkConfig
from repro.sim.process import Process
from repro.sim.resources import CpuResource, Resource
from repro.sim.rng import RngStream, SeedSequence
from repro.sim.rpc import (
    RetryPolicy,
    RpcStats,
    RpcTimeout,
    reliable_roundtrip,
    reliable_send,
)
from repro.sim.topology import LinkProfile, Topology, make_topology

__all__ = [
    "AllOf",
    "AnyOf",
    "At",
    "BACKUP_CLASS",
    "CpuResource",
    "Event",
    "Interrupt",
    "LinkProfile",
    "MIGRATION_CLASS",
    "Network",
    "NetworkConfig",
    "PartitionedSimulator",
    "Topology",
    "Process",
    "Resource",
    "RetryPolicy",
    "RngStream",
    "RpcStats",
    "RpcTimeout",
    "SeedSequence",
    "SimulationError",
    "Simulator",
    "Timeout",
    "make_topology",
    "partition_lookahead",
    "partitions_from_topology",
    "reliable_roundtrip",
    "reliable_send",
]
