"""Partitioned event loop: the kernel heap sharded by node group.

:class:`PartitionedSimulator` splits the single event heap into one subheap
per *partition* (a node group — typically one availability zone) plus a
**control partition** (id 0) for everything not homed on a node: workload
dispatchers, migration supervisors, harness processes. Execution proceeds in
conservative time windows::

    t0    = min event time across all subheaps
    limit = min(t0 + lookahead, until)
    drain partition 0, then 1..P, each up to (strictly before) ``limit``

``lookahead`` is the minimum network latency between nodes in *different*
partitions (:func:`partition_lookahead`, derived from the topology's tier
profiles). Within a window each partition executes its own events in exact
``(time, seq)`` order, but *across* partitions events may execute out of
global time order — the classic conservative-DES relaxation. It is safe
because the only way one partition can affect another inside a window is a
network message, and every cross-partition message takes at least
``lookahead`` of latency, landing at or beyond the window's limit:

- :meth:`repro.sim.network.Network.send` rehomes the arrival event to the
  destination node's partition (via :meth:`schedule_for_node`), so the
  receiver's continuation — the event's waiter callbacks and everything
  they schedule — runs under the receiver's subheap;
- processes, timeouts and zero-delay continuations inherit the partition
  that scheduled them, keeping node-local causality chains node-local;
- the control partition drains *first* in every window, so control-plane
  work (arrival dispatch, spawns into node partitions at the current
  instant) is visible to every node partition in the same window.

Two hard requirements, asserted by :meth:`for_topology`:

- the topology must be **uncontended**: fair-share trunks settle elapsed
  progress against ``sim.now`` and are global shared state, which a
  rewinding clock would corrupt; uncontended links price each message
  independently and never read the clock after send time;
- ``lookahead`` must be positive, i.e. the partitions must actually be
  separated by a network tier.

Determinism: the window schedule is a pure function of the event heaps, so
a fixed seed replays exactly. Byte-identity with the single-loop run
additionally requires that no *synchronous* cross-partition state access
happens inside a window (e.g. a migration actively copying between groups
mutates the destination from the source's partition); the equivalence
suite pins identity for group-local workloads and the storm bench reports
partitioned runs separately. ``fastpath.partitioned_loop`` gates the whole
mode and defaults off.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Any, Callable

from repro.profiling.counters import COUNTERS
from repro.sim.errors import SimulationError
from repro.sim.kernel import _ARGS, _CALLBACK, _TIME, ScheduledCall, Simulator
from repro.sim.topology import Topology

#: Partition id of the control partition (dispatchers, supervisors, harness).
CONTROL_PARTITION = 0


def partitions_from_topology(topology: Topology) -> dict[str, int]:
    """Map every placed node to a partition id, one partition per AZ.

    Ids start at 1; partition 0 is reserved for the control partition.
    """
    groups: dict[str, int] = {}
    assignment: dict[str, int] = {}
    for node in topology.nodes():
        az = topology.placement(node)[1]
        pid = groups.setdefault(az, len(groups) + 1)
        assignment[node] = pid
    return assignment


def partition_lookahead(topology: Topology, assignment: dict[str, int]) -> float:
    """The conservative window width: minimum latency between nodes in
    different partitions. 0.0 when no pair crosses a partition boundary."""
    best = 0.0
    nodes = list(assignment)
    for i, a in enumerate(nodes):
        pid = assignment[a]
        for b in nodes[i + 1 :]:
            if assignment[b] == pid:
                continue
            latency = min(
                topology.profile_for(a, b).latency,
                topology.profile_for(b, a).latency,
            )
            if best == 0.0 or latency < best:
                best = latency
    return best


class PartitionedSimulator(Simulator):
    """A :class:`Simulator` whose heap is sharded into partition subheaps.

    Drop-in for the plain simulator: ``schedule`` / ``schedule_at`` /
    ``cancel`` / ``spawn`` / ``run`` / ``step`` keep their contracts, the
    sequence counter stays global (so merged same-instant execution remains
    FIFO by schedule order), and ``pending_events`` counts across subheaps.
    New events land in the *current* partition — the one whose drain is
    executing, or whatever :meth:`partition_scope` is active during setup.
    """

    partitioned = True

    def __init__(self, seed: int = 0, num_partitions: int = 1, lookahead: float = 0.0) -> None:
        super().__init__(seed)
        if num_partitions < 1:
            raise SimulationError("need at least one partition")
        if lookahead < 0.0:
            raise SimulationError("negative lookahead: {}".format(lookahead))
        self.lookahead = lookahead
        self._heaps: list[list[ScheduledCall]] = [[] for _ in range(num_partitions + 1)]
        self._node_partition: dict[str, int] = {}
        self._current = CONTROL_PARTITION
        # Highest dispatched event time; ``now`` rewinds inside a window as
        # the drain hops partitions, so the final clock comes from here.
        self._max_time = 0.0
        self._executed = 0

    @classmethod
    def for_topology(cls, topology: Topology, seed: int = 0) -> "PartitionedSimulator":
        """Build a partitioned simulator for ``topology``: one partition per
        AZ, lookahead from the tier profiles, every node assigned."""
        if topology.contended:
            raise SimulationError(
                "partitioned loop requires an uncontended topology: fair-share "
                "trunks are global state settled against a monotone clock"
            )
        assignment = partitions_from_topology(topology)
        lookahead = partition_lookahead(topology, assignment)
        if len(set(assignment.values())) > 1 and lookahead <= 0.0:
            raise SimulationError(
                "partitioned loop needs a positive inter-partition latency "
                "(topology {!r} has none)".format(topology.name)
            )
        sim = cls(seed, num_partitions=max(assignment.values(), default=1), lookahead=lookahead)
        for node, pid in assignment.items():
            sim.assign_node(node, pid)
        return sim

    # ------------------------------------------------------------------
    # Partition bookkeeping
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        """Node partitions (excluding the control partition)."""
        return len(self._heaps) - 1

    def assign_node(self, node: str, pid: int) -> None:
        """Home ``node``'s events (network arrivals, scoped spawns) on
        partition ``pid`` (1-based; 0 is the control partition)."""
        if not 0 <= pid < len(self._heaps):
            raise SimulationError(
                "partition {} out of range (have {})".format(pid, len(self._heaps))
            )
        self._node_partition[node] = pid

    def node_partition(self, node: str) -> int:
        """``node``'s partition; unassigned nodes map to the control one."""
        return self._node_partition.get(node, CONTROL_PARTITION)

    @contextmanager
    def partition_scope(self, pid: int):
        """Make ``pid`` the current partition for scheduling (and spawning)
        inside the ``with`` block. Used during setup to home node daemons."""
        previous = self._current
        self._current = pid
        try:
            yield
        finally:
            self._current = previous

    def spawn_on_node(self, node: str, generator, name: str = ""):
        """Spawn a process homed on ``node``'s partition."""
        previous = self._current
        self._current = self._node_partition.get(node, CONTROL_PARTITION)
        try:
            return self.spawn(generator, name=name)
        finally:
            self._current = previous

    # ------------------------------------------------------------------
    # Scheduling (current-partition variants of the base methods)
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., object], *args: Any
    ) -> ScheduledCall:
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay={})".format(delay))
        self._seq = seq = self._seq + 1
        entry = [self.now + delay, seq, callback, args]
        heapq.heappush(self._heaps[self._current], entry)
        return entry

    def schedule_at(
        self, time: float, callback: Callable[..., object], *args: Any
    ) -> ScheduledCall:
        if time < self.now:
            raise SimulationError(
                "cannot schedule in the past (time={}, now={})".format(time, self.now)
            )
        self._seq = seq = self._seq + 1
        entry = [time, seq, callback, args]
        heapq.heappush(self._heaps[self._current], entry)
        return entry

    def schedule_for_node(
        self, node: str, delay: float, callback: Callable[..., object], *args: Any
    ) -> ScheduledCall:
        """Schedule into ``node``'s partition regardless of the current one.

        The network calls this for arrival events so a message's delivery —
        and every continuation hanging off it — executes under the
        destination's subheap.
        """
        previous = self._current
        self._current = self._node_partition.get(node, CONTROL_PARTITION)
        try:
            return self.schedule(delay, callback, *args)
        finally:
            self._current = previous

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next_time(self) -> float | None:
        """Earliest live event time across subheaps (lazily popping
        cancelled heads), or None when everything is drained."""
        best = None
        pop = heapq.heappop
        for heap in self._heaps:
            while heap and heap[0][_CALLBACK] is None:
                pop(heap)
                self._cancelled -= 1
            if heap and (best is None or heap[0][_TIME] < best):
                best = heap[0][_TIME]
        return best

    def _drain_window(self, pid: int, limit: float) -> None:
        """Run partition ``pid``'s events with time strictly below ``limit``
        in local (time, seq) order; new events land in this partition."""
        heap = self._heaps[pid]
        pop = heapq.heappop
        profiler = Simulator._active_profiler
        previous = self._current
        self._current = pid
        executed = 0
        try:
            while heap:
                entry = heap[0]
                callback = entry[_CALLBACK]
                if callback is None:
                    pop(heap)
                    self._cancelled -= 1
                    continue
                time = entry[_TIME]
                if time >= limit:
                    break
                pop(heap)
                self.now = time
                if time > self._max_time:
                    self._max_time = time
                executed += 1
                if profiler is None:
                    callback(*entry[_ARGS])
                else:
                    profiler.dispatch(callback, entry[_ARGS])
        finally:
            self._current = previous
            self._executed += executed

    def _drain_instant(self, boundary: float) -> None:
        """Run every event with time <= ``boundary`` in *global* (time, seq)
        order — the pinned ``run(until)`` boundary semantics: events created
        at the boundary instant by boundary callbacks still execute."""
        heaps = self._heaps
        pop = heapq.heappop
        profiler = Simulator._active_profiler
        previous = self._current
        executed = 0
        try:
            while True:
                best = None
                best_pid = -1
                for pid, heap in enumerate(heaps):
                    while heap and heap[0][_CALLBACK] is None:
                        pop(heap)
                        self._cancelled -= 1
                    if heap:
                        head = heap[0]
                        if head[_TIME] <= boundary and (best is None or head < best):
                            best = head
                            best_pid = pid
                if best is None:
                    return
                pop(heaps[best_pid])
                self._current = best_pid
                self.now = best[_TIME]
                if self.now > self._max_time:
                    self._max_time = self.now
                executed += 1
                if profiler is None:
                    best[_CALLBACK](*best[_ARGS])
                else:
                    profiler.dispatch(best[_CALLBACK], best[_ARGS])
        finally:
            self._current = previous
            self._executed += executed

    def run(self, until: float | None = None) -> float:
        """Windowed conservative drain (see module docstring).

        Same contract as :meth:`Simulator.run`: returns when the heaps are
        empty or every remaining event lies beyond ``until``; boundary
        events at exactly ``until`` execute before the clock pins there.
        """
        lookahead = self.lookahead
        heaps = self._heaps
        while True:
            t0 = self._next_time()
            if t0 is None or (until is not None and t0 > until):
                break
            limit = t0 + lookahead
            if until is not None and limit > until:
                limit = until
            if limit > t0:
                COUNTERS.drain_windows += 1
                for pid in range(len(heaps)):
                    self._drain_window(pid, limit)
            else:
                # Degenerate window (zero lookahead, or t0 == until): run
                # this single instant in merged global order and rescan.
                COUNTERS.drain_instants += 1
                self._drain_instant(t0)
                if until is not None and t0 >= until:
                    break
        if self._max_time > self.now:
            self.now = self._max_time
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Execute the globally next event (merged across subheaps).

        Exists for :meth:`run_until_complete` and debugging; the windowed
        :meth:`run` is the fast path.
        """
        heaps = self._heaps
        pop = heapq.heappop
        profiler = Simulator._active_profiler
        best = None
        best_pid = -1
        for pid, heap in enumerate(heaps):
            while heap and heap[0][_CALLBACK] is None:
                pop(heap)
                self._cancelled -= 1
            if heap:
                head = heap[0]
                if best is None or head < best:
                    best = head
                    best_pid = pid
        if best is None:
            return False
        pop(heaps[best_pid])
        previous = self._current
        self._current = best_pid
        try:
            self.now = best[_TIME]
            if self.now > self._max_time:
                self._max_time = self.now
            self._executed += 1
            if profiler is None:
                best[_CALLBACK](*best[_ARGS])
            else:
                profiler.dispatch(best[_CALLBACK], best[_ARGS])
        finally:
            self._current = previous
        return True

    @property
    def pending_events(self) -> int:
        return sum(len(heap) for heap in self._heaps) - self._cancelled

    @property
    def events_drained(self) -> int:
        """Events this simulator actually executed (cancelled entries and
        events parked in subheaps it never drains are excluded) — the
        per-worker denominator for window-rate reporting."""
        return self._executed
