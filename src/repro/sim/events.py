"""Waitable primitives: events, timeouts and composite waits."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.sim.errors import SimulationError

if TYPE_CHECKING:
    from repro.sim.kernel import Simulator


class Event:
    """A one-shot waitable that processes can block on.

    An event starts *pending*; it is completed exactly once with either
    :meth:`succeed` (delivering a value to all waiters) or :meth:`fail`
    (throwing an exception into all waiters).
    """

    __slots__ = ("sim", "name", "_callbacks", "_done", "_value", "_exception")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: list[Callable[["Event"], object]] = []
        self._done = False
        self._value: Any = None
        self._exception: BaseException | None = None

    @property
    def triggered(self) -> bool:
        """True once the event has been completed (succeeded or failed)."""
        return self._done

    @property
    def ok(self) -> bool:
        """True if the event completed via :meth:`succeed`."""
        return self._done and self._exception is None

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("event {!r} has not been triggered".format(self.name))
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    def succeed(self, value: Any = None) -> "Event":
        """Complete the event, waking every waiter with ``value``."""
        self._complete(value=value, exception=None)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Complete the event, throwing ``exception`` into every waiter."""
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._complete(value=None, exception=exception)
        return self

    def _complete(self, value: Any, exception: BaseException | None) -> None:
        if self._done:
            raise SimulationError("event {!r} triggered twice".format(self.name))
        self._done = True
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim.schedule(0.0, callback, self)

    def succeed_inline(self, value: Any = None) -> "Event":
        """Complete the event, running every waiter callback *synchronously*.

        Equivalent to :meth:`succeed` when called from inside a scheduled
        callback at the exact (time, seq) slot where the waiters would have
        resumed anyway: the waiters run now, in registration order, instead
        of through one zero-delay heap entry each. The WAL group-commit
        close timer uses this so a batch of N joiners costs one kernel
        event rather than N.
        """
        if self._done:
            raise SimulationError("event {!r} triggered twice".format(self.name))
        self._done = True
        self._value = value
        self._exception = None
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return self

    def add_callback(self, callback: Callable[["Event"], object]) -> None:
        """Register ``callback(event)``; fires immediately if already done."""
        if self._done:
            self.sim.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], object]) -> None:
        if callback in self._callbacks:
            self._callbacks.remove(callback)

    def __repr__(self) -> str:
        state = "done" if self._done else "pending"
        return "Event({!r}, {})".format(self.name, state)


class Timeout:
    """Sleep for ``delay`` units of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError("negative timeout: {}".format(delay))
        self.delay = delay

    def __repr__(self) -> str:
        return "Timeout({})".format(self.delay)


class At:
    """Sleep until the *absolute* simulated instant ``time``.

    Unlike ``Timeout(t - sim.now)``, the wake-up lands at exactly ``time``
    (via :meth:`Simulator.schedule_at`) with no float round-trip through the
    current clock. The batch workload engine leans on this: per-client and
    batched dispatch compute the same arrival instants from the same RNG
    draws, and ``At`` guarantees both modes wake at bit-identical times even
    though they go to sleep from different ``now`` values.
    """

    __slots__ = ("time",)

    def __init__(self, time: float) -> None:
        self.time = time

    def __repr__(self) -> str:
        return "At({})".format(self.time)


class AllOf:
    """Wait for every waitable in ``waitables``; yields the list of values."""

    __slots__ = ("waitables",)

    def __init__(self, waitables: Iterable) -> None:
        self.waitables = list(waitables)


class AnyOf:
    """Wait until any waitable completes; yields ``(index, value)``."""

    __slots__ = ("waitables",)

    def __init__(self, waitables: Iterable) -> None:
        self.waitables = list(waitables)
        if not self.waitables:
            raise SimulationError("AnyOf requires at least one waitable")
