"""The simulator core: a deterministic event heap with virtual time."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator

from repro.sim.errors import SimulationError
from repro.sim.events import Event
from repro.sim.process import Process
from repro.sim.rng import RngStream, SeedSequence


class _ScheduledCall:
    """A heap entry. Ordered by (time, sequence) so ties are FIFO."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., object],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "_ScheduledCall") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """A discrete-event simulator with deterministic execution order.

    All simulated components share one :class:`Simulator`. Time is a float in
    *seconds* of virtual time. Determinism comes from the FIFO tie-break on
    the event heap plus seeded RNG streams handed out by :meth:`rng`.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self._heap: list[_ScheduledCall] = []
        self._seq = 0
        self._seeds = SeedSequence(seed)
        # (process, exception) of crashed processes
        self.failed_processes: list[tuple[Process, BaseException]] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., object], *args: Any
    ) -> _ScheduledCall:
        """Run ``callback(*args)`` after ``delay`` virtual seconds.

        Returns a handle whose ``cancelled`` flag may be set to skip the call.
        """
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay={})".format(delay))
        self._seq += 1
        entry = _ScheduledCall(self.now + delay, self._seq, callback, args)
        heapq.heappush(self._heap, entry)
        return entry

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``; returns the Process."""
        return Process(self, generator, name=name)

    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event` bound to this simulator."""
        return Event(self, name=name)

    def rng(self, label: str) -> RngStream:
        """Return an independent, reproducible RNG stream for ``label``."""
        return self._seeds.stream(label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled call. Returns False when idle."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            if entry.time < self.now:
                raise SimulationError("time went backwards")
            self.now = entry.time
            entry.callback(*entry.args)
            return True
        return False

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains or virtual time passes ``until``."""
        if until is None:
            while self.step():
                pass
            return self.now
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > until:
                break
            self.step()
        self.now = max(self.now, until)
        return self.now

    def run_until_complete(self, process: Process, limit: float | None = None) -> Any:
        """Run until ``process`` finishes; returns its value or re-raises.

        ``limit`` bounds virtual time as a safety net against deadlock.
        """
        while not process.finished:
            if limit is not None and self.now > limit:
                raise SimulationError(
                    "process {!r} did not finish by t={}".format(process.name, limit)
                )
            if not self.step():
                raise SimulationError(
                    "deadlock: no pending events but process {!r} not finished".format(
                        process.name
                    )
                )
        return process.result()

    @property
    def pending_events(self) -> int:
        return sum(1 for entry in self._heap if not entry.cancelled)
