"""The simulator core: a deterministic event heap with virtual time.

The event loop is the hottest code in the repository — every message hop,
timeout, CPU grant and process resumption passes through it — so it is
written for speed:

- heap entries are plain ``[time, seq, callback, args]`` lists, so heap
  sibling comparisons run entirely in C (list comparison falls through to
  float/int compares; ``seq`` is unique, so ``callback`` is never compared);
- :meth:`Simulator.run` pops and dispatches inline instead of paying a
  ``step()`` method call (and a second heap access) per event;
- cancellation clears the entry's callback slot in place and maintains a
  live counter, making :attr:`pending_events` O(1) instead of an O(n) scan.

``repro.bench.kernel_bench`` pins the resulting speedup against the frozen
pre-optimization kernel (:mod:`repro.bench._legacy_kernel`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator

from repro.sim.errors import SimulationError
from repro.sim.events import Event
from repro.sim.process import Process
from repro.sim.rng import RngStream, SeedSequence

#: A scheduled call: ``[time, seq, callback, args]``. Ordered by
#: ``(time, seq)`` so ties are FIFO; a ``None`` callback marks cancellation.
ScheduledCall = list

_TIME = 0
_SEQ = 1
_CALLBACK = 2
_ARGS = 3


class Simulator:
    """A discrete-event simulator with deterministic execution order.

    All simulated components share one :class:`Simulator`. Time is a float in
    *seconds* of virtual time. Determinism comes from the FIFO tie-break on
    the event heap plus seeded RNG streams handed out by :meth:`rng`.
    """

    #: Set by :class:`repro.profiling.Profiler` while active. Checked once
    #: per :meth:`run` call (zero per-event cost when profiling is off) and
    #: once per :meth:`step`. Class-level so the hook needs no per-instance
    #: state and survives simulator re-creation inside a profiled block.
    _active_profiler: Any = None

    #: True on :class:`repro.sim.partition.PartitionedSimulator`. The
    #: network consults this one class-attribute bool per send to decide
    #: whether arrival events must be rehomed to the destination node's
    #: partition; on the plain simulator the check costs a single attribute
    #: load and nothing else.
    partitioned: bool = False

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self._heap: list[ScheduledCall] = []
        self._seq = 0
        self._cancelled = 0  # cancelled entries still sitting in the heap
        self._seeds = SeedSequence(seed)
        # (process, exception) of crashed processes
        self.failed_processes: list[tuple[Process, BaseException]] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., object], *args: Any
    ) -> ScheduledCall:
        """Run ``callback(*args)`` after ``delay`` virtual seconds.

        Returns a handle accepted by :meth:`cancel` to skip the call.
        """
        if delay < 0:
            raise SimulationError("cannot schedule in the past (delay={})".format(delay))
        self._seq = seq = self._seq + 1
        entry = [self.now + delay, seq, callback, args]
        heapq.heappush(self._heap, entry)
        return entry

    def schedule_at(
        self, time: float, callback: Callable[..., object], *args: Any
    ) -> ScheduledCall:
        """Run ``callback(*args)`` at absolute virtual ``time``.

        Exists for callers that must land on an exact precomputed instant
        (e.g. a coalesced CPU charge reproducing the float sum of its
        unbatched parts); ``schedule`` would recompute ``now + delay`` and
        can drift by an ulp.
        """
        if time < self.now:
            raise SimulationError(
                "cannot schedule in the past (time={}, now={})".format(time, self.now)
            )
        self._seq = seq = self._seq + 1
        entry = [time, seq, callback, args]
        heapq.heappush(self._heap, entry)
        return entry

    def schedule_for_node(
        self, node: str, delay: float, callback: Callable[..., object], *args: Any
    ) -> ScheduledCall:
        """Schedule on behalf of ``node``. On the plain simulator there is
        only one heap, so this is exactly :meth:`schedule`; the partitioned
        subclass homes the entry on ``node``'s partition instead."""
        return self.schedule(delay, callback, *args)

    def cancel(self, entry: ScheduledCall) -> None:
        """Cancel a scheduled call. Cancelling twice is a harmless no-op."""
        if entry[_CALLBACK] is not None:
            entry[_CALLBACK] = None
            entry[_ARGS] = ()
            self._cancelled += 1

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``; returns the Process."""
        return Process(self, generator, name=name)

    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event` bound to this simulator."""
        return Event(self, name=name)

    def rng(self, label: str) -> RngStream:
        """Return an independent, reproducible RNG stream for ``label``."""
        return self._seeds.stream(label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled call. Returns False when idle."""
        heap = self._heap
        profiler = Simulator._active_profiler
        while heap:
            entry = heapq.heappop(heap)
            callback = entry[_CALLBACK]
            if callback is None:
                self._cancelled -= 1
                continue
            self.now = entry[_TIME]
            if profiler is None:
                callback(*entry[_ARGS])
            else:
                profiler.dispatch(callback, entry[_ARGS])
            return True
        return False

    def run(self, until: float | None = None) -> float:
        """Run until the heap drains or virtual time passes ``until``.

        Events scheduled at exactly ``t == until`` — including ones created
        by callbacks running at the boundary — execute (in FIFO order)
        before the call returns; only then does ``now`` advance to
        ``until``.
        """
        if Simulator._active_profiler is not None:
            return self._run_profiled(until)
        heap = self._heap
        pop = heapq.heappop
        if until is None:
            while heap:
                entry = pop(heap)
                callback = entry[_CALLBACK]
                if callback is None:
                    self._cancelled -= 1
                    continue
                self.now = entry[_TIME]
                callback(*entry[_ARGS])
            return self.now
        while heap:
            entry = heap[0]
            if entry[_CALLBACK] is None:
                pop(heap)
                self._cancelled -= 1
                continue
            if entry[_TIME] > until:
                break
            pop(heap)
            self.now = entry[_TIME]
            entry[_CALLBACK](*entry[_ARGS])
        if until > self.now:
            self.now = until
        return self.now

    def _run_profiled(self, until: float | None) -> float:
        """The :meth:`run` loop with every dispatch routed through the
        active profiler. Identical pop order, time advancement and boundary
        semantics — the profiler only wraps the callback invocation."""
        profiler = Simulator._active_profiler
        profiler.last_sim = self
        dispatch = profiler.dispatch
        heap = self._heap
        pop = heapq.heappop
        if until is None:
            while heap:
                entry = pop(heap)
                callback = entry[_CALLBACK]
                if callback is None:
                    self._cancelled -= 1
                    continue
                self.now = entry[_TIME]
                dispatch(callback, entry[_ARGS])
            return self.now
        while heap:
            entry = heap[0]
            if entry[_CALLBACK] is None:
                pop(heap)
                self._cancelled -= 1
                continue
            if entry[_TIME] > until:
                break
            pop(heap)
            self.now = entry[_TIME]
            dispatch(entry[_CALLBACK], entry[_ARGS])
        if until > self.now:
            self.now = until
        return self.now

    def run_until_complete(self, process: Process, limit: float | None = None) -> Any:
        """Run until ``process`` finishes; returns its value or re-raises.

        ``limit`` bounds virtual time as a safety net against deadlock.
        """
        while not process.finished:
            if limit is not None and self.now > limit:
                raise SimulationError(
                    "process {!r} did not finish by t={}".format(process.name, limit)
                )
            if not self.step():
                raise SimulationError(
                    "deadlock: no pending events but process {!r} not finished".format(
                        process.name
                    )
                )
        return process.result()

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) scheduled calls, maintained in O(1)."""
        return len(self._heap) - self._cancelled
