"""An insertion-ordered set for protocol state.

Python's built-in ``set`` iterates in hash order, and string hashing is
randomized per process (PYTHONHASHSEED): two runs of the *same seed* can
release locks, chain replay tasks or wait on events in different orders,
breaking the simulator's bit-identical-timeline guarantee. ``OrderedSet``
keeps set semantics (uniqueness, O(1) membership) but iterates in insertion
order, which is fully determined by the simulation itself.

Protocol/migration/txn state that is ever iterated must use this type (or
wrap every iteration in ``sorted()``) — simlint rule SIM003 enforces it.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator


class OrderedSet:
    """A set that iterates in insertion order (dict-backed)."""

    __slots__ = ("_items",)

    def __init__(self, iterable: Iterable[Hashable] = ()) -> None:
        self._items: dict = dict.fromkeys(iterable)

    # -- core set protocol ---------------------------------------------
    def add(self, item: Hashable) -> None:
        self._items[item] = None

    def discard(self, item: Hashable) -> None:
        self._items.pop(item, None)

    def remove(self, item: Hashable) -> None:
        del self._items[item]

    def clear(self) -> None:
        self._items.clear()

    def update(self, iterable: Iterable[Hashable]) -> None:
        for item in iterable:
            self._items[item] = None

    def difference_update(self, iterable: Iterable[Hashable]) -> None:
        for item in iterable:
            self._items.pop(item, None)

    def copy(self) -> "OrderedSet":
        return OrderedSet(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    # -- algebra (results keep *this* set's iteration order) ------------
    def __and__(self, other) -> "OrderedSet":
        return OrderedSet(item for item in self._items if item in other)

    def __rand__(self, other) -> "OrderedSet":
        # set & OrderedSet: keep our deterministic order, not the set's.
        return self.__and__(other)

    def intersection(self, other) -> "OrderedSet":
        return self.__and__(other)

    def __or__(self, other) -> "OrderedSet":
        result = self.copy()
        result.update(other)
        return result

    def __ror__(self, other) -> "OrderedSet":
        return OrderedSet(other) | self

    def __ior__(self, other) -> "OrderedSet":
        self.update(other)
        return self

    def union(self, other) -> "OrderedSet":
        return self.__or__(other)

    def __sub__(self, other) -> "OrderedSet":
        return OrderedSet(item for item in self._items if item not in other)

    def difference(self, other) -> "OrderedSet":
        return self.__sub__(other)

    # -- comparison ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderedSet):
            return self._items.keys() == other._items.keys()
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        return "OrderedSet({!r})".format(list(self._items))
