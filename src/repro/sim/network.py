"""A point-to-point network model with latency, bandwidth and link faults.

Messages between distinct simulated nodes take ``base_latency`` plus a
size-proportional transfer time; messages a node sends to itself are free.
The model is intentionally simple — migration behaviour in the paper is
dominated by *protocol waiting* (locks, pulls, 2PC round trips), which this
captures, rather than by packet-level effects.

For chaos testing every (unordered) node pair carries mutable fault state:

- **partitioned** links never deliver — the arrival event simply never
  fires, so callers must bound their wait with a timeout (see
  :mod:`repro.sim.rpc`);
- **lossy** links drop each message independently with probability ``p``,
  drawn from the network's seeded RNG stream so runs stay reproducible;
- **latency spikes** add a fixed extra one-way delay.

Dropped and partitioned messages still count in ``messages_sent`` /
``bytes_sent`` (the sender did put them on the wire); they are additionally
tallied in ``messages_dropped``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.sim.events import AllOf, Event

if TYPE_CHECKING:
    from repro.sim.kernel import Simulator


@dataclass(slots=True)
class NetworkConfig:
    """Network cost model.

    Attributes:
        base_latency: one-way propagation + stack delay in seconds.
        bandwidth: bytes per second for size-dependent transfer time.
        jitter: max uniform extra delay in seconds (0 disables jitter).
    """

    base_latency: float = 0.0002
    bandwidth: float = 1.25e9  # 10 Gbps in bytes/second
    jitter: float = 0.0


class LinkState:
    """Mutable fault state of one (unordered) node pair."""

    __slots__ = ("partitioned", "loss", "extra_latency")

    def __init__(self) -> None:
        self.partitioned = False
        self.loss = 0.0
        self.extra_latency = 0.0

    @property
    def faulty(self) -> bool:
        return self.partitioned or self.loss > 0.0 or self.extra_latency > 0.0


class Network:
    """Delivers messages between named nodes on a shared simulator."""

    def __init__(self, sim: "Simulator", config: NetworkConfig | None = None) -> None:
        self.sim = sim
        self.config = config or NetworkConfig()
        self._rng = sim.rng("network")
        self._links: dict[frozenset, LinkState] = {}  # frozenset({a, b}) -> LinkState
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        # Hot-path constants and the per-(src, dst) constant delay component
        # (base latency + link extra latency), rebuilt when faults change.
        self._inv_bandwidth = 1.0 / self.config.bandwidth
        self._delay_cache: dict[tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    # Link fault state (chaos injection)
    # ------------------------------------------------------------------
    def link(self, a: str, b: str) -> LinkState:
        """The mutable :class:`LinkState` of the unordered pair ``{a, b}``.

        Handing out the mutable state may precede a fault injection, so the
        precomputed per-pair delays are invalidated here.
        """
        self._delay_cache.clear()
        key = frozenset((a, b))
        if key not in self._links:
            self._links[key] = LinkState()
        return self._links[key]

    def partition(self, a: str, b: str) -> None:
        """Cut the link between ``a`` and ``b`` (both directions)."""
        self.link(a, b).partitioned = True

    def heal_partition(self, a: str, b: str) -> None:
        self.link(a, b).partitioned = False

    def is_partitioned(self, a: str, b: str) -> bool:
        if a == b:
            return False
        key = frozenset((a, b))
        state = self._links.get(key)
        return state is not None and state.partitioned

    def set_loss(self, a: str, b: str, p: float) -> None:
        """Drop messages between ``a`` and ``b`` with probability ``p``."""
        self.link(a, b).loss = p

    def set_extra_latency(self, a: str, b: str, extra: float) -> None:
        """Add ``extra`` seconds of one-way delay between ``a`` and ``b``."""
        self.link(a, b).extra_latency = extra

    def clear_link_faults(self) -> None:
        self._links.clear()
        self._delay_cache.clear()

    def link_is_clean(self, src: str, dst: str) -> bool:
        """True when no fault state can affect a message ``src -> dst``.

        A clean link's messages are always delivered after a deterministic
        delay, so callers (:mod:`repro.sim.rpc`) may wait on the arrival
        event directly instead of arming a timeout. Fault state injected
        *after* a send never affects that message (loss and partition are
        decided at send time), so this test at send time is sufficient.
        """
        if not self._links:
            return True
        if src == dst:
            return True
        state = self._links.get(frozenset((src, dst)))
        return state is None or not state.faulty

    def _link_state(self, src: str, dst: str) -> LinkState | None:
        if src == dst:
            return None
        return self._links.get(frozenset((src, dst)))

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _constant_delay(self, src: str, dst: str) -> float:
        """Precomputed size-independent delay component for ``src -> dst``
        (base latency plus the link's extra latency), cached per pair until
        the fault state changes."""
        key = (src, dst)
        cached = self._delay_cache.get(key)
        if cached is None:
            cached = self.config.base_latency
            state = self._link_state(src, dst)
            if state is not None:
                cached += state.extra_latency
            self._delay_cache[key] = cached
        return cached

    def delay_for(self, src: str, dst: str, size: int = 0) -> float:
        """One-way delay in seconds for a ``size``-byte message src -> dst."""
        if src == dst:
            return 0.0
        delay = self._constant_delay(src, dst) + size * self._inv_bandwidth
        if self.config.jitter > 0:
            delay += self._rng.uniform(0.0, self.config.jitter)
        return delay

    def send(self, src: str, dst: str, size: int = 0) -> Event:
        """Returns an event that succeeds when the message has arrived.

        On a partitioned or (probabilistically) lossy link the event never
        fires — the message is gone; the sender must detect the loss with a
        timeout and retry (:func:`repro.sim.rpc.reliable_send`).
        """
        self.messages_sent += 1
        self.bytes_sent += size
        sim = self.sim
        arrived = Event(sim)
        if not self._links:
            # Fault-free fast path: no link lookups, no drop bookkeeping.
            if src == dst:
                sim.schedule(0.0, arrived.succeed, None)
                return arrived
            delay = self.config.base_latency + size * self._inv_bandwidth
            if self.config.jitter > 0:
                delay += self._rng.uniform(0.0, self.config.jitter)
            sim.schedule(delay, arrived.succeed, None)
            return arrived
        state = self._link_state(src, dst)
        if state is not None and state.partitioned:
            self.messages_dropped += 1
            return arrived
        if state is not None and state.loss > 0.0 and self._rng.random() < state.loss:
            self.messages_dropped += 1
            return arrived
        sim.schedule(self.delay_for(src, dst, size), arrived.succeed, None)
        return arrived

    def roundtrip(
        self, src: str, dst: str, request_size: int = 0, response_size: int = 0
    ) -> Event:
        """Returns an event for a request/response pair's total delay.

        Composed of two :meth:`send` events (request, then response once the
        request arrived) so that partition, loss and latency faults apply to
        each direction exactly as they do to plain sends. Message and byte
        accounting is identical to issuing the two sends directly.
        """
        done = self.sim.event(name="rpc:{}<->{}".format(src, dst))

        def _request_arrived(_event):
            response = self.send(dst, src, response_size)
            response.add_callback(lambda _ev: done.succeed(None))

        request = self.send(src, dst, request_size)
        request.add_callback(_request_arrived)
        return done

    def broadcast(self, src: str, dsts: Iterable[str], size: int = 0) -> AllOf:
        """Waitable that completes when the message reached every node."""
        return AllOf([self.send(src, dst, size) for dst in dsts])
