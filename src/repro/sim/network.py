"""A simple point-to-point network model with latency and bandwidth.

Messages between distinct simulated nodes take ``base_latency`` plus a
size-proportional transfer time; messages a node sends to itself are free.
The model is intentionally simple — migration behaviour in the paper is
dominated by *protocol waiting* (locks, pulls, 2PC round trips), which this
captures, rather than by packet-level effects.
"""

from dataclasses import dataclass

from repro.sim.events import AllOf


@dataclass
class NetworkConfig:
    """Network cost model.

    Attributes:
        base_latency: one-way propagation + stack delay in seconds.
        bandwidth: bytes per second for size-dependent transfer time.
        jitter: max uniform extra delay in seconds (0 disables jitter).
    """

    base_latency: float = 0.0002
    bandwidth: float = 1.25e9  # 10 Gbps in bytes/second
    jitter: float = 0.0


class Network:
    """Delivers messages between named nodes on a shared simulator."""

    def __init__(self, sim, config=None):
        self.sim = sim
        self.config = config or NetworkConfig()
        self._rng = sim.rng("network")
        self.messages_sent = 0
        self.bytes_sent = 0

    def delay_for(self, src, dst, size=0):
        """One-way delay in seconds for a ``size``-byte message src -> dst."""
        if src == dst:
            return 0.0
        delay = self.config.base_latency + size / self.config.bandwidth
        if self.config.jitter > 0:
            delay += self._rng.uniform(0.0, self.config.jitter)
        return delay

    def send(self, src, dst, size=0):
        """Returns an event that succeeds when the message has arrived."""
        self.messages_sent += 1
        self.bytes_sent += size
        arrived = self.sim.event(name="msg:{}->{}".format(src, dst))
        self.sim.schedule(self.delay_for(src, dst, size), arrived.succeed, None)
        return arrived

    def roundtrip(self, src, dst, request_size=0, response_size=0):
        """Returns an event for a request/response pair's total delay."""
        done = self.sim.event(name="rpc:{}<->{}".format(src, dst))
        total = self.delay_for(src, dst, request_size) + self.delay_for(
            dst, src, response_size
        )
        self.messages_sent += 2
        self.bytes_sent += request_size + response_size
        self.sim.schedule(total, done.succeed, None)
        return done

    def broadcast(self, src, dsts, size=0):
        """Waitable that completes when the message reached every node."""
        return AllOf([self.send(src, dst, size) for dst in dsts])
