"""A topology-aware network model with latency, bandwidth and link faults.

The network prices messages between named nodes under one of two cost
models, selected by its :class:`~repro.sim.topology.Topology`:

**Uncontended (single-rack)** — the original flat model: each message takes
``base_latency`` plus a size-proportional transfer time, priced
independently of every other message. This is the constant-delay fast path
the clean-link RPC optimization (:mod:`repro.sim.rpc`) and the kernel
benches rely on; a single-rack topology is byte-identical, event for event,
to the pre-topology network.

**Contended (multi-tier)** — every directed link is a shared resource. A
sized message becomes a *transfer* on its path's governing trunk (see
:meth:`Topology.route`: intra-rack node pair, rack uplink, AZ trunk or
region trunk), and all in-flight transfers on a trunk share its bandwidth
**fairly**: whenever a transfer starts or finishes, elapsed progress is
settled at the old rates and the trunk's bandwidth is re-divided equally
among the remaining transfers (deterministically, in transfer start order).
A traffic class can be capped below its fair share —
:meth:`set_class_cap` — which is how the migration pump's ``--pump-share``
throttle is enforced at the link layer. Zero-sized messages carry no bytes
and bypass the transfer machinery (pure latency).

Determinism: re-shares happen only inside scheduled events, completion
events are (re)scheduled through the simulator heap and therefore re-sort
by ``(time, seq)``, transfer bookkeeping iterates insertion-ordered lists,
and no wall clock or unseeded randomness is involved — contended timelines
replay exactly for a fixed seed.

For chaos testing every (unordered) node pair carries mutable fault state:

- **partitioned** links never deliver — the arrival event simply never
  fires, so callers must bound their wait with a timeout (see
  :mod:`repro.sim.rpc`);
- **lossy** links drop each message independently with probability ``p``,
  drawn from the network's seeded RNG stream so runs stay reproducible;
- **latency spikes** add a fixed extra one-way delay.

Whole *tiers* can additionally be degraded —
:meth:`set_tier_degrade` — scaling every matching trunk's bandwidth and
adding latency (a brown-out of the inter-AZ trunk, say) without marking
individual links faulty.

Dropped and partitioned messages still count in ``messages_sent`` /
``bytes_sent`` (the sender did put them on the wire); they are additionally
tallied in ``messages_dropped``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.sim.events import AllOf, Event
from repro.sim.topology import LinkKey, LinkProfile, Topology

if TYPE_CHECKING:
    from repro.sim.kernel import ScheduledCall, Simulator

#: Traffic class of migration data-path sends (snapshot copy, WAL pump,
#: Squall pulls). Capped to the ``pump_share`` fraction of any contended
#: trunk via :meth:`Network.set_class_cap`.
MIGRATION_CLASS = "migration"

#: Traffic class of background bulk traffic (the backup-interference
#: scenario). Uncapped by default: it competes at fair share.
BACKUP_CLASS = "backup"

#: Module-level once-guard for the flat-constructor deprecation warning.
_flat_config_warned = False


@dataclass(slots=True)
class NetworkConfig:
    """Flat single-tier network cost model.

    .. deprecated::
        Constructing ``Network(sim, NetworkConfig(...))`` directly maps the
        flat kwargs onto a one-rack :class:`Topology` and warns once; new
        code should build ``Network.from_topology(sim, topology)``. The
        dataclass itself remains the canonical home of the single-tier
        numbers (``ClusterConfig.network``) and of ``jitter``, which is a
        network-wide knob rather than a per-tier one.

    Attributes:
        base_latency: one-way propagation + stack delay in seconds.
        bandwidth: bytes per second for size-dependent transfer time.
        jitter: max uniform extra delay in seconds (0 disables jitter).
    """

    base_latency: float = 0.0002
    bandwidth: float = 1.25e9  # 10 Gbps in bytes/second
    jitter: float = 0.0


class LinkState:
    """Mutable fault state of one (unordered) node pair."""

    __slots__ = ("partitioned", "loss", "extra_latency")

    def __init__(self) -> None:
        self.partitioned = False
        self.loss = 0.0
        self.extra_latency = 0.0

    @property
    def faulty(self) -> bool:
        return self.partitioned or self.loss > 0.0 or self.extra_latency > 0.0


class _Transfer:
    """One in-flight sized message on a contended trunk."""

    __slots__ = ("bytes_left", "rate", "latency", "cls", "event", "handle")

    def __init__(self, size: float, latency: float, cls: str | None, event: Event) -> None:
        self.bytes_left = float(size)
        self.rate = 0.0
        self.latency = latency
        self.cls = cls
        self.event = event
        self.handle: "ScheduledCall | None" = None


class _LinkFlows:
    """The in-flight transfer set of one directed trunk."""

    __slots__ = ("key", "tier", "base_bandwidth", "bandwidth", "transfers", "last_update")

    def __init__(self, key: LinkKey, tier: str, bandwidth: float, now: float) -> None:
        self.key = key
        self.tier = tier
        self.base_bandwidth = bandwidth  # profile bandwidth, before degrade
        self.bandwidth = bandwidth  # effective (degraded) bandwidth
        self.transfers: list[_Transfer] = []
        self.last_update = now


class Network:
    """Delivers messages between named nodes on a shared simulator."""

    def __init__(
        self,
        sim: "Simulator",
        config: NetworkConfig | None = None,
        *,
        topology: Topology | None = None,
    ) -> None:
        if topology is None:
            global _flat_config_warned
            if not _flat_config_warned:
                _flat_config_warned = True
                warnings.warn(
                    "Network(sim, NetworkConfig(...)) is deprecated; build "
                    "Network.from_topology(sim, Topology.single(...)) — the "
                    "flat kwargs map onto a one-rack topology",
                    DeprecationWarning,
                    stacklevel=2,
                )
            config = config or NetworkConfig()
            topology = Topology.single(
                LinkProfile(config.base_latency, config.bandwidth)
            )
        elif config is None:
            rack = topology.profiles["rack"]
            config = NetworkConfig(base_latency=rack.latency, bandwidth=rack.bandwidth)
        self.sim = sim
        self.config = config
        self.topology = topology
        self.contended = topology.contended
        self._rng = sim.rng("network")
        self._links: dict[frozenset, LinkState] = {}  # frozenset({a, b}) -> LinkState
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        # Hot-path constants and the per-(src, dst) constant delay component
        # (base latency + link extra latency), rebuilt when faults change.
        # ``_fast_latency`` / ``_inv_bandwidth`` fold in a single-tier
        # degrade; with no degrade they equal the config values exactly.
        self._fast_latency = self.config.base_latency
        self._inv_bandwidth = 1.0 / self.config.bandwidth
        self._delay_cache: dict[tuple[str, str], float] = {}
        # Contention state: active trunks, per-class share caps, degrades.
        self._flows: dict[LinkKey, _LinkFlows] = {}
        self._class_caps: dict[str, float] = {}
        self._degrade: dict[str, tuple[float, float]] = {}  # tier -> (bw factor, extra)
        #: Set to a list to record ``(time, link key, per-transfer rates)``
        #: at every re-share — the bandwidth-conservation property tests
        #: assert over this trace. ``None`` (the default) records nothing.
        self.flow_trace: list[tuple[float, LinkKey, tuple[float, ...]]] | None = None

    @classmethod
    def from_topology(
        cls,
        sim: "Simulator",
        topology: Topology,
        config: NetworkConfig | None = None,
    ) -> "Network":
        """Build a network from a declarative :class:`Topology`.

        ``config`` (optional) supplies network-wide knobs that are not
        per-tier — today just ``jitter``; its latency/bandwidth are only
        used when the topology is single-rack, where they are the rack
        profile by construction.
        """
        return cls(sim, config, topology=topology)

    # ------------------------------------------------------------------
    # Traffic classes (fair-share caps)
    # ------------------------------------------------------------------
    def set_class_cap(self, cls: str, share: float) -> None:
        """Cap traffic class ``cls`` at ``share`` of any contended trunk.

        The class's transfers collectively receive at most ``share`` of a
        link's bandwidth (and never more than their fair share), with the
        remainder re-divided among uncapped transfers. ``share >= 1``
        removes the cap. No effect on uncontended networks, where messages
        are priced independently.
        """
        if share >= 1.0:
            self._class_caps.pop(cls, None)
        elif share > 0.0:
            self._class_caps[cls] = share
        else:
            raise ValueError("class share cap must be positive (got {})".format(share))
        for flows in self._flows.values():
            if flows.transfers:
                self._settle(flows)
                self._reallocate(flows)

    def class_cap(self, cls: str) -> float:
        """The configured share cap of ``cls`` (1.0 when uncapped)."""
        return self._class_caps.get(cls, 1.0)

    # ------------------------------------------------------------------
    # Link fault state (chaos injection)
    # ------------------------------------------------------------------
    def link(self, a: str, b: str) -> LinkState:
        """The mutable :class:`LinkState` of the unordered pair ``{a, b}``.

        Handing out the mutable state may precede a fault injection, so the
        precomputed per-pair delays are invalidated here.
        """
        self._delay_cache.clear()
        key = frozenset((a, b))
        if key not in self._links:
            self._links[key] = LinkState()
        return self._links[key]

    def partition(self, a: str, b: str) -> None:
        """Cut the link between ``a`` and ``b`` (both directions)."""
        self.link(a, b).partitioned = True

    def heal_partition(self, a: str, b: str) -> None:
        self.link(a, b).partitioned = False

    def is_partitioned(self, a: str, b: str) -> bool:
        if a == b:
            return False
        key = frozenset((a, b))
        state = self._links.get(key)
        return state is not None and state.partitioned

    def set_loss(self, a: str, b: str, p: float) -> None:
        """Drop messages between ``a`` and ``b`` with probability ``p``."""
        self.link(a, b).loss = p

    def set_extra_latency(self, a: str, b: str, extra: float) -> None:
        """Add ``extra`` seconds of one-way delay between ``a`` and ``b``."""
        self.link(a, b).extra_latency = extra

    def clear_link_faults(self) -> None:
        self._links.clear()
        self._delay_cache.clear()

    # ------------------------------------------------------------------
    # Tier degrades (topology-aware faults)
    # ------------------------------------------------------------------
    def set_tier_degrade(
        self, tier: str, bandwidth_factor: float = 1.0, extra_latency: float = 0.0
    ) -> None:
        """Degrade every trunk of ``tier``: scale its bandwidth by
        ``bandwidth_factor`` and add ``extra_latency`` seconds one-way.

        ``bandwidth_factor=1.0, extra_latency=0.0`` heals the tier. On a
        contended network, in-flight transfers on matching trunks are
        settled at their old rates and re-shared at the new bandwidth; on
        an uncontended (single-rack) network only the ``rack`` tier exists
        and the constant-delay pricing is rescaled.
        """
        if bandwidth_factor <= 0.0:
            raise ValueError(
                "bandwidth_factor must be positive (got {}); use partition() "
                "to cut links entirely".format(bandwidth_factor)
            )
        if bandwidth_factor == 1.0 and extra_latency == 0.0:
            self._degrade.pop(tier, None)
        else:
            self._degrade[tier] = (bandwidth_factor, extra_latency)
        # Uncontended fast-path constants (single-rack: everything is
        # "rack"-tier). Recomputed from the base config so healing restores
        # the exact original floats.
        factor, extra = self._degrade.get("rack", (1.0, 0.0))
        self._fast_latency = self.config.base_latency + extra
        self._inv_bandwidth = 1.0 / (self.config.bandwidth * factor)
        self._delay_cache.clear()
        # Contended trunks of the degraded tier re-share at the new rate.
        tier_factor, _ = self._degrade.get(tier, (1.0, 0.0))
        for flows in self._flows.values():
            if flows.tier != tier:
                continue
            self._settle(flows)
            flows.bandwidth = flows.base_bandwidth * tier_factor
            if flows.transfers:
                self._reallocate(flows)

    def tier_degrade(self, tier: str) -> tuple[float, float]:
        """The (bandwidth factor, extra latency) degrade of ``tier``."""
        return self._degrade.get(tier, (1.0, 0.0))

    def clear_tier_degrades(self) -> None:
        for tier in list(self._degrade):
            self.set_tier_degrade(tier)

    def link_is_clean(self, src: str, dst: str) -> bool:
        """True when no fault state can affect a message ``src -> dst``.

        A clean link's messages are always delivered after a deterministic
        delay — under contention the delay depends on competing transfers,
        but delivery remains guaranteed — so callers (:mod:`repro.sim.rpc`)
        may wait on the arrival event directly instead of arming a timeout.
        Fault state injected *after* a send never affects that message
        (loss and partition are decided at send time), so this test at send
        time is sufficient. Tier degrades slow links down without making
        them faulty.
        """
        if not self._links:
            return True
        if src == dst:
            return True
        state = self._links.get(frozenset((src, dst)))
        return state is None or not state.faulty

    def _link_state(self, src: str, dst: str) -> LinkState | None:
        if src == dst:
            return None
        return self._links.get(frozenset((src, dst)))

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _constant_delay(self, src: str, dst: str) -> float:
        """Precomputed size-independent delay component for ``src -> dst``
        (base latency plus the link's extra latency), cached per pair until
        the fault state changes."""
        key = (src, dst)
        cached = self._delay_cache.get(key)
        if cached is None:
            cached = self._fast_latency
            state = self._link_state(src, dst)
            if state is not None:
                cached += state.extra_latency
            self._delay_cache[key] = cached
        return cached

    def delay_for(self, src: str, dst: str, size: int = 0) -> float:
        """One-way delay in seconds for a ``size``-byte message src -> dst.

        On a contended network this is the *uncontended* delay — the
        governing tier's latency plus the transfer time at full trunk
        bandwidth — i.e. a lower bound that competing transfers stretch.
        """
        if src == dst:
            return 0.0
        if self.contended:
            latency, inv_bandwidth = self._contended_price(src, dst)
            delay = latency + size * inv_bandwidth
        else:
            delay = self._constant_delay(src, dst) + size * self._inv_bandwidth
        if self.config.jitter > 0:
            delay += self._rng.uniform(0.0, self.config.jitter)
        return delay

    def _contended_price(self, src: str, dst: str) -> tuple[float, float]:
        """(latency, 1/bandwidth) of the governing trunk, degrades applied."""
        tier, _key = self.topology.route(src, dst)
        profile = self.topology.profiles[tier]
        factor, extra = self._degrade.get(tier, (1.0, 0.0))
        latency = profile.latency + extra
        state = self._link_state(src, dst)
        if state is not None:
            latency += state.extra_latency
        return latency, 1.0 / (profile.bandwidth * factor)

    def send(
        self, src: str, dst: str, size: int = 0, traffic_class: str | None = None
    ) -> Event:
        """Returns an event that succeeds when the message has arrived.

        On a partitioned or (probabilistically) lossy link the event never
        fires — the message is gone; the sender must detect the loss with a
        timeout and retry (:func:`repro.sim.rpc.reliable_send`).

        ``traffic_class`` only matters on contended networks, where it
        selects the fair-share class the message's bytes are accounted
        against (see :meth:`set_class_cap`).
        """
        self.messages_sent += 1
        self.bytes_sent += size
        sim = self.sim
        arrived = Event(sim)
        if self.contended:
            return self._send_contended(src, dst, size, traffic_class, arrived)
        if not self._links:
            # Fault-free fast path: no link lookups, no drop bookkeeping.
            if src == dst:
                sim.schedule(0.0, arrived.succeed, None)
                return arrived
            delay = self._fast_latency + size * self._inv_bandwidth
            if self.config.jitter > 0:
                delay += self._rng.uniform(0.0, self.config.jitter)
            if sim.partitioned:
                # Rehome the arrival on the destination's partition so the
                # receiver's continuation runs under its own subheap (see
                # repro.sim.partition).
                sim.schedule_for_node(dst, delay, arrived.succeed, None)
            else:
                sim.schedule(delay, arrived.succeed, None)
            return arrived
        state = self._link_state(src, dst)
        if state is not None and state.partitioned:
            self.messages_dropped += 1
            return arrived
        if state is not None and state.loss > 0.0 and self._rng.random() < state.loss:
            self.messages_dropped += 1
            return arrived
        delay = self.delay_for(src, dst, size)
        if sim.partitioned:
            sim.schedule_for_node(dst, delay, arrived.succeed, None)
        else:
            sim.schedule(delay, arrived.succeed, None)
        return arrived

    # ------------------------------------------------------------------
    # Contended delivery: fair-share trunks
    # ------------------------------------------------------------------
    def _send_contended(
        self, src: str, dst: str, size: int, cls: str | None, arrived: Event
    ) -> Event:
        sim = self.sim
        if src == dst:
            sim.schedule(0.0, arrived.succeed, None)
            return arrived
        state = self._link_state(src, dst)
        if state is not None and state.partitioned:
            self.messages_dropped += 1
            return arrived
        if state is not None and state.loss > 0.0 and self._rng.random() < state.loss:
            self.messages_dropped += 1
            return arrived
        tier, key = self.topology.route(src, dst)
        profile = self.topology.profiles[tier]
        factor, extra = self._degrade.get(tier, (1.0, 0.0))
        latency = profile.latency + extra
        if state is not None:
            latency += state.extra_latency
        if self.config.jitter > 0:
            latency += self._rng.uniform(0.0, self.config.jitter)
        if size <= 0:
            # No bytes to stream: pure latency, no trunk occupancy.
            sim.schedule(latency, arrived.succeed, None)
            return arrived
        flows = self._flows.get(key)
        if flows is None:
            flows = _LinkFlows(key, tier, profile.bandwidth, sim.now)
            flows.bandwidth = flows.base_bandwidth * factor
            self._flows[key] = flows
        self._settle(flows)
        flows.transfers.append(_Transfer(size, latency, cls, arrived))
        self._reallocate(flows)
        return arrived

    def _settle(self, flows: _LinkFlows) -> None:
        """Charge progress since the trunk's last re-share at the old rates."""
        now = self.sim.now
        elapsed = now - flows.last_update
        if elapsed > 0.0:
            for transfer in flows.transfers:
                remaining = transfer.bytes_left - elapsed * transfer.rate
                transfer.bytes_left = remaining if remaining > 0.0 else 0.0
        flows.last_update = now

    def _reallocate(self, flows: _LinkFlows) -> None:
        """Re-divide the trunk's bandwidth and reschedule completions.

        Equal share per transfer, except that each *capped* class (see
        :meth:`set_class_cap`) collectively receives
        ``min(cap * bandwidth, its fair aggregate share)``; the remainder
        is divided equally among uncapped transfers. The per-interval sum
        of rates therefore never exceeds the trunk bandwidth (the
        conservation property tests pin this on :attr:`flow_trace`).
        """
        transfers = flows.transfers
        total = len(transfers)
        if total == 0:
            del self._flows[flows.key]
            return
        bandwidth = flows.bandwidth
        caps = self._class_caps
        uncapped_rate = bandwidth / total  # single-class common case
        capped_rates: dict[str, float] = {}
        if caps:
            counts: dict[str | None, int] = {}
            for transfer in transfers:
                counts[transfer.cls] = counts.get(transfer.cls, 0) + 1
            capped_total = 0.0
            uncapped = 0
            for cls, count in counts.items():
                cap = caps.get(cls) if cls is not None else None
                if cap is None:
                    uncapped += count
                    continue
                class_total = min(cap * bandwidth, bandwidth * count / total)
                capped_rates[cls] = class_total / count
                capped_total += class_total
            if uncapped:
                uncapped_rate = (bandwidth - capped_total) / uncapped
        sim = self.sim
        for transfer in transfers:
            transfer.rate = capped_rates.get(transfer.cls, uncapped_rate)  # type: ignore[arg-type]
            if transfer.handle is not None:
                sim.cancel(transfer.handle)
            transfer.handle = sim.schedule(
                transfer.bytes_left / transfer.rate, self._finish, flows, transfer
            )
        if self.flow_trace is not None:
            self.flow_trace.append(
                (sim.now, flows.key, tuple(t.rate for t in transfers))
            )

    def _finish(self, flows: _LinkFlows, transfer: _Transfer) -> None:
        """A transfer drained its bytes: free its share, then deliver."""
        self._settle(flows)
        flows.transfers.remove(transfer)
        transfer.handle = None
        self._reallocate(flows)  # deletes the trunk entry when idle
        if transfer.latency > 0.0:
            self.sim.schedule(transfer.latency, transfer.event.succeed, None)
        else:
            transfer.event.succeed(None)

    def in_flight(self, src: str, dst: str) -> int:
        """The number of transfers sharing the ``src -> dst`` trunk now."""
        _tier, key = self.topology.route(src, dst)
        flows = self._flows.get(key)
        return len(flows.transfers) if flows is not None else 0

    # ------------------------------------------------------------------
    def roundtrip(
        self,
        src: str,
        dst: str,
        request_size: int = 0,
        response_size: int = 0,
        traffic_class: str | None = None,
    ) -> Event:
        """Returns an event for a request/response pair's total delay.

        Composed of two :meth:`send` events (request, then response once the
        request arrived) so that partition, loss, latency and contention
        effects apply to each direction exactly as they do to plain sends.
        Message and byte accounting is identical to issuing the two sends
        directly.
        """
        done = self.sim.event(name="rpc:{}<->{}".format(src, dst))

        def _request_arrived(_event):
            response = self.send(dst, src, response_size, traffic_class)
            response.add_callback(lambda _ev: done.succeed(None))

        request = self.send(src, dst, request_size, traffic_class)
        request.add_callback(_request_arrived)
        return done

    def broadcast(self, src: str, dsts: Iterable[str], size: int = 0) -> AllOf:
        """Waitable that completes when the message reached every node."""
        return AllOf([self.send(src, dst, size) for dst in dsts])
