"""Generator-based cooperative processes."""

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import AllOf, AnyOf, At, Event, Timeout


class _ProcessReturn(Exception):
    """Internal: carries a generator's return value."""

    def __init__(self, value):
        super().__init__()
        self.value = value


class Process:
    """A running simulated activity, driven by a Python generator.

    The generator yields waitables (see :mod:`repro.sim`); when the waitable
    completes, the generator is resumed with the waitable's value. ``return``
    from the generator finishes the process with that value. An uncaught
    exception finishes the process with that exception; joining processes see
    it re-raised.

    Processes may be cancelled asynchronously via :meth:`interrupt`, which
    throws :class:`~repro.sim.errors.Interrupt` into the generator at its
    current yield point.
    """

    __slots__ = (
        "sim",
        "name",
        "_generator",
        "_done_event",
        "_waiting_on",
        "_pending_timer",
        "_interrupt_pending",
    )

    def __init__(self, sim, generator, name=""):
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._done_event = Event(sim, name="done:{}".format(self.name))
        self._waiting_on = None
        self._pending_timer = None
        self._interrupt_pending = None
        sim.schedule(0.0, self._resume, None, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def finished(self):
        return self._done_event.triggered

    @property
    def done_event(self):
        """Event triggered when this process completes."""
        return self._done_event

    def result(self):
        """Return value of the finished process, re-raising its exception."""
        if not self.finished:
            raise SimulationError("process {!r} still running".format(self.name))
        if self._done_event.exception is not None:
            raise self._done_event.exception
        return self._done_event.value

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at its next resumption.

        Interrupting a finished process is a no-op so that race conditions
        between completion and cancellation are harmless.
        """
        if self.finished or self._interrupt_pending is not None:
            return
        self._interrupt_pending = Interrupt(cause)
        self._detach_wait()
        self.sim.schedule(0.0, self._resume_interrupt)

    def _resume_interrupt(self):
        exc, self._interrupt_pending = self._interrupt_pending, None
        if exc is None or self.finished:
            return
        self._resume(None, exc)

    def _detach_wait(self):
        """Stop listening to whatever the process is currently waiting on."""
        if self._pending_timer is not None:
            self.sim.cancel(self._pending_timer)
            self._pending_timer = None
        if self._waiting_on is not None:
            waited, callback = self._waiting_on
            waited.remove_callback(callback)
            self._waiting_on = None

    # ------------------------------------------------------------------
    # Generator driving
    # ------------------------------------------------------------------
    def _resume(self, value, exception):
        if self.finished:
            return
        self._pending_timer = None
        self._waiting_on = None
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(value=stop.value, exception=None)
            return
        except _ProcessReturn as ret:
            self._finish(value=ret.value, exception=None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to joiners
            self._finish(value=None, exception=exc)
            return
        self._wait_on(target)

    def _finish(self, value, exception):
        if exception is None:
            self._done_event.succeed(value)
        else:
            # Record the failure on the simulator so that crashes in detached
            # background processes (nobody joins them) are not silent.
            failures = getattr(self.sim, "failed_processes", None)
            if failures is not None:
                failures.append((self, exception))
            self._done_event.fail(exception)

    def _wait_on(self, target):
        if isinstance(target, (int, float)):
            target = Timeout(target)
        if isinstance(target, Timeout):
            self._pending_timer = self.sim.schedule(target.delay, self._resume, None, None)
            return
        if isinstance(target, At):
            self._pending_timer = self.sim.schedule_at(target.time, self._resume, None, None)
            return
        if isinstance(target, Process):
            target = target.done_event
        if isinstance(target, Event):
            self._wait_on_event(target)
            return
        if isinstance(target, AllOf):
            self._wait_on_all(target)
            return
        if isinstance(target, AnyOf):
            self._wait_on_any(target)
            return
        self._resume(
            None,
            SimulationError("process {!r} yielded non-waitable {!r}".format(self.name, target)),
        )

    def _wait_on_event(self, event):
        def callback(ev):
            if self.finished:
                return
            self._waiting_on = None
            if ev.exception is not None:
                self._resume(None, ev.exception)
            else:
                self._resume(ev.value, None)

        self._waiting_on = (event, callback)
        event.add_callback(callback)

    def _wait_on_all(self, allof):
        events = [self._as_event(item) for item in allof.waitables]
        if not events:
            self.sim.schedule(0.0, self._resume, [], None)
            return
        state = {"remaining": len(events), "failed": None}

        def on_done(_ev):
            if self.finished:
                return
            state["remaining"] -= 1
            failure = next((e.exception for e in events if e.triggered and e.exception), None)
            if failure is not None and state["failed"] is None:
                state["failed"] = failure
                self._resume(None, failure)
                return
            if state["remaining"] == 0 and state["failed"] is None:
                self._resume([e.value for e in events], None)

        for event in events:
            event.add_callback(on_done)

    def _wait_on_any(self, anyof):
        events = [self._as_event(item) for item in anyof.waitables]
        state = {"done": False}

        def on_done(ev):
            if self.finished or state["done"]:
                return
            state["done"] = True
            index = events.index(ev)
            if ev.exception is not None:
                self._resume(None, ev.exception)
            else:
                self._resume((index, ev.value), None)

        for event in events:
            event.add_callback(on_done)

    def _as_event(self, item):
        if isinstance(item, Process):
            return item.done_event
        if isinstance(item, Event):
            return item
        if isinstance(item, (int, float)):
            item = Timeout(item)
        if isinstance(item, Timeout):
            event = Event(self.sim, name="timeout")
            self.sim.schedule(item.delay, event.succeed, None)
            return event
        if isinstance(item, At):
            event = Event(self.sim, name="at")
            self.sim.schedule_at(item.time, event.succeed, None)
            return event
        raise SimulationError("cannot wait on {!r}".format(item))

    def __repr__(self):
        state = "finished" if self.finished else "running"
        return "Process({!r}, {})".format(self.name, state)
