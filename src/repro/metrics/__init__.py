"""Measurement: throughput series, latency, aborts, downtime, CPU usage."""

from repro.metrics.collector import MetricsCollector
from repro.metrics.series import bin_series, downtime_windows, moving_average
from repro.metrics.report import render_multi_series, render_series, render_table

__all__ = [
    "MetricsCollector",
    "bin_series",
    "downtime_windows",
    "moving_average",
    "render_multi_series",
    "render_series",
    "render_table",
]
