"""Time-series helpers: binning, smoothing, downtime detection."""


def bin_series(points, bin_width, start, end):
    """Aggregate (time, weight) points into per-second rates per bin.

    Returns a list of (bin_start_time, rate) covering [start, end).
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    num_bins = max(0, int((end - start) / bin_width + 1e-9))
    totals = [0.0] * num_bins
    for time, weight in points:
        index = int((time - start) / bin_width)
        if 0 <= index < num_bins:
            totals[index] += weight
    return [(start + i * bin_width, totals[i] / bin_width) for i in range(num_bins)]


def moving_average(series, window):
    """Smooth a (time, value) series with a trailing window of ``window``
    samples."""
    if window < 1:
        raise ValueError("window must be >= 1")
    smoothed = []
    for i, (time, _value) in enumerate(series):
        lo = max(0, i - window + 1)
        chunk = [v for _t, v in series[lo : i + 1]]
        smoothed.append((time, sum(chunk) / len(chunk)))
    return smoothed


def downtime_windows(commit_times, start, end, resolution=0.1, min_window=0.3):
    """(longest_gap, total_downtime) between consecutive commits.

    Gaps shorter than ``min_window`` are ignored (normal scheduling jitter).
    ``resolution`` is subtracted from each gap to avoid counting the
    quantisation of the commit stream itself.
    """
    del resolution
    if end <= start:
        return 0.0, 0.0
    boundaries = [start] + list(commit_times) + [end]
    longest = 0.0
    total = 0.0
    for earlier, later in zip(boundaries, boundaries[1:]):
        gap = later - earlier
        if gap >= min_window:
            total += gap
            longest = max(longest, gap)
    return longest, total
