"""The cluster-wide metrics collector.

Records every commit (with latency and an optional weight, e.g. tuples
ingested by a batch transaction), every abort with its cause, and named
markers (migration start/end, workload phase boundaries). Experiments then
derive the paper's artefacts from these raw streams: throughput timelines
(Figures 6-9), abort ratios (Table 2), latency increases (Table 3) and
downtime windows.
"""

from collections import Counter

from repro.metrics.series import bin_series, downtime_windows


class CommitRecord:
    __slots__ = ("time", "label", "latency", "weight")

    def __init__(self, time, label, latency, weight):
        self.time = time
        self.label = label
        self.latency = latency
        self.weight = weight


class AbortRecord:
    __slots__ = ("time", "label", "kind")

    def __init__(self, time, label, kind):
        self.time = time
        self.label = label
        self.kind = kind


class MetricsCollector:
    __slots__ = ("sim", "commits", "aborts", "marks")

    def __init__(self, sim):
        self.sim = sim
        self.commits = []
        self.aborts = []
        self.marks = []  # (time, name)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_commit(self, label, latency, weight=1):
        self.commits.append(CommitRecord(self.sim.now, label, latency, weight))

    def record_abort(self, label, kind):
        self.aborts.append(AbortRecord(self.sim.now, label, kind))

    def mark(self, name):
        self.marks.append((self.sim.now, name))

    def marks_named(self, name):
        # Sorted by time, not append order: under the partitioned event
        # loop, same-window marks from different partitions append in
        # partition-drain order, and every derived artefact should depend
        # on *when* a mark happened, never on which subheap recorded it.
        return sorted(t for t, n in self.marks if n == name)

    def first_mark(self, name):
        times = self.marks_named(name)
        return times[0] if times else None

    def last_mark(self, name):
        times = self.marks_named(name)
        return times[-1] if times else None

    # ------------------------------------------------------------------
    # Derived measurements
    # ------------------------------------------------------------------
    def _select(self, records, label=None, start=None, end=None):
        for record in records:
            if label is not None and not record.label.startswith(label):
                continue
            if start is not None and record.time < start:
                continue
            if end is not None and record.time >= end:
                continue
            yield record

    def commit_count(self, label=None, start=None, end=None):
        return sum(1 for _ in self._select(self.commits, label, start, end))

    def abort_count(self, label=None, kind=None, start=None, end=None):
        return sum(
            1
            for record in self._select(self.aborts, label, start, end)
            if kind is None or record.kind == kind
        )

    def abort_kinds(self, label=None, start=None, end=None):
        return Counter(r.kind for r in self._select(self.aborts, label, start, end))

    def throughput_series(self, label=None, bin_width=1.0, start=0.0, end=None, weighted=False):
        """(time, commits_per_second) samples binned over [start, end)."""
        if end is None:
            end = self.sim.now
        points = [
            (r.time, r.weight if weighted else 1)
            for r in self._select(self.commits, label, start, end)
        ]
        return bin_series(points, bin_width, start, end)

    def average_throughput(self, label=None, start=None, end=None, weighted=False):
        if end is None:
            end = self.sim.now
        if start is None:
            start = 0.0
        total = sum(
            (r.weight if weighted else 1)
            for r in self._select(self.commits, label, start, end)
        )
        window = max(end - start, 1e-9)
        return total / window

    def average_latency(self, label=None, start=None, end=None):
        latencies = [r.latency for r in self._select(self.commits, label, start, end)]
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    def latency_percentile(self, q, label=None, start=None, end=None):
        latencies = sorted(r.latency for r in self._select(self.commits, label, start, end))
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(q * len(latencies)))
        return latencies[index]

    def downtime(self, label=None, start=0.0, end=None, resolution=0.1, min_window=0.3):
        """Longest and total zero-throughput windows for ``label``.

        A window counts as downtime if no transaction with the label commits
        for at least ``min_window`` seconds while the workload is running.
        Returns (longest, total).
        """
        if end is None:
            end = self.sim.now
        times = sorted(r.time for r in self._select(self.commits, label, start, end))
        return downtime_windows(times, start, end, resolution, min_window)

    def abort_ratio(self, label=None, start=None, end=None, kind=None):
        """aborted / (aborted + committed), counting retries as attempts."""
        aborted = self.abort_count(label=label, kind=kind, start=start, end=end)
        committed = self.commit_count(label=label, start=start, end=end)
        attempts = aborted + committed
        if attempts == 0:
            return 0.0
        return aborted / attempts
