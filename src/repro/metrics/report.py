"""Text rendering of the paper's tables and figures.

Benchmarks print the same rows/series the paper reports; figures are rendered
as aligned text timelines (time, value, bar) so the *shape* — flat lines,
zero-throughput troughs, fluctuation — is visible in terminal output and in
the EXPERIMENTS.md transcript.
"""


def render_table(title, headers, rows):
    """Render an aligned text table. ``rows`` is a list of sequences."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(title, series, width=50, unit="", markers=None):
    """Render a (time, value) series as a text timeline with bars.

    ``markers`` maps times to single-character annotations (e.g. migration
    start/end), shown next to the matching rows.
    """
    lines = [title]
    if not series:
        lines.append("(empty series)")
        return "\n".join(lines)
    peak = max(value for _t, value in series) or 1.0
    markers = markers or {}
    for time, value in series:
        bar = "#" * int(round(width * value / peak))
        note = "".join(
            tag for mark_time, tag in markers.items() if abs(mark_time - time) < 0.5
        )
        lines.append(
            "{:>8.1f}s {:>12.1f}{} |{}{}".format(time, value, unit, bar, " " + note if note else "")
        )
    return "\n".join(lines)


def render_multi_series(title, labelled_series, bin_summary=None):
    """Render several series side by side as columns for comparison."""
    lines = [title]
    if not labelled_series:
        return title
    labels = [label for label, _series in labelled_series]
    lines.append("time(s)  " + "  ".join("{:>14}".format(l) for l in labels))
    length = max(len(series) for _label, series in labelled_series)
    for i in range(length):
        row = []
        time = None
        for _label, series in labelled_series:
            if i < len(series):
                time = series[i][0]
                row.append("{:>14.1f}".format(series[i][1]))
            else:
                row.append("{:>14}".format(""))
        lines.append("{:>7.1f}  ".format(time if time is not None else 0.0) + "  ".join(row))
    if bin_summary:
        lines.append(bin_summary)
    return "\n".join(lines)
