"""Command-line interface: run any paper scenario from the terminal.

Examples::

    python -m repro list
    python -m repro experiment hybrid_a --approach remus
    python -m repro experiment load_balancing --approach squall
    python -m repro experiment high_contention
"""

import argparse
import sys

SCENARIOS = ("hybrid_a", "hybrid_b", "load_balancing", "scale_out", "high_contention")


def _run_experiment(scenario, approach, seed):
    from repro.experiments.consolidation import (
        ConsolidationConfig,
        run_hybrid_a,
        run_hybrid_b,
    )
    from repro.experiments.high_contention import HighContentionConfig, run_high_contention
    from repro.experiments.load_balancing import LoadBalancingConfig, run_load_balancing
    from repro.experiments.scale_out import ScaleOutConfig, run_scale_out

    if scenario == "hybrid_a":
        return run_hybrid_a(approach, ConsolidationConfig(seed=seed))
    if scenario == "hybrid_b":
        return run_hybrid_b(approach, ConsolidationConfig(group_size=4, seed=seed))
    if scenario == "load_balancing":
        return run_load_balancing(approach, LoadBalancingConfig(seed=seed))
    if scenario == "scale_out":
        return run_scale_out(approach, ScaleOutConfig(seed=seed))
    if scenario == "high_contention":
        return run_high_contention(approach, HighContentionConfig(seed=seed))
    raise ValueError(scenario)


def _print_result(result):
    from repro.metrics.report import render_series

    start, end = result.migration_window
    if result.throughput:
        markers = {}
        if start is not None:
            markers[start] = "<mig"
        if end is not None:
            markers[end] = "mig>"
        print(
            render_series(
                "throughput ({} / {})".format(result.scenario, result.approach),
                result.throughput,
                unit="/s",
                markers=markers,
            )
        )
    print()
    print("migration window: {} .. {}".format(start, end))
    print("downtime (longest/total): {:.3f}s / {:.3f}s".format(
        result.downtime_longest, result.downtime_total))
    print("aborts by cause:", result.aborts or "{}")
    print("latency before/during: {:.3f} / {:.3f} ms".format(
        result.avg_latency_before * 1e3, result.avg_latency_during * 1e3))
    for key, value in sorted(result.extra.items()):
        if key in ("cpu_source", "cpu_dest", "plan_stats"):
            continue
        print("{}: {}".format(key, value))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Remus (SIGMOD 2022) reproduction: run the paper's scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list scenarios and approaches")

    exp = sub.add_parser("experiment", help="run one scenario")
    exp.add_argument("scenario", choices=SCENARIOS)
    exp.add_argument(
        "--approach",
        default="remus",
        choices=("remus", "lock_and_abort", "wait_and_remaster", "squall"),
    )
    exp.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    if args.command == "list":
        from repro.migration import APPROACHES

        print("scenarios: " + ", ".join(SCENARIOS))
        print("approaches: " + ", ".join(sorted(APPROACHES)))
        return 0
    if args.command == "experiment":
        result = _run_experiment(args.scenario, args.approach, args.seed)
        _print_result(result)
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
