"""Command-line interface: run any paper scenario from the terminal.

Examples::

    python -m repro list
    python -m repro experiment hybrid_a --approach remus
    python -m repro experiment load_balancing --approach squall
    python -m repro experiment high_contention
    python -m repro chaos --seed 3
    python -m repro chaos --fault-plan "crash:node-2@1.0; partition:node-1|node-3@2.0+0.5"
    python -m repro lint --format json
"""

import argparse
import sys

SCENARIOS = ("hybrid_a", "hybrid_b", "load_balancing", "scale_out", "high_contention")


def _run_experiment(scenario, approach, seed):
    from repro.experiments.consolidation import (
        ConsolidationConfig,
        run_hybrid_a,
        run_hybrid_b,
    )
    from repro.experiments.high_contention import HighContentionConfig, run_high_contention
    from repro.experiments.load_balancing import LoadBalancingConfig, run_load_balancing
    from repro.experiments.scale_out import ScaleOutConfig, run_scale_out

    if scenario == "hybrid_a":
        return run_hybrid_a(approach, ConsolidationConfig(seed=seed))
    if scenario == "hybrid_b":
        return run_hybrid_b(approach, ConsolidationConfig(group_size=4, seed=seed))
    if scenario == "load_balancing":
        return run_load_balancing(approach, LoadBalancingConfig(seed=seed))
    if scenario == "scale_out":
        return run_scale_out(approach, ScaleOutConfig(seed=seed))
    if scenario == "high_contention":
        return run_high_contention(approach, HighContentionConfig(seed=seed))
    raise ValueError(scenario)


def _print_result(result):
    from repro.metrics.report import render_series

    start, end = result.migration_window
    if result.throughput:
        markers = {}
        if start is not None:
            markers[start] = "<mig"
        if end is not None:
            markers[end] = "mig>"
        print(
            render_series(
                "throughput ({} / {})".format(result.scenario, result.approach),
                result.throughput,
                unit="/s",
                markers=markers,
            )
        )
    print()
    print("migration window: {} .. {}".format(start, end))
    print("downtime (longest/total): {:.3f}s / {:.3f}s".format(
        result.downtime_longest, result.downtime_total))
    print("aborts by cause:", result.aborts or "{}")
    print("latency before/during: {:.3f} / {:.3f} ms".format(
        result.avg_latency_before * 1e3, result.avg_latency_during * 1e3))
    for key, value in sorted(result.extra.items()):
        if key in ("cpu_source", "cpu_dest", "plan_stats"):
            continue
        print("{}: {}".format(key, value))


def _run_chaos(args):
    from repro.experiments.chaos import ChaosConfig, run_chaos

    config = ChaosConfig(seed=args.seed)
    if args.fault_plan:
        from repro.faults.plan import FaultPlan

        try:
            FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            print("error: bad --fault-plan: {}".format(exc), file=sys.stderr)
            return 2
        config.fault_spec = args.fault_plan
    if args.num_faults is not None:
        config.extra_faults = max(0, args.num_faults - 3)
    result = run_chaos(config)
    _print_chaos_result(result)
    return 0


def _print_chaos_result(result):
    print("chaos run (seed={})".format(result.seed))
    print()
    print("fault plan:")
    for line in result.fault_plan.splitlines():
        print("  " + line)
    print()
    print("fault / recovery timeline:")
    interesting = ("fault:", "heal:", "migration_crash", "migration_recovered",
                   "batch_skipped", "node_failed", "node_recovered")
    for t, name in result.marks:
        if any(name.startswith(p) for p in interesting):
            print("  {:>8.3f}s  {}".format(t, name))
    for t, description in result.supervisor_events:
        print("  {:>8.3f}s  supervisor: {}".format(t, description))
    stats = result.plan_stats
    print()
    print("committed increments: {}".format(result.committed))
    print("crash recoveries: {}  batch retries: {}  batches skipped: {}".format(
        stats.crash_recoveries, stats.migration_retries, stats.batches_skipped))
    print("invariant violations: {}".format(len(result.violations)))
    print("plan outcome: {}".format("degraded" if result.degraded else "completed"))
    print("finished at t={:.3f}s".format(result.finished_at))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Remus (SIGMOD 2022) reproduction: run the paper's scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list scenarios and approaches")

    exp = sub.add_parser("experiment", help="run one scenario")
    exp.add_argument("scenario", choices=SCENARIOS)
    exp.add_argument(
        "--approach",
        default="remus",
        choices=("remus", "lock_and_abort", "wait_and_remaster", "squall"),
    )
    exp.add_argument("--seed", type=int, default=0)

    chaos = sub.add_parser(
        "chaos",
        help="consolidation under fault injection with live invariant checks",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--fault-plan",
        default=None,
        help="explicit fault spec, e.g. "
        "'crash:node-2@1.0; partition:node-1|node-3@2.0+0.5; mcrash:snapshot_copy@0.3' "
        "(default: a randomized plan drawn from the seed)",
    )
    chaos.add_argument(
        "--num-faults",
        type=int,
        default=None,
        help="approximate number of random faults (ignored with --fault-plan)",
    )

    lint = sub.add_parser(
        "lint",
        help="simlint: determinism & protocol-safety static analysis",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)

    args = parser.parse_args(argv)
    if args.command == "list":
        from repro.migration import APPROACHES

        print("scenarios: " + ", ".join(SCENARIOS))
        print("approaches: " + ", ".join(sorted(APPROACHES)))
        return 0
    if args.command == "experiment":
        result = _run_experiment(args.scenario, args.approach, args.seed)
        _print_result(result)
        return 0
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "lint":
        from repro.analysis.cli import run_lint

        return run_lint(args)
    return 1


if __name__ == "__main__":
    sys.exit(main())
