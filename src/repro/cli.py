"""Command-line interface: run any paper scenario from the terminal.

Examples::

    python -m repro list
    python -m repro experiment hybrid_a --approach remus
    python -m repro experiment load_balancing --approach squall --json
    python -m repro experiment high_contention
    python -m repro chaos --seed 3
    python -m repro chaos --fault-plan "crash:node-2@1.0; partition:node-1|node-3@2.0+0.5"
    python -m repro failover --seed 1 --phase async_propagation
    python -m repro failover --compare
    python -m repro bench --smoke
    python -m repro sweep --scenario hybrid_a --seeds 4 --jobs 4
    python -m repro lint --format json

Scenarios are resolved through the experiment registry
(:mod:`repro.experiments.registry`); ``repro list`` prints whatever is
registered, so new scenarios appear here without touching this module.
"""

import argparse
import json
import sys

from repro.experiments import registry

SCENARIOS = registry.names()


def _print_result(result):
    """Render one experiment result from its stable payload."""
    from repro.metrics.report import render_series

    payload = result.to_dict()
    start, end = payload["migration_window"]
    if payload["throughput"]:
        markers = {}
        if start is not None:
            markers[start] = "<mig"
        if end is not None:
            markers[end] = "mig>"
        print(
            render_series(
                "throughput ({} / {})".format(payload["scenario"], payload["approach"]),
                [tuple(point) for point in payload["throughput"]],
                unit="/s",
                markers=markers,
            )
        )
    print()
    print("migration window: {} .. {}".format(start, end))
    print("downtime (longest/total): {:.3f}s / {:.3f}s".format(
        payload["downtime_longest"], payload["downtime_total"]))
    print("aborts by cause:", payload["aborts"] or "{}")
    print("latency before/during: {:.3f} / {:.3f} ms".format(
        payload["avg_latency_before"] * 1e3, payload["avg_latency_during"] * 1e3))
    for key, value in sorted(payload["extra"].items()):
        if key in ("cpu_source", "cpu_dest", "plan_stats"):
            continue
        print("{}: {}".format(key, value))


def _run_chaos(args):
    from repro.experiments.chaos import ChaosConfig, run_chaos

    config = ChaosConfig(seed=args.seed)
    if args.fault_plan:
        from repro.faults.plan import FaultPlan

        try:
            FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            print("error: bad --fault-plan: {}".format(exc), file=sys.stderr)
            return 2
        config.fault_spec = args.fault_plan
    if args.num_faults is not None:
        config.extra_faults = max(0, args.num_faults - 3)
    result = run_chaos(config)
    _print_chaos_result(result)
    return 0


def _print_chaos_result(result):
    print("chaos run (seed={})".format(result.seed))
    print()
    print("fault plan:")
    for line in result.fault_plan.splitlines():
        print("  " + line)
    print()
    print("fault / recovery timeline:")
    interesting = ("fault:", "heal:", "migration_crash", "migration_recovered",
                   "batch_skipped", "node_failed", "node_recovered")
    for t, name in result.marks:
        if any(name.startswith(p) for p in interesting):
            print("  {:>8.3f}s  {}".format(t, name))
    for t, description in result.supervisor_events:
        print("  {:>8.3f}s  supervisor: {}".format(t, description))
    stats = result.plan_stats
    print()
    print("committed increments: {}".format(result.committed))
    print("crash recoveries: {}  batch retries: {}  batches skipped: {}".format(
        stats.crash_recoveries, stats.migration_retries, stats.batches_skipped))
    print("invariant violations: {}".format(len(result.violations)))
    print("plan outcome: {}".format("degraded" if result.degraded else "completed"))
    print("finished at t={:.3f}s".format(result.finished_at))


def _run_failover(args):
    from repro.experiments.failover import (
        FailoverConfig,
        run_failover,
        run_remaster_comparison,
    )

    config = FailoverConfig(seed=args.seed, crash_phase=args.phase)
    if args.fault_plan:
        from repro.faults.plan import FaultPlan

        try:
            FaultPlan.parse(args.fault_plan)
        except ValueError as exc:
            print("error: bad --fault-plan: {}".format(exc), file=sys.stderr)
            return 2
        config.fault_spec = args.fault_plan
    if args.compare:
        out = run_remaster_comparison(config)
        print("remaster comparison (seed={})".format(config.seed))
        print("  remus full copy:    {} bytes, {} tuples".format(
            out["remus_bytes"], out["remus_tuples"]))
        print("  wait_and_remaster:  {} bytes, {} tuples".format(
            out["remaster_bytes"], out["remaster_tuples"]))
        return 0
    result = run_failover(config)
    _print_failover_result(result)
    return 0


def _print_failover_result(result):
    print("failover run (seed={}, crash phase={})".format(
        result.seed, result.crash_phase))
    print()
    print("fault plan:")
    for line in result.fault_plan.splitlines():
        print("  " + line)
    print()
    print("fault / election / recovery timeline:")
    interesting = ("fault:", "heal:", "failover_election", "replica_crash",
                   "replica_heal", "rehome", "migration_crash",
                   "migration_recovered", "batch_skipped")
    for t, name in result.marks:
        if any(name.startswith(p) for p in interesting):
            print("  {:>8.3f}s  {}".format(t, name))
    for t, description in result.supervisor_events:
        print("  {:>8.3f}s  supervisor: {}".format(t, description))
    stats = result.plan_stats
    print()
    print("committed increments: {}".format(result.committed))
    print("elections: {}  stale-epoch rejects: {}  ship batches: {}".format(
        result.failover_elections, result.stale_epoch_rejects,
        result.repl_ship_batches))
    print("group epochs: {}".format(result.epochs))
    print("crash recoveries: {}  batch retries: {}  batches skipped: {}".format(
        stats.crash_recoveries, stats.migration_retries, stats.batches_skipped))
    print("invariant violations: {}".format(len(result.violations)))
    print("finished at t={:.3f}s".format(result.finished_at))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Remus (SIGMOD 2022) reproduction: run the paper's scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list scenarios and approaches")

    exp = sub.add_parser("experiment", help="run one scenario")
    exp.add_argument("scenario", choices=SCENARIOS)
    exp.add_argument(
        "--approach",
        default=None,
        choices=sorted({a for name in SCENARIOS for a in registry.get(name).approaches}),
        help="migration approach (default: the scenario's default; "
        "see `repro list` for the per-scenario line-up)",
    )
    exp.add_argument("--seed", type=int, default=0)
    from repro.sim.topology import PRESETS

    exp.add_argument(
        "--topology",
        default=None,
        choices=PRESETS,
        help="network topology preset; multi_az/geo switch the network to "
        "contended fair-share trunks (default: the scenario's flat network)",
    )
    exp.add_argument(
        "--pump-share",
        type=float,
        default=None,
        metavar="SHARE",
        help="cap migration traffic at this fraction of any contended trunk "
        "(0 < SHARE <= 1; trades copy speed against foreground impact)",
    )
    exp.add_argument(
        "--json",
        action="store_true",
        help="print the result as a JSON payload instead of rendering it",
    )

    prof = sub.add_parser(
        "profile",
        help="run one scenario under the wall-clock profiler "
        "(zero effect on the simulated timeline)",
    )
    prof.add_argument("scenario", choices=SCENARIOS)
    prof.add_argument(
        "--approach",
        default=None,
        choices=sorted({a for name in SCENARIOS for a in registry.get(name).approaches}),
        help="migration approach (default: the scenario's default)",
    )
    prof.add_argument("--seed", type=int, default=0)
    prof.add_argument(
        "--json",
        action="store_true",
        help="print the profile report as JSON instead of a table",
    )
    prof.add_argument(
        "--out",
        default=None,
        help="also write the JSON report to this path",
    )

    chaos = sub.add_parser(
        "chaos",
        help="consolidation under fault injection with live invariant checks",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--fault-plan",
        default=None,
        help="explicit fault spec, e.g. "
        "'crash:node-2@1.0; partition:node-1|node-3@2.0+0.5; mcrash:snapshot_copy@0.3' "
        "(default: a randomized plan drawn from the seed)",
    )
    chaos.add_argument(
        "--num-faults",
        type=int,
        default=None,
        help="approximate number of random faults (ignored with --fault-plan)",
    )

    failover = sub.add_parser(
        "failover",
        help="replicated-shard migration under leader/follower crashes "
        "with election, epoch-fenced 2PC and invariant checks",
    )
    failover.add_argument("--seed", type=int, default=0)
    failover.add_argument(
        "--phase",
        default="snapshot_copy",
        choices=("snapshot_copy", "async_propagation", "mode_change",
                 "dual_execution"),
        help="migration phase the leader crash targets",
    )
    failover.add_argument(
        "--fault-plan",
        default=None,
        help="explicit fault spec, e.g. "
        "'crash_leader:counters:0:snapshot_copy@0.3+1.0' "
        "(default: a phase-targeted leader crash on the migrating shard)",
    )
    failover.add_argument(
        "--compare",
        action="store_true",
        help="instead of the soak, compare bytes moved: Remus full copy vs "
        "wait-and-remaster onto an in-sync follower",
    )

    from repro.bench.cli import add_bench_arguments, add_sweep_arguments

    bench = sub.add_parser(
        "bench",
        help="kernel microbenchmark + experiment sweep; writes BENCH_*.json",
    )
    add_bench_arguments(bench)

    sweep = sub.add_parser(
        "sweep",
        help="fan seeds x (scenario, approach) cells across a worker pool",
    )
    add_sweep_arguments(sweep)

    lint = sub.add_parser(
        "lint",
        help="simlint: determinism & protocol-safety static analysis",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)

    args = parser.parse_args(argv)
    if args.command == "list":
        from repro.migration import APPROACHES

        print("scenarios:")
        for name in registry.names():
            spec = registry.get(name)
            print("  {:<16} approaches: {}".format(name, ", ".join(spec.approaches)))
            if spec.description:
                print("  {:<16} {}".format("", spec.description))
        print("approaches: " + ", ".join(sorted(APPROACHES)))
        return 0
    if args.command == "experiment":
        overrides = {}
        if args.topology is not None:
            overrides["topology"] = args.topology
        if args.pump_share is not None:
            if not 0.0 < args.pump_share <= 1.0:
                print(
                    "error: --pump-share must be in (0, 1], got {}".format(
                        args.pump_share
                    ),
                    file=sys.stderr,
                )
                return 2
            overrides["pump_share"] = args.pump_share
        try:
            result = registry.run(
                args.scenario, approach=args.approach, seed=args.seed, **overrides
            )
        except ValueError as exc:
            print("error: {}".format(exc), file=sys.stderr)
            return 2
        if args.json:
            json.dump(result.to_dict(), sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            _print_result(result)
        return 0
    if args.command == "profile":
        from repro.profiling import Profiler, format_report

        try:
            with Profiler() as profiler:
                result = registry.run(
                    args.scenario, approach=args.approach, seed=args.seed
                )
        except ValueError as exc:
            print("error: {}".format(exc), file=sys.stderr)
            return 2
        report = profiler.report()
        report["scenario"] = args.scenario
        report["approach"] = result.to_dict().get("approach")
        report["seed"] = args.seed
        if args.out:
            with open(args.out, "w") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
        if args.json:
            json.dump(report, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            print(
                "profile: {} / {} (seed {})".format(
                    args.scenario, report["approach"], args.seed
                )
            )
            print()
            print(format_report(report))
        return 0
    if args.command == "chaos":
        return _run_chaos(args)
    if args.command == "failover":
        return _run_failover(args)
    if args.command == "bench":
        from repro.bench.cli import run_bench_command

        return run_bench_command(args)
    if args.command == "sweep":
        from repro.bench.cli import run_sweep_command

        return run_sweep_command(args)
    if args.command == "lint":
        from repro.analysis.cli import run_lint

        return run_lint(args)
    return 1


if __name__ == "__main__":
    sys.exit(main())
