"""Global switches for the transaction-layer fast paths.

Every optimization in this module's purview is *semantics-preserving*: with a
flag on or off the simulated timeline must be byte-identical (proven by
``tests/test_fastpath_equivalence.py``). The flags exist so that

- the equivalence tests can run every scenario with the optimizations
  disabled and compare canonical timelines against the fast runs, and
- the txn microbenchmarks (``repro.bench.txn_bench``) can attribute their
  speedup to specific mechanisms instead of asserting it.

The flags are plain module globals so the hot paths pay a single attribute
load to consult them (no dataclass indirection, no function call).

Flags
-----
``clog_hints``
    Stamp PostgreSQL-style visibility hints (the creating/deleting
    transaction's resolved commit timestamp, or an ABORTED marker) on tuple
    headers, so repeat visibility checks skip the CLOG entirely.
``snapshot_cache``
    Reuse one :class:`~repro.storage.snapshot.Snapshot` object per
    (transaction, node) and share epoch-tagged read snapshots instead of
    rebuilding the active-xid set per transaction.
``group_commit``
    Coalesce WAL flushes completing at the same simulated instant into one
    flush event with a single cost-model charge (per-record LSNs are
    assigned at append time and unaffected).
``lock_fastpath``
    O(1) uncontended lock acquire/release with no event allocation and no
    queue scan; contended requests take the FIFO slow path unchanged.
``migration_scan``
    Indexed snapshot scan (§3.2): per-shard heaps keep an incrementally
    sorted key index so the migration snapshot copy (and crash-recovery
    repair scan) stops re-sorting the whole heap per copy, decides
    visibility inline over runs of hint-bit-clean tuples, and charges the
    scan CPU once per tuple batch with identical totals.
``migration_pump``
    Shard-routed WAL pump (§3.3): the WAL keeps a per-shard record routing
    index so the propagation send process consumes only records touching
    the migrating shard set — skipped records still advance the reader and
    its CPU-charge accounting at the exact legacy boundaries.
``migration_replay``
    Batched replay dispatch (§3.3/§3.6): replay slots pull coalesced
    per-transaction change vectors (the per-record kind dispatch is
    resolved once, when the transfer is scheduled) and applied-watermark
    waiters resolve through a sorted cursor instead of a linear sweep per
    record.
``batch_workload``
    Population-level arrival dispatch (``repro.workloads.batch``): one
    dispatcher process walks the shared arrival schedule and spawns
    transaction runners, instead of one pacer process per simulated client.
    Timeline-byte-identical to the per-client mode (arrival instants come
    from the same RNG draws and are globally unique). Defaults **off**: it
    swaps the driving machinery rather than a hot path inside it, so the
    storm harness and ``repro bench --cluster`` opt in explicitly.
``partitioned_loop``
    Partitioned event loop (``repro.sim.partition``): the kernel heap is
    sharded by node group and drained in conservative lookahead windows
    bounded by the minimum inter-partition network latency. Defaults
    **off** for the same reason as ``batch_workload`` — the storm harness
    opts in; the equivalence suite pins its digest against the single-loop
    run.
``parallel_drain``
    Multi-core window drain (``repro.sim.parallel``): the partitioned
    loop's per-AZ subheaps execute on real worker processes, one replica
    of the cluster per worker draining only the partitions it owns, with
    cross-partition messages exchanged at window barriers. The merged
    sorted timeline is byte-identical to the single loop (pinned digests
    in the equivalence suite). Defaults **off**: ``repro bench --cluster``
    opts in; when a pool cannot start, the harness falls back to the
    serial windowed drain exactly like ``repro sweep`` does.
"""

from __future__ import annotations

from contextlib import contextmanager

clog_hints: bool = True
snapshot_cache: bool = True
group_commit: bool = True
lock_fastpath: bool = True
migration_scan: bool = True
migration_pump: bool = True
migration_replay: bool = True
batch_workload: bool = False
partitioned_loop: bool = False
parallel_drain: bool = False

_FLAG_NAMES = (
    "clog_hints",
    "snapshot_cache",
    "group_commit",
    "lock_fastpath",
    "migration_scan",
    "migration_pump",
    "migration_replay",
    "batch_workload",
    "partitioned_loop",
    "parallel_drain",
)


def flags() -> dict:
    """Current flag values as a dict (for reports and tests)."""
    return {name: globals()[name] for name in _FLAG_NAMES}


def configure(**values: bool) -> dict:
    """Set flags by name; returns the previous values of the touched flags."""
    previous = {}
    for name, value in values.items():
        if name not in _FLAG_NAMES:
            raise ValueError(
                "unknown fast-path flag {!r}; known: {}".format(name, _FLAG_NAMES)
            )
        previous[name] = globals()[name]
        globals()[name] = bool(value)
    return previous


@contextmanager
def overridden(**values: bool):
    """Context manager: temporarily set flags, restoring them on exit."""
    previous = configure(**values)
    try:
        yield
    finally:
        configure(**previous)


def all_disabled():
    """Context manager: run with every fast path off (the legacy paths)."""
    return overridden(**{name: False for name in _FLAG_NAMES})
