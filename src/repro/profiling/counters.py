"""Zero-sim-time-overhead fast-path counters.

The transaction-layer fast paths (``repro.fastpath``) bump these plain
integer attributes as they run. Incrementing a counter never touches the
simulator — no events, no virtual time, no RNG draws — so the counts can
stay on in production runs and feed both ``repro profile`` reports and the
txn microbenchmarks without perturbing any timeline.

The counters are deliberately coarse: one increment per *operation* (e.g.
per ``visible_version`` call), not per version traversed, to keep the cost
negligible next to the work being counted. Derived rates (hint hit ratio,
flush coalescing factor) are computed at report time.
"""

from __future__ import annotations


class FastPathCounters:
    """A bag of monotonically increasing integers. No sim interaction."""

    __slots__ = (
        "visibility_checks",
        "visibility_versions",
        "visibility_probes",
        "hint_stamps",
        "clog_slow_lookups",
        "snapshot_cache_hits",
        "snapshot_cache_misses",
        "shared_snapshot_hits",
        "shared_snapshot_misses",
        "wal_flushes",
        "wal_flush_groups",
        "wal_flush_joins",
        "lock_fast_acquires",
        "lock_slow_acquires",
        "migration_scan_batches",
        "migration_pump_skipped",
        "migration_replay_coalesced",
        "repl_ship_batches",
        "failover_elections",
        "stale_epoch_rejects",
        "drain_windows",
        "drain_instants",
        "drain_barrier_msgs",
        "drain_reflected_msgs",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def to_dict(self) -> dict:
        raw = {name: getattr(self, name) for name in self.__slots__}
        raw["derived"] = self.derived()
        return raw

    def derived(self) -> dict:
        """Ratios a report wants: hit rates and coalescing factors."""
        out = {}
        if self.visibility_versions:
            # Every traversed version is at least one creation-visibility
            # probe; only hint misses reach the CLOG. (``visibility_probes``
            # counts just the fallback calls, so it cannot be the base.)
            out["hint_hit_ratio"] = round(
                1.0 - self.clog_slow_lookups / self.visibility_versions, 4
            )
        snap_total = self.snapshot_cache_hits + self.snapshot_cache_misses
        if snap_total:
            out["snapshot_cache_hit_ratio"] = round(
                self.snapshot_cache_hits / snap_total, 4
            )
        if self.wal_flushes:
            out["wal_flush_coalesced_ratio"] = round(
                self.wal_flush_joins / self.wal_flushes, 4
            )
        lock_total = self.lock_fast_acquires + self.lock_slow_acquires
        if lock_total:
            out["lock_fast_ratio"] = round(self.lock_fast_acquires / lock_total, 4)
        if self.migration_scan_batches:
            out["migration_scan_batches"] = self.migration_scan_batches
        if self.migration_pump_skipped:
            out["migration_pump_skipped"] = self.migration_pump_skipped
        if self.migration_replay_coalesced:
            out["migration_replay_coalesced"] = self.migration_replay_coalesced
        if self.repl_ship_batches:
            out["repl_ship_batches"] = self.repl_ship_batches
        if self.failover_elections:
            out["failover_elections"] = self.failover_elections
        if self.stale_epoch_rejects:
            out["stale_epoch_rejects"] = self.stale_epoch_rejects
        if self.drain_windows:
            out["drain_windows"] = self.drain_windows
            out["drain_barrier_msgs_per_window"] = round(
                self.drain_barrier_msgs / self.drain_windows, 4
            )
        if self.drain_instants:
            out["drain_instants"] = self.drain_instants
        if self.drain_reflected_msgs:
            # Nonzero means a worker sent to a partition owned elsewhere —
            # outside the partition-closed envelope, so surface it loudly.
            out["drain_reflected_msgs"] = self.drain_reflected_msgs
        return out


#: The process-wide counter instance hot paths increment.
COUNTERS = FastPathCounters()
