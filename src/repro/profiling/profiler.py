"""Wall-clock profiler for simulation runs.

The profiler observes the event loop from the outside: while active, the
kernel routes every dispatched callback through :meth:`Profiler.dispatch`,
which classifies the callback (by inspecting the suspended generator stack
of the process being resumed), times it with ``time.perf_counter`` and
accumulates host-CPU wall time per subsystem and per process.

Determinism guarantee: the profiler never schedules events, never reads or
advances virtual time, and never draws randomness. It only *wraps* each
callback invocation, so the simulated timeline — event order, timestamps,
results — is byte-identical with and without it. The equivalence is covered
by ``tests/test_profiling.py``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable

from repro.profiling.counters import COUNTERS
from repro.sim.errors import SimulationError
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.process import Process

#: Path fragments (checked in order) mapping code locations to subsystems.
#: More specific fragments come first: ``sim/network.py`` is "network" even
#: though the generic ``/sim/`` bucket is "kernel".
_SUBSYSTEM_RULES = (
    ("/sim/network.py", "network"),
    ("/sim/rpc.py", "network"),
    ("/migration/", "migration"),
    ("/txn/", "txn"),
    ("/storage/", "storage"),
    ("/cluster/", "cluster"),
    ("/workloads/", "workload"),
    ("/faults/", "faults"),
    ("/experiments/", "experiment"),
    ("/sim/", "kernel"),
)


def _subsystem_for(filename: str) -> str:
    filename = filename.replace("\\", "/")
    for fragment, name in _SUBSYSTEM_RULES:
        if fragment in filename:
            return name
    return "other"


class Profiler:
    """Context manager that attributes a run's wall time to subsystems.

    Usage::

        with Profiler() as prof:
            sim.run()
        report = prof.report()

    Only one profiler may be active at a time (they hook a class attribute
    on :class:`~repro.sim.kernel.Simulator`).
    """

    def __init__(self) -> None:
        # subsystem -> [wall_seconds, dispatch_count]
        self._subsystems: dict[str, list] = {}
        # process name -> [wall_seconds, dispatch_count]
        self._processes: dict[str, list] = {}
        self._dispatches = 0
        self._wall_start: float | None = None
        self._wall_total = 0.0
        self._code_cache: dict[str, str] = {}
        self._counters_before: dict | None = None
        #: Stamped by the kernel's profiled run loop; lets :meth:`report`
        #: include simulated time without the caller passing the Simulator.
        self.last_sim: Simulator | None = None

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    def __enter__(self) -> "Profiler":
        if Simulator._active_profiler is not None:
            raise SimulationError("a Profiler is already active")
        Simulator._active_profiler = self
        self._counters_before = dict(
            (name, getattr(COUNTERS, name)) for name in COUNTERS.__slots__
        )
        self._wall_start = perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if self._wall_start is not None:
            self._wall_total += perf_counter() - self._wall_start
            self._wall_start = None
        Simulator._active_profiler = None

    # ------------------------------------------------------------------
    # Hot hook (called by the kernel for every dispatched event)
    # ------------------------------------------------------------------
    def dispatch(self, callback: Callable[..., object], args: tuple) -> None:
        """Classify, invoke and time one event callback."""
        subsystem, process_name = self._attribute(callback)
        start = perf_counter()
        callback(*args)
        elapsed = perf_counter() - start
        self._dispatches += 1
        bucket = self._subsystems.get(subsystem)
        if bucket is None:
            bucket = self._subsystems[subsystem] = [0.0, 0]
        bucket[0] += elapsed
        bucket[1] += 1
        if process_name is not None:
            pbucket = self._processes.get(process_name)
            if pbucket is None:
                pbucket = self._processes[process_name] = [0.0, 0]
            pbucket[0] += elapsed
            pbucket[1] += 1

    def _attribute(self, callback: Callable[..., object]) -> tuple:
        """(subsystem, process_name_or_None) for a scheduled callback.

        Resuming a process is attributed to the *innermost* suspended
        generator frame — the code that actually executes when the process
        wakes — found by walking the ``gi_yieldfrom`` chain. Non-process
        callbacks (event completions, bare functions) classify by their own
        code object.
        """
        owner = getattr(callback, "__self__", None)
        if owner is None:
            closure = getattr(callback, "__closure__", None)
            if closure is not None:
                for cell in closure:
                    try:
                        contents = cell.cell_contents
                    except ValueError:
                        continue
                    if isinstance(contents, Process):
                        owner = contents
                        break
        if isinstance(owner, Process):
            generator = owner._generator
            while True:
                sub = getattr(generator, "gi_yieldfrom", None)
                if sub is None or not hasattr(sub, "gi_code"):
                    break
                generator = sub
            code = getattr(generator, "gi_code", None)
            if code is None:
                return "other", owner.name
            return self._cached_subsystem(code.co_filename), owner.name
        if isinstance(owner, Event):
            return "kernel", None
        func = getattr(callback, "__func__", callback)
        code = getattr(func, "__code__", None)
        if code is None:
            return "other", None
        return self._cached_subsystem(code.co_filename), None

    def _cached_subsystem(self, filename: str) -> str:
        subsystem = self._code_cache.get(filename)
        if subsystem is None:
            subsystem = self._code_cache[filename] = _subsystem_for(filename)
        return subsystem

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, sim: Simulator | None = None, top: int = 12) -> dict:
        """Structured report: per-subsystem wall time, top processes, counters."""
        if sim is None:
            sim = self.last_sim
        wall = self._wall_total
        if self._wall_start is not None:  # still active
            wall += perf_counter() - self._wall_start
        attributed = sum(bucket[0] for bucket in self._subsystems.values())
        subsystems = {}
        for name in sorted(
            self._subsystems, key=lambda n: self._subsystems[n][0], reverse=True
        ):
            sub_wall, count = self._subsystems[name]
            subsystems[name] = {
                "wall_s": round(sub_wall, 6),
                "pct": round(100.0 * sub_wall / attributed, 2) if attributed else 0.0,
                "dispatches": count,
            }
        processes = [
            {"name": name, "wall_s": round(bucket[0], 6), "dispatches": bucket[1]}
            for name, bucket in sorted(
                self._processes.items(), key=lambda item: item[1][0], reverse=True
            )[:top]
        ]
        counters = COUNTERS.to_dict()
        if self._counters_before is not None:
            for name, before in self._counters_before.items():
                counters[name] = counters[name] - before
            counters["derived"] = COUNTERS.derived()
        payload = {
            "wall_time_s": round(wall, 6),
            "dispatches": self._dispatches,
            "dispatch_rate_per_s": round(self._dispatches / wall, 1) if wall else 0.0,
            "subsystems": subsystems,
            "top_processes": processes,
            "fastpath_counters": counters,
        }
        if sim is not None:
            payload["sim_time_s"] = round(sim.now, 6)
            payload["pending_events"] = sim.pending_events
        return payload


def format_report(report: dict) -> str:
    """Render a :meth:`Profiler.report` payload as an aligned text table."""
    lines = []
    if "sim_time_s" in report:
        lines.append("simulated time : {:.3f} s".format(report["sim_time_s"]))
    lines.append("wall time      : {:.3f} s".format(report["wall_time_s"]))
    lines.append(
        "dispatches     : {} ({:.0f}/s)".format(
            report["dispatches"], report["dispatch_rate_per_s"]
        )
    )
    lines.append("")
    lines.append("{:<12} {:>10} {:>7} {:>12}".format("subsystem", "wall (s)", "%", "dispatches"))
    for name, row in report["subsystems"].items():
        lines.append(
            "{:<12} {:>10.4f} {:>6.1f}% {:>12}".format(
                name, row["wall_s"], row["pct"], row["dispatches"]
            )
        )
    if report["top_processes"]:
        lines.append("")
        lines.append("top processes:")
        for row in report["top_processes"]:
            lines.append(
                "  {:<40} {:>9.4f} s {:>9} dispatches".format(
                    row["name"][:40], row["wall_s"], row["dispatches"]
                )
            )
    derived = report["fastpath_counters"].get("derived") or {}
    if derived:
        lines.append("")
        lines.append("fast-path ratios:")
        for name, value in sorted(derived.items()):
            lines.append("  {:<28} {}".format(name, value))
    return "\n".join(lines)
