"""Deterministic profiling: fast-path counters and wall-clock attribution.

Two complementary facilities live here:

- :mod:`repro.profiling.counters` — plain-integer counters the transaction
  fast paths bump (hint hits, snapshot cache hits, flush coalescing, lock
  fast acquires). Zero simulator interaction, always safe to leave on.
- :mod:`repro.profiling.profiler` — a wall-clock profiler that wraps a
  simulation run and attributes host CPU time to subsystems (kernel, txn,
  storage, network, migration, ...) by inspecting the generator stack of
  each resumed process. It observes the event loop from the outside, so it
  has **zero effect on the simulated timeline**: same events, same order,
  same results, profiled or not.

``repro profile <scenario>`` is the CLI entry point.
"""

from repro.profiling.counters import COUNTERS, FastPathCounters
from repro.profiling.profiler import Profiler, format_report

__all__ = ["COUNTERS", "FastPathCounters", "Profiler", "format_report"]
