"""The PolarDB-Squall port: pull-based live reconfiguration (§2.3.2, §4.2).

Squall [23] flips ownership at the start of the migration and then moves the
data in ~8 MB *chunks*: reactively when a transaction on the destination
touches a missing chunk, and in the background otherwise. A migration-status
tracking table records each chunk's location. Because Squall's consistency
story relies on H-store partition locks, the PolarDB port runs with
shard-lock concurrency control (``cluster.cc_mode == "shard_lock"``): every
transaction takes shared/exclusive shard locks for its duration, and each
chunk pull takes the source shard's lock exclusively while it copies.

Consequences reproduced from the paper:

- transactions still running on the source abort when they touch an
  already-migrated chunk (the 13 % batch aborts of Table 2);
- a long batch transaction holding shard locks blocks pulls *and* all other
  transactions on those shards (YCSB throughput ~0 during the batch);
- every reactive pull blocks the waiting transactions for the chunk transfer
  time (the post-batch fluctuation in Figures 6c/7c).
"""

from repro import fastpath
from repro.cluster.hashing import consistent_hash
from repro.migration.base import BaseMigration
from repro.sim.events import AllOf
from repro.sim.network import MIGRATION_CLASS
from repro.txn.errors import MigrationAbort

DEFAULT_CHUNK_BYTES = 8 << 20  # 8 MB, as suggested in the Squall paper


class _ChunkTracker:
    """Migration-status tracking table for one shard's chunks."""

    def __init__(self, sim, shard_id, hash_range, num_chunks):
        self.shard_id = shard_id
        self.hash_range = hash_range
        self.num_chunks = max(1, num_chunks)
        self.state = ["source"] * self.num_chunks  # "source"|"pulling"|"done"
        self.events = [None] * self.num_chunks
        self.sim = sim

    def chunk_of(self, key):
        offset = consistent_hash(key) - self.hash_range.lo
        index = offset * self.num_chunks // self.hash_range.width
        return min(max(index, 0), self.num_chunks - 1)

    def pending_chunks(self):
        return [i for i, s in enumerate(self.state) if s == "source"]

    @property
    def all_done(self):
        return all(s == "done" for s in self.state)


class SquallMigration(BaseMigration):
    name = "squall"

    def __init__(
        self, cluster, shard_ids, source, dest, chunk_bytes=DEFAULT_CHUNK_BYTES, **kwargs
    ):
        super().__init__(cluster, shard_ids, source, dest, **kwargs)
        if cluster.cc_mode != "shard_lock":
            raise ValueError(
                "the Squall port requires shard-lock concurrency control "
                "(set cluster.cc_mode = 'shard_lock' before the workload starts)"
            )
        self.chunk_bytes = chunk_bytes
        self.trackers = {}
        for shard_id in self.shard_ids:
            schema = cluster.tables[shard_id.table]
            hash_range = schema.partitioner.range_for(shard_id.index)
            if hash_range is None:
                raise NotImplementedError(
                    "the Squall port does not support multi-key range "
                    "partitioning (§4.6: not shown in the TPC-C scale-out)"
                )
            shard_bytes = (
                cluster.nodes[source].heap_for(shard_id).key_count * schema.tuple_size
            )
            num_chunks = max(1, round(shard_bytes / chunk_bytes))
            self.trackers[shard_id] = _ChunkTracker(
                self.sim, shard_id, hash_range, num_chunks
            )
        self.tm_commit_ts = None

    # ------------------------------------------------------------------
    def run(self):
        stats = self.stats
        stats.phase_start(self.sim, "reconfig")
        # The tracking-table hook must be live *before* ownership flips: the
        # first destination-routed transaction triggers a reactive pull.
        # Pre-flip the hook is a no-op (owner == source, all chunks there).
        for shard_id in self.shard_ids:
            self.cluster.add_access_hook(shard_id, self)
        # Ownership flips immediately; missing data is pulled on demand.
        yield from self.cluster.rpc_broadcast(self.source, 64)
        self.cluster.set_cache_read_through(self.shard_ids)
        tm_cts = yield from self.update_shard_map(label="squall_reconfig")
        self.tm_commit_ts = tm_cts
        yield from self.broadcast_cache_refresh(tm_cts)
        self.cluster.clear_cache_read_through(self.shard_ids)
        stats.phase_end(self.sim, "reconfig")

        stats.phase_start(self.sim, "pulls")
        # One asynchronous background worker per migrating shard (§4.2).
        workers = [
            self.sim.spawn(self._background_puller(shard_id), name="squall-bg")
            for shard_id in self.shard_ids
        ]
        yield AllOf(workers)
        stats.phase_end(self.sim, "pulls")
        yield from self._finish()

    def _background_puller(self, shard_id):
        tracker = self.trackers[shard_id]
        while not tracker.all_done:
            pending = tracker.pending_chunks()
            if not pending:
                # Chunks still in "pulling" state: wait for the earliest one.
                for i, state in enumerate(tracker.state):
                    if state == "pulling":
                        yield tracker.events[i]
                        break
                continue
            yield from self._pull_chunk(shard_id, pending[0])

    # ------------------------------------------------------------------
    # Access hook: reactive pulls and source-side aborts
    # ------------------------------------------------------------------
    def before_access(self, txn, shard_id, owner, key, is_write):
        if txn.is_shadow or txn.label.startswith("__"):
            return
        tracker = self.trackers[shard_id]
        if key is None:
            # Full-shard scan: the destination needs every chunk; a source
            # scan aborts if anything already moved.
            if owner == self.dest:
                for chunk in range(tracker.num_chunks):
                    if tracker.state[chunk] != "done":
                        yield from self._pull_chunk(shard_id, chunk)
                return
            if not all(s == "source" for s in tracker.state):
                self.stats.txns_aborted_by_migration += 1
                raise MigrationAbort(
                    "shard {!r} partially migrated".format(shard_id), txn_id=txn.tid
                )
            return
        chunk = tracker.chunk_of(key)
        if owner == self.dest:
            if tracker.state[chunk] != "done":
                yield from self._pull_chunk(shard_id, chunk)
            return
        # A transaction still running against the source: its chunk may
        # already have left the building.
        if tracker.state[chunk] != "source":
            self.stats.txns_aborted_by_migration += 1
            raise MigrationAbort(
                "chunk {} of {!r} already migrated".format(chunk, shard_id),
                txn_id=txn.tid,
            )

    # ------------------------------------------------------------------
    def _pull_chunk(self, shard_id, chunk):
        """Generator: move one chunk source -> dest under the source shard
        lock (the paper's partition-lock-per-pull)."""
        tracker = self.trackers[shard_id]
        if tracker.state[chunk] == "done":
            return
        if tracker.state[chunk] == "pulling":
            yield tracker.events[chunk]
            return
        tracker.state[chunk] = "pulling"
        done = self.sim.event(name="pull:{}:{}".format(shard_id, chunk))
        tracker.events[chunk] = done

        source_mgr = self.source_node.manager
        lock_owner = ("squall-pull", shard_id, chunk)
        yield source_mgr.shard_locks.acquire(
            shard_id, lock_owner, source_mgr.shard_locks.EXCLUSIVE
        )
        try:
            heap = self.source_node.heap_for(shard_id)
            moved = []
            # The chunk filter only reads; versions are removed in a second
            # loop below, so the index's live list is safe to walk here. Key
            # order does not reach the timeline (one summed-size send, no
            # yield per key) — the equivalence suite pins that.
            if fastpath.migration_scan:
                keys = heap.sorted_keys()
            else:
                keys = list(heap.keys())
            for key in keys:
                if tracker.chunk_of(key) != chunk:
                    continue
                version = heap.latest_committed_or_locked(key)
                if version is None:
                    continue
                if version.xmax is not None and self.source_node.clog.status(
                    version.xmax
                ).value == "committed":
                    continue  # deleted row
                moved.append((key, version.value))
            # Chunk transfer: storage I/O plus the wire.
            yield self.cluster.config.costs.pull_chunk_latency
            size = sum(
                self.cluster.tables[shard_id.table].tuple_size for _ in moved
            )
            yield from self.cluster.rpc_send(
                self.source, self.dest, size, traffic_class=MIGRATION_CLASS
            )
            self.dest_node.bulk_install(shard_id, moved)
            for key, _value in moved:
                for version in list(heap.chain(key)):
                    heap.remove_version(version)
            self.stats.chunks_pulled += 1
            self.stats.tuples_copied += len(moved)
            self.stats.bytes_copied += size
            tracker.state[chunk] = "done"
        finally:
            source_mgr.shard_locks.release(shard_id, lock_owner)
            done.succeed(None)

    # ------------------------------------------------------------------
    def _finish(self):
        # The reconfiguration is done once every chunk has been pulled; the
        # straggler handling (pre-flip transactions aborting on touch) and
        # hook removal run detached, so consecutive migrations proceed back
        # to back — Squall's consolidation completes much faster than the
        # push approaches', as in the paper (§4.4.2).
        self.sim.spawn(self._deferred_cleanup(), name="squall-cleanup")
        return
        yield  # pragma: no cover - keeps this a generator like its peers

    def _deferred_cleanup(self):
        while True:
            old = [
                txn.tid
                for txn in self.cluster.snapshot_active_txns()
                if not txn.is_shadow and txn.start_ts < self.tm_commit_ts
            ]
            if not old:
                break
            yield self.cluster.wait_for_txns(old)
        for shard_id in self.shard_ids:
            self.cluster.remove_access_hook(shard_id, self)
        self.cleanup_source()
