"""Live migration protocols.

The paper's contribution and every baseline it evaluates against:

- :mod:`repro.migration.base` — the migration framework: specs, stats,
  phase bookkeeping, the sequential multi-migration controller;
- :mod:`repro.migration.snapshot_copy` — streaming MVCC snapshot copy (§3.2);
- :mod:`repro.migration.propagation` — WAL-based update propagation with
  per-transaction update-cache queues and transaction-level parallel replay
  (§3.3, §3.6);
- :mod:`repro.migration.mocc` — the MOCC concurrency-control protocol for
  dual execution: shadow transactions, validation/commit stages (§3.5.2);
- :mod:`repro.migration.remus` — Remus: sync barrier, mode change, ordered
  diversion via T_m, dual execution (§3.4, §3.5);
- :mod:`repro.migration.lock_and_abort` — the Citus/LibrA-style baseline;
- :mod:`repro.migration.wait_and_remaster` — the DynaMast-style baseline;
- :mod:`repro.migration.squall` — the pull-based Squall port with chunked
  reactive/background pulls and shard-lock concurrency control;
- :mod:`repro.migration.stop_and_copy` — the Greenplum/Redshift-style
  read-only redistribution (used in ablations, §6);
- :mod:`repro.migration.recovery` — crash recovery of in-flight migrations
  (§3.7);
- :mod:`repro.migration.supervisor` — self-healing plan execution: watchdog,
  crash recovery, bounded retries, graceful degradation (chaos harness).
"""

from repro.migration.base import Migration, MigrationPlan, MigrationStats, run_plan
from repro.migration.lock_and_abort import LockAndAbortMigration
from repro.migration.recovery import crash_migration, recover_migration
from repro.migration.remus import RemusMigration
from repro.migration.squall import SquallMigration
from repro.migration.stop_and_copy import StopAndCopyMigration
from repro.migration.supervisor import (
    MigrationSupervisor,
    SupervisorConfig,
    run_supervised_plan,
)
from repro.migration.wait_and_remaster import WaitAndRemasterMigration

APPROACHES = {
    "remus": RemusMigration,
    "lock_and_abort": LockAndAbortMigration,
    "wait_and_remaster": WaitAndRemasterMigration,
    "squall": SquallMigration,
    "stop_and_copy": StopAndCopyMigration,
}

__all__ = [
    "APPROACHES",
    "LockAndAbortMigration",
    "Migration",
    "MigrationPlan",
    "MigrationStats",
    "MigrationSupervisor",
    "RemusMigration",
    "SquallMigration",
    "StopAndCopyMigration",
    "SupervisorConfig",
    "WaitAndRemasterMigration",
    "crash_migration",
    "recover_migration",
    "run_plan",
    "run_supervised_plan",
]
