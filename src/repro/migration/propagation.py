"""WAL-based update propagation and transaction-level parallel replay (§3.3).

A *send process* on the source node streams WAL records, building an update
cache queue per transaction with the changes that touch the migrating shards.

In **asynchronous mode** a transaction's cached changes are shipped when its
commit record is encountered (and dropped if it aborted or committed at or
before the snapshot timestamp). A *replay* task on the destination starts a
shadow transaction with the same start timestamp, re-executes the changes
through the ordinary transaction manager, and commits with the same commit
timestamp.

In **synchronous mode** (after the sync barrier, §3.4) the changes are
shipped when the transaction's *prepare/validation* record is encountered:
the shadow transaction re-executes them immediately — detecting MOCC
WW-conflicts against destination transactions — is 2PC-prepared, and a
validation-ok/fail ack is sent back to the blocked source transaction. The
later commit (or rollback) record resolves the prepared shadow with the
source transaction's commit timestamp.

Replay is parallel across ``replay_parallelism`` slots, but transactions
with overlapping write keys are chained in commit order (the paper's
"transaction-level parallel apply approach based on SI by tracking timestamp
order", §3.6).
"""

from bisect import bisect_left, bisect_right, insort

from repro import fastpath
from repro.profiling.counters import COUNTERS
from repro.sim.errors import Interrupt
from repro.sim.network import MIGRATION_CLASS
from repro.sim.ordered import OrderedSet
from repro.sim.resources import Resource
from repro.storage.wal import WalRecordKind
from repro.txn.errors import RpcAbort, SerializationFailure, TransactionError
from repro.txn.transaction import Transaction, TxnState


class _InflightApply:
    """One replay/validation task's ordering state."""

    __slots__ = ("done", "min_lsn", "keys")

    def __init__(self, done, min_lsn, keys):
        self.done = done
        self.min_lsn = min_lsn
        self.keys = keys


class Propagation:
    """Update propagation pipeline for one migration."""

    def __init__(self, cluster, shard_ids, source, dest, snapshot_ts, from_lsn, stats):
        self.cluster = cluster
        self.sim = cluster.sim
        # Frozen tuple-keyed set: ShardId is a tuple subclass, so membership
        # per WAL record is one O(1) hash with no per-record allocation.
        self.shard_set = frozenset(shard_ids)
        self._pump_batch = cluster.config.pump_batch_records
        self._msg_overhead = cluster.config.propagation_msg_overhead
        self.source = source
        self.dest = dest
        self.snapshot_ts = snapshot_ts
        self.stats = stats
        self.costs = cluster.config.costs
        self.source_node = cluster.nodes[source]
        self.dest_node = cluster.nodes[dest]
        self.reader = self.source_node.wal.reader(from_lsn)
        self.mocc = None  # set by enable_sync(); None => async mode
        self._caches = {}  # source xid -> [change records]
        self._validated = {}  # source xid -> (shadow txn, inflight entry)
        self.validation_started = OrderedSet()  # xids whose PREPARE spawned a task
        self._inflight = []  # _InflightApply entries still replaying
        self._key_tail = {}  # (shard, key) -> done event of last writer
        self._slots = Resource(
            self.sim, capacity=cluster.config.replay_parallelism, name="replay"
        )
        # Watermark waiters as (target_lsn, insertion_seq, event). The fast
        # path keeps the list sorted by (lsn, seq) and resolves a ready
        # prefix with one bisect; the legacy path appends and sweeps. Both
        # fire ready waiters in insertion order.
        self._applied_waiters = []
        self._waiter_seq = 0
        # Insertion-ordered: a crash teardown interrupts these in spawn
        # order, keeping the teardown timeline deterministic (SIM003).
        self._tasks = OrderedSet()  # in-flight replay/resolution processes
        self._shadows = []  # every shadow txn created by this pipeline
        self._pump_process = None
        self._apply_gate = None  # armed while the snapshot copy is running
        self._since_cpu_charge = 0
        self.records_seen = 0
        self.pending_records = 0  # records in caches/in-flight (bookkeeping)
        self.unreplayed_records = 0  # committed records not yet applied
        # Set when a transfer exhausted its RPC retry budget (partitioned /
        # lossy destination): the pipeline can no longer guarantee delivery
        # and the migration needs supervised crash recovery (§3.7).
        self.wounded = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        self._pump_process = self.sim.spawn(self._pump(), name="propagation-send")

    def stop(self, kill_tasks=False):
        """Stop the send process; with ``kill_tasks`` also interrupt every
        in-flight replay task (crash injection).

        Interrupted tasks abort their shadow transactions (releasing locks
        and replay slots), so a crashed migration leaves no residue behind —
        recovery (§3.7) then resolves the already-prepared shadows. A normal
        teardown keeps the tasks: in-flight shadow commits must complete or
        committed source changes would be lost.
        """
        if self._pump_process is not None and not self._pump_process.finished:
            self._pump_process.interrupt("propagation stopped")
        if kill_tasks:
            for task in list(self._tasks):
                if not task.finished:
                    task.interrupt("propagation stopped")
            # Defensive sweep: abort shadows whose replay task already died
            # (e.g. crashed) while holding locks. Prepared shadows survive —
            # they are the residue recovery resolves by source outcome.
            manager = self.dest_node.manager
            for shadow in self._shadows:
                if shadow.finished:
                    continue
                participant = shadow.participant(self.dest)
                if participant is None:
                    continue
                if manager.force_abort_participant(participant):
                    from repro.txn.transaction import TxnState

                    shadow.state = TxnState.ABORTED
                    self.cluster.active_txns.pop(shadow.tid, None)

    def _spawn_task(self, generator, name):
        task = self.sim.spawn(generator, name=name)
        self._tasks.add(task)
        task.done_event.add_callback(lambda _ev: self._tasks.discard(task))
        return task

    def enable_sync(self, mocc):
        """Switch to synchronous propagation (the sync barrier is set)."""
        self.mocc = mocc

    def hold_applies(self):
        """Buffer replay until the snapshot copy has installed the base rows
        (Figure 2: async execution starts after snapshot copying)."""
        if self._apply_gate is None:
            self._apply_gate = self.sim.event(name="apply-gate")

    def release_applies(self):
        if self._apply_gate is not None:
            gate, self._apply_gate = self._apply_gate, None
            gate.succeed(None)

    def _wait_apply_gate(self):
        if self._apply_gate is not None and not self._apply_gate.triggered:
            yield self._apply_gate

    def drain(self):
        """Generator: wait until every in-flight replay task completes."""
        while self._inflight:
            yield self._inflight[0].done

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    def lag(self):
        """Catch-up distance: committed-but-unapplied changes (§3.4).

        Records cached for *uncommitted* transactions do not count — they
        have not been propagated yet (async mode ships at commit), so they
        cannot hold the mode change back; a long-running batch insert would
        otherwise stall the catch-up forever.
        """
        return self.reader.lag + self.unreplayed_records

    def applied_watermark(self):
        """Every committed change with lsn below this has been applied."""
        if self._inflight:
            return min(entry.min_lsn for entry in self._inflight)
        return self.reader.next_lsn

    def wait_applied_through(self, lsn):
        """Event firing once the applied watermark reaches ``lsn``."""
        event = self.sim.event(name="applied-through")
        if self.applied_watermark() >= lsn:
            event.succeed(None)
            return event
        self._waiter_seq += 1
        if fastpath.migration_replay:
            insort(self._applied_waiters, (lsn, self._waiter_seq, event))
        else:
            self._applied_waiters.append((lsn, self._waiter_seq, event))
        return event

    def _check_applied_waiters(self):
        waiters = self._applied_waiters
        if not waiters:
            return
        if fastpath.migration_replay:
            # Sorted by (lsn, seq): one bisect cuts the ready prefix.
            watermark = self.applied_watermark()
            if waiters[0][0] > watermark:
                return
            cut = bisect_right(waiters, (watermark, self._waiter_seq + 1))
            ready = waiters[:cut]
            del waiters[:cut]
            # Fire in insertion order — the order the legacy sweep fires in.
            ready.sort(key=lambda entry: entry[1])
            for entry in ready:
                entry[2].succeed(None)
            return
        watermark = self.applied_watermark()
        ready = [entry for entry in waiters if watermark >= entry[0]]
        for entry in ready:
            waiters.remove(entry)
            entry[2].succeed(None)

    # ------------------------------------------------------------------
    # Send process
    # ------------------------------------------------------------------
    def _pump(self):
        try:
            if fastpath.migration_pump:
                yield from self._pump_routed()
                return
            while True:
                record = yield from self.reader.next_record()
                self.records_seen += 1
                self._since_cpu_charge += 1
                if self._since_cpu_charge >= self._pump_batch:
                    # The send process consumes source CPU while scanning the
                    # WAL (the ~6% source overhead in Figure 10).
                    yield self.source_node.cpu.use(
                        self.costs.cpu_propagate * self._since_cpu_charge
                    )
                    self._since_cpu_charge = 0
                self._handle(record)
        except Interrupt:
            return

    def _pump_routed(self):
        """Shard-routed send loop: identical effects, fewer record visits.

        Consumes only records the unrouted loop would act on — change
        records touching the migrating shard set, plus every control
        record — via the WAL's per-shard routing index. Skipped records
        still advance the reader cursor, the ``records_seen`` count and
        the CPU-charge accounting, so every charge lands at the exact
        count boundary (and therefore the exact instant) the unrouted
        loop pays it, interleaved with the same ``_handle`` effects in
        the same LSN order.
        """
        wal = self.source_node.wal
        reader = self.reader
        cpu = self.source_node.cpu
        batch = self._pump_batch
        charge = self.costs.cpu_propagate * batch
        change_index, control_index = wal.routing_index()
        routes = [control_index]
        for shard_id in sorted(self.shard_set):
            route = change_index.get(shard_id)
            if route is None:
                # Share the live list so appends after this point land in it.
                route = change_index[shard_id] = []
            routes.append(route)
        cursors = [bisect_left(route, reader.next_lsn) for route in routes]
        while True:
            if reader.next_lsn >= wal.tail_lsn:
                yield wal._wait_appended()
                continue
            # Next relevant record at or beyond the reader cursor, if any.
            next_lsn = wal.tail_lsn
            winner = -1
            for index, route in enumerate(routes):
                cursor = cursors[index]
                if cursor < len(route) and route[cursor] < next_lsn:
                    next_lsn = route[cursor]
                    winner = index
            # Records in [reader.next_lsn, next_lsn) are irrelevant: count
            # them and pay every crossed charge boundary, handling nothing.
            gap = next_lsn - reader.next_lsn
            if gap:
                self.records_seen += gap
                reader.next_lsn += gap
                COUNTERS.migration_pump_skipped += gap
                self._since_cpu_charge += gap
                while self._since_cpu_charge >= batch:
                    yield cpu.use(charge)
                    self._since_cpu_charge -= batch
            if winner < 0:
                continue
            record = wal.record_at(next_lsn)
            reader.next_lsn = next_lsn + 1
            cursors[winner] += 1
            self.records_seen += 1
            self._since_cpu_charge += 1
            if self._since_cpu_charge >= batch:
                yield cpu.use(charge)
                self._since_cpu_charge = 0
            self._handle(record)

    def _handle(self, record):
        kind = record.kind
        if kind.is_change:
            if record.shard_id in self.shard_set:
                self._caches.setdefault(record.xid, []).append(record)
                self.pending_records += 1
            return
        if kind is WalRecordKind.PREPARE:
            if self.mocc is not None and record.xid in self._caches:
                self._start_validation(record.xid, record.start_ts)
            return
        if kind in (WalRecordKind.COMMIT, WalRecordKind.COMMIT_PREPARED):
            self._on_commit(record.xid, record.commit_ts)
            return
        if kind in (WalRecordKind.ABORT, WalRecordKind.ROLLBACK_PREPARED):
            self._on_abort(record.xid)
            return

    def _on_commit(self, xid, commit_ts):
        if xid in self._validated:
            shadow, entry = self._validated.pop(xid)
            self._spawn_task(
                self._commit_prepared_shadow(xid, shadow, entry, commit_ts),
                name="shadow-commit",
            )
            return
        records = self._caches.pop(xid, None)
        if not records:
            return
        if commit_ts <= self.snapshot_ts:
            # Already contained in the snapshot copy.
            self.pending_records -= len(records)
            self._check_applied_waiters()
            return
        self.unreplayed_records += len(records)
        self._start_async_apply(records, commit_ts)

    def _on_abort(self, xid):
        records = self._caches.pop(xid, None)
        if records:
            self.pending_records -= len(records)
        if xid in self._validated:
            shadow, entry = self._validated.pop(xid)
            self._spawn_task(
                self._rollback_prepared_shadow(xid, shadow, entry),
                name="shadow-rollback",
            )
        self._check_applied_waiters()

    # ------------------------------------------------------------------
    # Replay task scheduling (commit-order chaining per key)
    # ------------------------------------------------------------------
    def _register_task(self, records):
        # Deduplicate in record order (dict preserves insertion order): the
        # predecessor-wait and key-tail bookkeeping below must run in a
        # process-independent order, and set iteration is hash-ordered.
        keys = list(dict.fromkeys((r.shard_id, r.key) for r in records))
        predecessors = list(
            dict.fromkeys(self._key_tail[k] for k in keys if k in self._key_tail)
        )
        done = self.sim.event(name="apply-done")
        for key in keys:
            self._key_tail[key] = done
        entry = _InflightApply(done, min(r.lsn for r in records), keys)
        self._inflight.append(entry)
        return entry, predecessors, done

    def _finish_task(self, entry, done):
        if entry in self._inflight:
            self._inflight.remove(entry)
        done.succeed(None)
        for key in entry.keys:
            if self._key_tail.get(key) is done:
                del self._key_tail[key]
        self._check_applied_waiters()

    def _transfer_cost(self, records):
        """Generator: network + (possibly spilled) reload cost of shipping.

        Shipping goes through the bounded RPC helper: a partitioned or lossy
        destination causes timed-out retransmits and finally an
        :class:`~repro.txn.errors.RpcAbort`, which wounds the pipeline
        instead of hanging it.
        """
        total_bytes = self._msg_overhead + sum(r.size for r in records)
        if len(records) > self.costs.spill_threshold:
            batches = len(records) // 1000 + 1
            yield batches * self.costs.spill_reload_per_batch
        yield from self.cluster.rpc_send(
            self.source, self.dest, total_bytes, traffic_class=MIGRATION_CLASS
        )
        self.stats.records_propagated += len(records)

    def _make_shadow(self, start_ts, label="__shadow__"):
        shadow = Transaction(
            Transaction.allocate_tid(), self.dest, start_ts, label=label
        )
        shadow.is_shadow = True
        shadow.begin_time = self.sim.now
        self.cluster.register_txn(shadow)
        self._shadows.append(shadow)
        self.stats.shadow_txns += 1
        return shadow

    def _replay_records(self, shadow, records):
        """Generator: re-execute the changes through the dest manager."""
        manager = self.dest_node.manager
        for record in records:
            if record.kind is WalRecordKind.INSERT:
                yield from manager.insert(
                    shadow, record.shard_id, record.key, record.value, size=record.size
                )
            elif record.kind is WalRecordKind.UPDATE:
                yield from manager.update(
                    shadow, record.shard_id, record.key, record.value, size=record.size
                )
            elif record.kind is WalRecordKind.DELETE:
                yield from manager.delete(
                    shadow, record.shard_id, record.key, size=record.size
                )
            elif record.kind is WalRecordKind.LOCK:
                yield from manager.lock_row(
                    shadow, record.shard_id, record.key, size=record.size
                )
            self.stats.records_applied += 1

    def _coalesce_changes(self, records):
        """Resolve the per-record kind dispatch once, at scheduling time.

        Returns the transaction's change vector: (bound manager method,
        positional args, size) per record, in record order — the replay
        slot then applies it without re-branching on the record kind. Same
        manager generators, same order, same arguments as
        :meth:`_replay_records`.
        """
        manager = self.dest_node.manager
        ops = []
        for record in records:
            kind = record.kind
            if kind is WalRecordKind.INSERT:
                ops.append((manager.insert, (record.shard_id, record.key, record.value), record.size))
            elif kind is WalRecordKind.UPDATE:
                ops.append((manager.update, (record.shard_id, record.key, record.value), record.size))
            elif kind is WalRecordKind.DELETE:
                ops.append((manager.delete, (record.shard_id, record.key), record.size))
            else:
                ops.append((manager.lock_row, (record.shard_id, record.key), record.size))
        COUNTERS.migration_replay_coalesced += 1
        return ops

    def _replay_ops(self, shadow, ops):
        """Generator: apply a coalesced change vector through the manager."""
        stats = self.stats
        for method, args, size in ops:
            yield from method(shadow, *args, size=size)
            stats.records_applied += 1

    # ------------------------------------------------------------------
    # Async replay (commit-time shipping)
    # ------------------------------------------------------------------
    def _start_async_apply(self, records, commit_ts):
        entry, predecessors, done = self._register_task(records)
        ops = self._coalesce_changes(records) if fastpath.migration_replay else None
        self._spawn_task(
            self._async_apply(records, commit_ts, entry, predecessors, done, ops),
            name="async-apply",
        )

    def _async_apply(self, records, commit_ts, entry, predecessors, done, ops=None):
        shadow = None
        slot_request = None
        holding_slot = False
        try:
            yield from self._wait_apply_gate()
            for predecessor in predecessors:
                yield predecessor
            slot_request = self._slots.acquire()
            yield slot_request
            holding_slot = True
            yield from self._transfer_cost(records)
            shadow = self._make_shadow(records[0].start_ts)
            if ops is not None:
                yield from self._replay_ops(shadow, ops)
            else:
                yield from self._replay_records(shadow, records)
            yield from self.dest_node.manager.local_commit(shadow, commit_ts)
            shadow.commit_ts = commit_ts
            shadow.state = TxnState.COMMITTED
            self.cluster.finish_txn(shadow, committed=True)
        except Interrupt:
            # Migration torn down mid-replay: roll the shadow back so its
            # locks are released.
            if shadow is not None and not shadow.finished:
                yield from self.dest_node.manager.local_abort(shadow)
                shadow.state = TxnState.ABORTED
                self.cluster.finish_txn(shadow, committed=False)
        except RpcAbort as exc:
            # Destination unreachable after bounded retries: wound the
            # pipeline — the supervisor crashes and recovers the migration,
            # whose repair pass re-copies the changes this task dropped.
            self.wounded = exc
            if shadow is not None and not shadow.finished:
                yield from self.dest_node.manager.local_abort(shadow)
                shadow.state = TxnState.ABORTED
                self.cluster.finish_txn(shadow, committed=False)
        except TransactionError as exc:  # pragma: no cover - consistency bug
            raise AssertionError(
                "async replay must never conflict: {!r}".format(exc)
            ) from exc
        finally:
            if holding_slot:
                self._slots.release()
            else:
                # Interrupted at the acquire itself: the request may already
                # have been granted (or still be queued) — either way it must
                # not leak a replay slot.
                self._slots.cancel_acquire(slot_request)
            self.pending_records -= len(records)
            self.unreplayed_records -= len(records)
            self._finish_task(entry, done)

    # ------------------------------------------------------------------
    # Sync replay: validation at prepare, resolution at commit (§3.5.2)
    # ------------------------------------------------------------------
    def _start_validation(self, xid, start_ts):
        self.validation_started.add(xid)
        records = self._caches.pop(xid)
        self.unreplayed_records += len(records)
        entry, predecessors, done = self._register_task(records)
        ops = self._coalesce_changes(records) if fastpath.migration_replay else None
        self._spawn_task(
            self._validate(xid, start_ts, records, entry, predecessors, done, ops),
            name="shadow-validate",
        )

    def _validate(self, xid, start_ts, records, entry, predecessors, done, ops=None):
        shadow = None
        slot_request = None
        holding_slot = False
        validated = False
        ack = None
        try:
            yield from self._wait_apply_gate()
            for predecessor in predecessors:
                yield predecessor
            slot_request = self._slots.acquire()
            yield slot_request
            holding_slot = True
            shadow = self._make_shadow(start_ts)
            yield from self._transfer_cost(records)
            if ops is not None:
                yield from self._replay_ops(shadow, ops)
            else:
                yield from self._replay_records(shadow, records)
            yield from self.dest_node.manager.local_prepare(shadow)
            validated = True
            ack = True
        except (Interrupt, RpcAbort) as exc:
            # Migration torn down mid-validation (or the destination became
            # unreachable): abort the shadow and fail the waiting source
            # transaction (it is terminated by the crash handler, §3.7).
            if isinstance(exc, RpcAbort):
                self.wounded = exc
            if shadow is not None and not shadow.finished:
                yield from self.dest_node.manager.local_abort(shadow)
                shadow.state = TxnState.ABORTED
                self.cluster.finish_txn(shadow, committed=False)
        except SerializationFailure:
            # WW-conflict with a destination transaction: abort the shadow
            # and tell the source to abort too (both sides roll back).
            self.stats.ww_conflicts += 1
            yield from self.dest_node.manager.local_abort(shadow)
            shadow.state = TxnState.ABORTED
            self.cluster.finish_txn(shadow, committed=False)
            ack = False
        finally:
            # One cleanup path for every outcome — validated, WW-conflicted,
            # interrupted, wounded, or an exception the handlers above never
            # match: the replay slot and the task accounting must not depend
            # on which way the try block exited. (The abort yields above sit
            # before this block on purpose: an Interrupt landing in an abort
            # wait used to skip the release and wedge drain() forever.)
            if holding_slot:
                self._slots.release()
            else:
                self._slots.cancel_acquire(slot_request)
            self.pending_records -= len(records)
            self.unreplayed_records -= len(records)
            if validated:
                # Changes are applied (prepared); keep the key chain until
                # resolution but let the applied watermark advance past this
                # transaction.
                if entry in self._inflight:
                    self._inflight.remove(entry)
                self._check_applied_waiters()
                self._validated[xid] = (shadow, (entry, done))
            else:
                self._finish_task(entry, done)
        if ack is not None:
            yield from self._post_ack(self.mocc, xid, ok=ack)

    def _post_ack(self, mocc, xid, ok):
        """Generator: deliver a validation outcome to the blocked source
        transaction. The ack is retransmitted until it arrives — a source
        transaction waiting on a lost ack would otherwise never wake. A crash
        teardown interrupt simply stops the retransmits: the crash handler
        fails the waiter itself (§3.7)."""
        try:
            yield from self.cluster.rpc_send(self.dest, self.source, 64, persistent=True)
        except Interrupt:
            return
        mocc.post_result(xid, ok=ok)

    def _commit_prepared_shadow(self, xid, shadow, entry_done, commit_ts):
        entry, done = entry_done
        try:
            # Decision delivery is persistent: the source outcome is final,
            # so it must reach the destination across any partition.
            yield from self.cluster.rpc_send(self.source, self.dest, 64, persistent=True)
        except Interrupt:
            # Crash teardown mid-delivery: re-register the prepared shadow so
            # recovery (§3.7) finds it in the residue and resolves it by the
            # source CLOG outcome — never an orphaned PREPARED entry.
            self._validated[xid] = (shadow, entry_done)
            return
        yield from self.dest_node.manager.local_commit(shadow, commit_ts)
        shadow.commit_ts = commit_ts
        shadow.state = TxnState.COMMITTED
        self.cluster.finish_txn(shadow, committed=True)
        self._finish_task(entry, done)

    def _rollback_prepared_shadow(self, xid, shadow, entry_done):
        entry, done = entry_done
        try:
            yield from self.cluster.rpc_send(self.source, self.dest, 64, persistent=True)
        except Interrupt:
            self._validated[xid] = (shadow, entry_done)
            return
        yield from self.dest_node.manager.local_abort(shadow)
        shadow.state = TxnState.ABORTED
        self.cluster.finish_txn(shadow, committed=False)
        self._finish_task(entry, done)
