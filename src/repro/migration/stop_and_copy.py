"""Stop-and-copy redistribution (§6: Greenplum [13], Amazon Redshift [4]).

The crudest industrial strategy: stop accepting transactions, copy the
shards, flip the shard map, resume. Downtime equals the full copy duration.
Included as an ablation baseline to anchor the downtime axis.
"""

from repro.migration.base import BaseMigration
from repro.migration.snapshot_copy import copy_group_snapshot


class StopAndCopyMigration(BaseMigration):
    name = "stop_and_copy"

    def run(self):
        stats = self.stats
        stats.phase_start(self.sim, "stop_and_copy")
        self.cluster.close_routing_gate()
        try:
            ongoing = [
                txn.tid
                for txn in self.cluster.snapshot_active_txns()
                if not txn.is_shadow
            ]
            yield self.cluster.wait_for_txns(ongoing)
            snapshot_ts = yield from self.cluster.oracle.start_timestamp(self.source)
            yield from copy_group_snapshot(
                self.cluster, self.shard_ids, self.source, self.dest, snapshot_ts, stats
            )
            tm_cts = yield from self.update_shard_map()
            yield from self.broadcast_cache_refresh(tm_cts)
        finally:
            self.cluster.open_routing_gate()
        self.cleanup_source()
        stats.phase_end(self.sim, "stop_and_copy")
