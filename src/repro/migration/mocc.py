"""MOCC: multi-versioning + optimistic validation for dual execution (§3.5.2).

The destination-side half of MOCC lives in the propagation pipeline (shadow
transactions, validation, prepared-shadow resolution). This module provides
the source-side half: a commit hook installed on the source node's
transaction manager while the sync barrier is set. Any source transaction
that wrote a migrating shard blocks after writing its validation (prepare)
record until the destination acks the validation outcome; a WW-conflict ack
aborts both the source transaction and its shadow.

The hook also measures the added latency of synchronized source transactions
— the quantity Table 3 of the paper reports.
"""

from repro.txn.errors import SerializationFailure
from repro.txn.manager import CommitHook


class MoccCoordinator(CommitHook):
    """Source-side MOCC state: validation result events + sync-wait stats."""

    def __init__(self, cluster, shard_ids, stats, propagation=None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.shard_set = set(shard_ids)
        self.stats = stats
        self.propagation = propagation
        self.active = False
        self._results = {}  # source xid -> bool (posted before awaited)
        self._waiters = {}  # source xid -> event

    # ------------------------------------------------------------------
    # Destination -> source ack path (called by the propagation pipeline)
    # ------------------------------------------------------------------
    def post_result(self, xid, ok):
        waiter = self._waiters.pop(xid, None)
        if waiter is not None:
            waiter.succeed(ok)
        else:
            self._results[xid] = ok

    def _await_result(self, xid):
        if xid in self._results:
            event = self.sim.event(name="mocc-result")
            event.succeed(self._results.pop(xid))
            return event
        event = self.sim.event(name="mocc-result")
        self._waiters[xid] = event
        return event

    def _expects_validation(self, participant):
        """Will the destination ever ack this transaction?

        A transaction whose PREPARE record was already consumed by the send
        process *before* the sync barrier was set belongs to TS_unsync
        (§3.4): no validation task exists for it and its changes ship on its
        commit record; waiting would deadlock the mode change.
        """
        if self.propagation is None:
            return True
        xid = participant.xid
        if xid in self.propagation.validation_started or xid in self._results:
            return True
        if (
            participant.prepare_lsn is not None
            and participant.prepare_lsn < self.propagation.reader.next_lsn
        ):
            return False
        return True

    # ------------------------------------------------------------------
    # Commit hook (runs inside the source node's local prepare)
    # ------------------------------------------------------------------
    def after_prepare(self, txn, participant):
        if not self.active or txn.is_shadow:
            return
        if not (participant.wrote_shards & self.shard_set):
            return
        if not self._expects_validation(participant):
            return  # TS_unsync: prepared before the barrier, ships at commit
        wait_start = self.sim.now
        ok = yield self._await_result(participant.xid)
        self.stats.sync_waits += 1
        self.stats.sync_wait_total += self.sim.now - wait_start
        if not ok:
            raise SerializationFailure(
                "MOCC validation: WW-conflict with a destination transaction",
                txn_id=txn.tid,
            )
