"""Streaming snapshot copy (§3.2).

Remus leverages MVCC to create a transactionally consistent snapshot of the
migrating shard: a scan retrieves the versions committed before the snapshot
timestamp and streams them to the destination, where they are installed with
the *reserved minimal commit timestamp* so they are visible to any
destination transaction that starts after the snapshot. The scan pins the
vacuum horizon at the snapshot timestamp — under heavy updates to few keys
this is what lets version chains grow (the paper's Figure 10 effect).

Fast path (``fastpath.migration_scan``)
---------------------------------------
The indexed scan walks the heap's incrementally maintained sorted key index
(no per-copy, per-retry O(n log n) sort), decides visibility inline through
terminal CLOG verdicts (:meth:`~repro.storage.heap.HeapTable.
scan_visible_fast`) and charges the per-tuple scan CPU in runs instead of
one event per tuple. The simulated timeline is byte-identical to the
per-tuple path:

- a charge run is capped so its stale-check window stays within one WAL
  flush. A writer that touches a chain *after* a run starts cannot reach
  PREPARED — the only state that makes the per-tuple path block — inside
  that window, because ``local_prepare`` flushes the prepare record
  (>= ``wal_flush``) before the CLOG shows PREPARED. Every inline verdict
  therefore equals the verdict the per-tuple path reaches at its own,
  slightly later instant;
- a non-terminal writer (IN_PROGRESS or PREPARED) flushes the deferred
  charges first and re-checks through the blocking path at exactly the
  per-tuple instant, so prepare-waits start on the legacy schedule;
- deferred charges are always flushed before a batch ships, so every RPC
  and destination install lands at the legacy instant.
"""

from repro import fastpath
from repro.profiling.counters import COUNTERS
from repro.sim.errors import Interrupt
from repro.sim.network import MIGRATION_CLASS
from repro.storage.snapshot import UNDECIDED
from repro.txn.errors import RpcAbort


def copy_shard_snapshot(cluster, shard_id, source, dest, snapshot_ts, stats):
    """Generator: stream one shard's snapshot from ``source`` to ``dest``.

    Returns the number of tuples copied.
    """
    config = cluster.config
    source_node = cluster.nodes[source]
    dest_node = cluster.nodes[dest]
    heap = source_node.heap_for(shard_id)
    if shard_id.table in cluster.tables:
        tuple_size = cluster.tables[shard_id.table].tuple_size
    else:
        tuple_size = config.default_tuple_size
    costs = config.costs
    # Shared epoch-tagged snapshot from the source's manager: carries the
    # active-xid set for introspection and is reused by concurrent readers
    # at the same timestamp instead of allocating per scan.
    snapshot = source_node.manager.read_snapshot(snapshot_ts)
    scan_cost = costs.snapshot_scan_per_tuple
    # Charge-run cap for the fast path: the run's stale-check window must
    # stay within one WAL flush (see module docstring). Degenerate cost
    # models (free scans or instant flushes) take the per-tuple path.
    charge_run = int(costs.wal_flush / scan_cost) if scan_cost > 0 else 0

    copied = 0
    batch = []
    if fastpath.migration_scan and charge_run >= 1:
        cpu = source_node.cpu
        pending = 0  # scanned tuples whose CPU charge is deferred
        for key in list(heap.sorted_keys()):
            pending += 1
            version = heap.scan_visible_fast(key, snapshot)
            if version is UNDECIDED:
                # Flush the deferred charges so the blocking re-check (and
                # any prepare-wait) happens at the per-tuple instant.
                yield from _flush_scan_charges(cpu, scan_cost, pending)
                pending = 0
                version, _traversed = yield from heap.visible_version(key, snapshot)
            if version is not None:
                batch.append((key, version.value))
                if len(batch) >= config.snapshot_batch_tuples:
                    if pending:
                        yield from _flush_scan_charges(cpu, scan_cost, pending)
                        pending = 0
                    copied += yield from _ship_batch(
                        cluster, batch, source, dest_node, shard_id, tuple_size, costs
                    )
                    batch = []
            if pending >= charge_run:
                yield from _flush_scan_charges(cpu, scan_cost, pending)
                pending = 0
        if pending:
            yield from _flush_scan_charges(cpu, scan_cost, pending)
    else:
        for key in sorted(heap.keys()):
            # Charge the scan CPU on the source; the visibility check may
            # prepare-wait on in-doubt writers, keeping the snapshot
            # consistent.
            yield source_node.cpu.use(scan_cost)
            version, _traversed = yield from heap.visible_version(key, snapshot)
            if version is None:
                continue
            batch.append((key, version.value))
            if len(batch) >= config.snapshot_batch_tuples:
                copied += yield from _ship_batch(
                    cluster, batch, source, dest_node, shard_id, tuple_size, costs
                )
                batch = []
    if batch:
        copied += yield from _ship_batch(
            cluster, batch, source, dest_node, shard_id, tuple_size, costs
        )
    stats.tuples_copied += copied
    stats.bytes_copied += copied * tuple_size
    return copied


def _flush_scan_charges(cpu, scan_cost, pending):
    """Generator: pay ``pending`` deferred per-tuple charges.

    One coalesced slot occupation when a slot is free; otherwise the
    sequential per-tuple charges, which enter the CPU queue exactly as the
    legacy path's would.
    """
    done = cpu.use_run(scan_cost, pending)
    if done is None:
        for _ in range(pending):
            yield cpu.use(scan_cost)
    else:
        yield done
    COUNTERS.migration_scan_batches += 1


def _ship_batch(cluster, batch, source, dest_node, shard_id, tuple_size, costs):
    # Bounded reliable send: a lossy or partitioned link must fail the copy
    # (RpcAbort -> supervisor crash recovery), never wedge it forever.
    yield from cluster.rpc_send(
        source,
        dest_node.node_id,
        len(batch) * tuple_size,
        traffic_class=MIGRATION_CLASS,
    )
    yield dest_node.cpu.use(costs.snapshot_scan_per_tuple * len(batch))
    dest_node.bulk_install(shard_id, batch)
    return len(batch)


def copy_group_snapshot(cluster, shard_ids, source, dest, snapshot_ts, stats, task_sink=None):
    """Generator: copy several (collocated) shards in parallel (§3.8).

    ``task_sink`` (a list) receives the spawned copy processes so that crash
    injection can interrupt them.
    """
    from repro.sim.events import AllOf

    def guarded(shard_id):
        # Crash injection interrupts copy tasks; that is a modeled teardown,
        # not a programming error, so finish cleanly with a zero count. An
        # exhausted RPC budget (unreachable destination) is returned as a
        # value and re-raised by the parent, so the *migration* fails while
        # the worker task itself finishes cleanly.
        try:
            copied = yield from copy_shard_snapshot(
                cluster, shard_id, source, dest, snapshot_ts, stats
            )
        except Interrupt:
            return 0
        except RpcAbort as exc:
            return exc
        return copied

    tasks = [
        cluster.spawn(guarded(shard_id), name="snapcopy:{}".format(shard_id))
        for shard_id in shard_ids
    ]
    if task_sink is not None:
        task_sink.extend(tasks)
    counts = yield AllOf(tasks)
    # Several parallel copies may fail at once; re-raise deterministically —
    # the abort of the lowest-numbered wounded shard — rather than whichever
    # failure the task iteration order happens to hit first.
    aborts = [
        (shard_id, count)
        for shard_id, count in zip(shard_ids, counts)
        if isinstance(count, RpcAbort)
    ]
    if aborts:
        raise min(aborts, key=lambda pair: pair[0])[1]
    return sum(counts)
