"""Streaming snapshot copy (§3.2).

Remus leverages MVCC to create a transactionally consistent snapshot of the
migrating shard: a scan retrieves the versions committed before the snapshot
timestamp and streams them to the destination, where they are installed with
the *reserved minimal commit timestamp* so they are visible to any
destination transaction that starts after the snapshot. The scan pins the
vacuum horizon at the snapshot timestamp — under heavy updates to few keys
this is what lets version chains grow (the paper's Figure 10 effect).
"""

from repro.sim.errors import Interrupt
from repro.txn.errors import RpcAbort

_BATCH_TUPLES = 256


def copy_shard_snapshot(cluster, shard_id, source, dest, snapshot_ts, stats):
    """Generator: stream one shard's snapshot from ``source`` to ``dest``.

    Returns the number of tuples copied.
    """
    source_node = cluster.nodes[source]
    dest_node = cluster.nodes[dest]
    heap = source_node.heap_for(shard_id)
    tuple_size = cluster.tables[shard_id.table].tuple_size if shard_id.table in cluster.tables else 64
    costs = cluster.config.costs
    # Shared epoch-tagged snapshot from the source's manager: carries the
    # active-xid set for introspection and is reused by concurrent readers
    # at the same timestamp instead of allocating per scan.
    snapshot = source_node.manager.read_snapshot(snapshot_ts)

    copied = 0
    keys = sorted(heap.keys())
    batch = []
    for key in keys:
        # Charge the scan CPU on the source; the visibility check may
        # prepare-wait on in-doubt writers, keeping the snapshot consistent.
        yield source_node.cpu.use(costs.snapshot_scan_per_tuple)
        version, _traversed = yield from heap.visible_version(key, snapshot)
        if version is None:
            continue
        batch.append((key, version.value))
        if len(batch) >= _BATCH_TUPLES:
            copied += yield from _ship_batch(
                cluster, batch, source, dest_node, shard_id, tuple_size, costs
            )
            batch = []
    if batch:
        copied += yield from _ship_batch(
            cluster, batch, source, dest_node, shard_id, tuple_size, costs
        )
    stats.tuples_copied += copied
    stats.bytes_copied += copied * tuple_size
    return copied


def _ship_batch(cluster, batch, source, dest_node, shard_id, tuple_size, costs):
    # Bounded reliable send: a lossy or partitioned link must fail the copy
    # (RpcAbort -> supervisor crash recovery), never wedge it forever.
    yield from cluster.rpc_send(source, dest_node.node_id, len(batch) * tuple_size)
    yield dest_node.cpu.use(costs.snapshot_scan_per_tuple * len(batch))
    dest_node.bulk_install(shard_id, batch)
    return len(batch)


def copy_group_snapshot(cluster, shard_ids, source, dest, snapshot_ts, stats, task_sink=None):
    """Generator: copy several (collocated) shards in parallel (§3.8).

    ``task_sink`` (a list) receives the spawned copy processes so that crash
    injection can interrupt them.
    """
    from repro.sim.events import AllOf

    def guarded(shard_id):
        # Crash injection interrupts copy tasks; that is a modeled teardown,
        # not a programming error, so finish cleanly with a zero count. An
        # exhausted RPC budget (unreachable destination) is returned as a
        # value and re-raised by the parent, so the *migration* fails while
        # the worker task itself finishes cleanly.
        try:
            copied = yield from copy_shard_snapshot(
                cluster, shard_id, source, dest, snapshot_ts, stats
            )
        except Interrupt:
            return 0
        except RpcAbort as exc:
            return exc
        return copied

    tasks = [
        cluster.spawn(guarded(shard_id), name="snapcopy:{}".format(shard_id))
        for shard_id in shard_ids
    ]
    if task_sink is not None:
        task_sink.extend(tasks)
    counts = yield AllOf(tasks)
    for count in counts:
        if isinstance(count, RpcAbort):
            raise count
    return sum(counts)
