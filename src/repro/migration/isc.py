"""Shared iterative-state-copying (ISC) phases (§2.3.3).

The paper implements lock-and-abort and wait-and-remaster with the *same*
snapshot copying, update propagation and parallel apply protocols as Remus
(§4.2); they differ only in how ownership is transferred. This mixin holds
the two shared phases.
"""

from repro.migration.base import BaseMigration
from repro.migration.propagation import Propagation
from repro.migration.snapshot_copy import copy_group_snapshot

CATCHUP_POLL = 0.02  # seconds between catch-up checks


class IscMigration(BaseMigration):
    """Base for push migrations: snapshot copy + async propagation."""

    def __init__(self, cluster, shard_ids, source, dest, **kwargs):
        super().__init__(cluster, shard_ids, source, dest, **kwargs)
        self.propagation = None
        self.snapshot_ts = None
        self.copy_tasks = []

    def phase_snapshot_copy(self):
        stats = self.stats
        stats.phase_start(self.sim, "snapshot_copy")
        snapshot_ts = yield from self.cluster.oracle.start_timestamp(self.source)
        self.snapshot_ts = snapshot_ts
        # Pin vacuum so the snapshot's versions survive the scan (§4.8).
        self.cluster.add_vacuum_hold(snapshot_ts)
        # The propagation stream must cover every change of transactions that
        # are still active at the snapshot; start it before scanning.
        from_lsn = self.source_node.manager.oldest_active_change_lsn()
        self.propagation = Propagation(
            self.cluster,
            self.shard_ids,
            self.source,
            self.dest,
            snapshot_ts,
            from_lsn,
            stats,
        )
        self.propagation.hold_applies()
        self.propagation.start()
        try:
            yield from copy_group_snapshot(
                self.cluster,
                self.shard_ids,
                self.source,
                self.dest,
                snapshot_ts,
                stats,
                task_sink=self.copy_tasks,
            )
        finally:
            self.cluster.remove_vacuum_hold(snapshot_ts)
        # Released only on success: if the copy was interrupted (crash
        # injection) the base rows are partial and replay must stay parked
        # until crash teardown kills the tasks.
        self.propagation.release_applies()
        stats.phase_end(self.sim, "snapshot_copy")

    def phase_async_propagation(self):
        """Catch-up: wait until un-applied changes drop below the threshold."""
        self.stats.phase_start(self.sim, "async_propagation")
        while self.propagation.lag() > self.catchup_threshold:
            yield CATCHUP_POLL
        self.stats.phase_end(self.sim, "async_propagation")

    def teardown_propagation(self):
        """Generator: let replay drain, then stop the send process."""
        yield self.propagation.wait_applied_through(self.source_node.wal.tail_lsn)
        yield from self.propagation.drain()
        self.propagation.stop()
