"""Shared iterative-state-copying (ISC) phases (§2.3.3).

The paper implements lock-and-abort and wait-and-remaster with the *same*
snapshot copying, update propagation and parallel apply protocols as Remus
(§4.2); they differ only in how ownership is transferred. This mixin holds
the two shared phases.
"""

from repro.migration.base import BaseMigration
from repro.migration.propagation import Propagation
from repro.migration.snapshot_copy import copy_group_snapshot

CATCHUP_POLL = 0.02  # seconds between catch-up checks


class IscMigration(BaseMigration):
    """Base for push migrations: snapshot copy + async propagation."""

    def __init__(self, cluster, shard_ids, source, dest, **kwargs):
        super().__init__(cluster, shard_ids, source, dest, **kwargs)
        self.propagation = None
        self.snapshot_ts = None
        self.copy_tasks = []

    # ------------------------------------------------------------------
    # Prepositioned destinations (STAR-style asymmetric availability)
    # ------------------------------------------------------------------
    def _split_prepositioned(self):
        """Partition the migrating shards into (prepositioned, rest).

        A shard is *prepositioned* when the destination already hosts a
        member of its replication group: the group feed is the only legal
        write path into that heap, so snapshot copy and WAL propagation
        MUST NOT touch it — a stale copied row prepended over a newer
        replicated version would shadow committed updates (lost updates).
        """
        replication = self.cluster.replication
        pre, rest = [], []
        for shard_id in self.shard_ids:
            group = replication.group_for(shard_id)
            if group is not None and group.replica_on(self.dest) is not None:
                pre.append(shard_id)
            else:
                rest.append(shard_id)
        return pre, rest

    def remaster_prepositioned(self):
        """Generator: hand over every prepositioned shard with a pure
        remastering handshake (no copy, no propagation) and narrow the
        migration to the remaining shards. Returns the remaining ids."""
        pre, rest = self._split_prepositioned()
        if pre:
            yield from self._remaster_only(pre)
            self.shard_ids = rest
        return rest

    def _remaster_only(self, shard_ids):
        """Generator: transfer ownership of ``shard_ids`` to a destination
        that already replicates them: close the routing gate, wait for
        on-the-fly transactions, drain the group feed so the destination
        holds the full committed prefix, flip the shard map, and rehome the
        groups under the destination's leadership."""
        all_ids = self.shard_ids
        self.shard_ids = list(shard_ids)
        stats = self.stats
        stats.phase_start(self.sim, "ownership_transfer")
        self.cluster.close_routing_gate()
        try:
            ongoing = [
                txn.tid
                for txn in self.cluster.snapshot_active_txns()
                if not txn.is_shadow
            ]
            stats.sync_waits += len(ongoing)
            wait_start = self.sim.now
            yield self.cluster.wait_for_txns(ongoing)
            stats.sync_wait_total += self.sim.now - wait_start
            # The group feed is the propagation pipeline here: drain it so
            # the destination replica holds every committed change.
            for shard_id in self.shard_ids:
                group = self.cluster.replication.group_for(shard_id)
                yield from group.drain()
            tm_cts = yield from self.update_shard_map()
            yield from self.broadcast_cache_refresh(tm_cts)
            yield from self.rehome_replicated_shards()
        finally:
            self.cluster.open_routing_gate()
            self.shard_ids = all_ids
        stats.phase_end(self.sim, "ownership_transfer")

    def phase_snapshot_copy(self):
        stats = self.stats
        stats.phase_start(self.sim, "snapshot_copy")
        snapshot_ts = yield from self.cluster.oracle.start_timestamp(self.source)
        self.snapshot_ts = snapshot_ts
        # Pin vacuum so the snapshot's versions survive the scan (§4.8).
        self.cluster.add_vacuum_hold(snapshot_ts)
        # The propagation stream must cover every change of transactions that
        # are still active at the snapshot; start it before scanning.
        from_lsn = self.source_node.manager.oldest_active_change_lsn()
        self.propagation = Propagation(
            self.cluster,
            self.shard_ids,
            self.source,
            self.dest,
            snapshot_ts,
            from_lsn,
            stats,
        )
        self.propagation.hold_applies()
        self.propagation.start()
        try:
            yield from copy_group_snapshot(
                self.cluster,
                self.shard_ids,
                self.source,
                self.dest,
                snapshot_ts,
                stats,
                task_sink=self.copy_tasks,
            )
        finally:
            self.cluster.remove_vacuum_hold(snapshot_ts)
        # Released only on success: if the copy was interrupted (crash
        # injection) the base rows are partial and replay must stay parked
        # until crash teardown kills the tasks.
        self.propagation.release_applies()
        stats.phase_end(self.sim, "snapshot_copy")

    def phase_async_propagation(self):
        """Catch-up: wait until un-applied changes drop below the threshold."""
        self.stats.phase_start(self.sim, "async_propagation")
        while self.propagation.lag() > self.catchup_threshold:
            yield CATCHUP_POLL
        self.stats.phase_end(self.sim, "async_propagation")

    def teardown_propagation(self):
        """Generator: let replay drain, then stop the send process."""
        yield self.propagation.wait_applied_through(self.source_node.wal.tail_lsn)
        yield from self.propagation.drain()
        self.propagation.stop()
