"""Remus: live migration with ordered diversion and MOCC (§3).

The four phases of Figure 2:

1. **Snapshot copying** — an MVCC snapshot of the migrating shards is
   streamed to the destination and installed with the reserved minimal
   commit timestamp (§3.2).
2. **Async update propagation** — the send process ships committed changes
   from the WAL; shadow transactions replay them on the destination with the
   same start/commit timestamps (§3.3). The phase ends when the destination
   has caught up (lag below a threshold).
3. **Propagation mode changing** — the *sync barrier* is set (a MOCC commit
   hook on the source manager): source transactions now wait at prepare for
   their changes to be validated and applied on the destination. The
   transactions already in commit progress form TS_unsync; once they finish,
   the WAL tail is recorded as LSN_unsync and the phase ends when everything
   up to it has been applied (§3.4).
4. **Dual execution** — coordinator caches are put in read-through state for
   the migrating shards, the distributed transaction T_m flips the shard map
   rows on every node under 2PC, and its commit timestamp becomes the
   diversion barrier: transactions with start_ts >= T_m.commitTS route to the
   destination, older ones finish on the source under MOCC (§3.5). The
   migration completes when the last pre-T_m transaction finishes; the
   source copy is then dropped.

No transaction is ever blocked, suspended or aborted by the protocol itself;
the only added cost is the validation wait of synchronized source
transactions, which the stats record for Table 3.
"""

from repro.migration.isc import IscMigration
from repro.migration.mocc import MoccCoordinator
from repro.txn.transaction import TxnState


class RemusMigration(IscMigration):
    name = "remus"

    def __init__(
        self,
        cluster,
        shard_ids,
        source,
        dest,
        use_cache_read_through=True,
        cache_refresh_delay=0.0,
        **kwargs,
    ):
        """``use_cache_read_through`` / ``cache_refresh_delay`` exist for the
        ablation that demonstrates the stale-cache routing race of §3.5.1:
        disabling read-through while delaying cache invalidation lets a
        post-T_m transaction be routed to the source by a stale entry."""
        super().__init__(cluster, shard_ids, source, dest, **kwargs)
        self.mocc = None
        self.tm_commit_ts = None
        self.use_cache_read_through = use_cache_read_through
        self.cache_refresh_delay = cache_refresh_delay

    def run(self):
        # Shards the destination already replicates are handed over with a
        # pure remastering handshake (copy/propagation would double-write
        # the replica heap); the full protocol runs for the rest.
        rest = yield from self.remaster_prepositioned()
        if not rest:
            return
        yield from self.phase_snapshot_copy()
        yield from self.phase_async_propagation()
        yield from self._phase_mode_change()
        yield from self._phase_dual_execution()
        yield from self._finish()

    # ------------------------------------------------------------------
    def _phase_mode_change(self):
        stats = self.stats
        stats.phase_start(self.sim, "mode_change")
        # Sync barrier: every source transaction entering commit from now on
        # validates through MOCC before it may commit.
        self.mocc = MoccCoordinator(
            self.cluster, self.shard_ids, stats, propagation=self.propagation
        )
        self.mocc.active = True
        self.propagation.enable_sync(self.mocc)
        self.source_node.manager.add_commit_hook(self.mocc)
        # TS_unsync: transactions already in commit progress bypass the hook;
        # wait for them, then everything up to the recorded WAL tail
        # (LSN_unsync) must be applied on the destination.
        ts_unsync = [
            txn.tid
            for txn in self.cluster.snapshot_active_txns()
            if not txn.is_shadow
            and txn.state in (TxnState.PREPARING, TxnState.COMMITTING)
        ]
        yield self.cluster.wait_for_txns(ts_unsync)
        lsn_unsync = self.source_node.wal.tail_lsn
        yield self.propagation.wait_applied_through(lsn_unsync)
        stats.phase_end(self.sim, "mode_change")

    def _phase_dual_execution(self):
        stats = self.stats
        stats.phase_start(self.sim, "dual_execution")
        # Guard the window between T_m's commit and cache invalidation:
        # migrating shards route through the shard map table (§3.5.1).
        # Bounded: pre-T_m nothing is committed yet, so an unreachable node
        # fails the migration for the supervisor to recover and retry.
        yield from self.cluster.rpc_broadcast(self.source, 64)
        if self.use_cache_read_through:
            self.cluster.set_cache_read_through(self.shard_ids)
        tm_cts = yield from self.update_shard_map()
        self.tm_commit_ts = tm_cts
        if self.cache_refresh_delay:
            yield self.cache_refresh_delay
        yield from self.broadcast_cache_refresh(tm_cts)
        self.cluster.clear_cache_read_through(self.shard_ids)
        # Existing transactions (start_ts < T_m.commitTS) run to completion on
        # the source under MOCC; newly arriving ones are already diverted.
        while True:
            old = [
                txn.tid
                for txn in self.cluster.snapshot_active_txns()
                if not txn.is_shadow and txn.start_ts < tm_cts
            ]
            if not old:
                break
            yield self.cluster.wait_for_txns(old)
        stats.phase_end(self.sim, "dual_execution")

    def _finish(self):
        self.mocc.active = False
        self.source_node.manager.remove_commit_hook(self.mocc)
        yield from self.teardown_propagation()
        yield from self.rehome_replicated_shards()
        self.cleanup_source()
