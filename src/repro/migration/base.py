"""Migration framework: specs, statistics, the sequential plan runner."""

from repro.cluster.shardmap import RESERVED_MIN_TS, SHARDMAP_SHARD


class MigrationStats:
    """Per-migration bookkeeping reported by every approach."""

    def __init__(self):
        self.phase_times = {}  # phase name -> (start, end)
        self.tuples_copied = 0
        self.bytes_copied = 0
        self.records_propagated = 0
        self.records_applied = 0
        self.shadow_txns = 0
        self.ww_conflicts = 0  # MOCC validation conflicts during dual exec
        self.txns_aborted_by_migration = 0
        self.sync_waits = 0  # synchronized source transactions
        self.sync_wait_total = 0.0  # total added latency (Table 3 numerator)
        self.chunks_pulled = 0  # Squall
        self.tm_commit_ts = None
        # Supervisor bookkeeping (chaos runs): crash/recovery outcomes.
        self.crash_recoveries = 0  # crash_migration + recover_migration runs
        self.migration_retries = 0  # rolled-back batches retried
        self.batches_skipped = 0  # batches degraded after exhausted retries
        self.on_phase = None  # optional callback(name) at phase entry

    def phase_start(self, sim, name):
        self.phase_times[name] = (sim.now, None)
        if self.on_phase is not None:
            self.on_phase(name)

    def phase_end(self, sim, name):
        start, _ = self.phase_times.get(name, (sim.now, None))
        self.phase_times[name] = (start, sim.now)

    def phase_duration(self, name):
        start, end = self.phase_times.get(name, (None, None))
        if start is None or end is None:
            return 0.0
        return end - start

    @property
    def avg_sync_wait(self):
        if self.sync_waits == 0:
            return 0.0
        return self.sync_wait_total / self.sync_waits

    def to_dict(self):
        """JSON-safe snapshot of the stats (used by experiment payloads)."""
        return {
            "phase_times": {
                name: [start, end] for name, (start, end) in self.phase_times.items()
            },
            "tuples_copied": self.tuples_copied,
            "bytes_copied": self.bytes_copied,
            "records_propagated": self.records_propagated,
            "records_applied": self.records_applied,
            "shadow_txns": self.shadow_txns,
            "ww_conflicts": self.ww_conflicts,
            "txns_aborted_by_migration": self.txns_aborted_by_migration,
            "sync_waits": self.sync_waits,
            "sync_wait_total": self.sync_wait_total,
            "avg_sync_wait": self.avg_sync_wait,
            "chunks_pulled": self.chunks_pulled,
            "tm_commit_ts": self.tm_commit_ts,
            "crash_recoveries": self.crash_recoveries,
            "migration_retries": self.migration_retries,
            "batches_skipped": self.batches_skipped,
        }

    def merge(self, other):
        """Accumulate another migration's stats (plan-level totals)."""
        self.tuples_copied += other.tuples_copied
        self.bytes_copied += other.bytes_copied
        self.records_propagated += other.records_propagated
        self.records_applied += other.records_applied
        self.shadow_txns += other.shadow_txns
        self.ww_conflicts += other.ww_conflicts
        self.txns_aborted_by_migration += other.txns_aborted_by_migration
        self.sync_waits += other.sync_waits
        self.sync_wait_total += other.sync_wait_total
        self.chunks_pulled += other.chunks_pulled
        self.crash_recoveries += other.crash_recoveries
        self.migration_retries += other.migration_retries
        self.batches_skipped += other.batches_skipped


class BaseMigration:
    """Common state for one migration of a shard group.

    ``shard_ids`` may contain several shards (collocated migration, §3.8, or
    arbitrary multi-shard groups); all move from ``source`` to ``dest``
    within one protocol run.
    """

    name = "base"

    def __init__(self, cluster, shard_ids, source, dest, catchup_threshold=64):
        self.cluster = cluster
        self.sim = cluster.sim
        self.shard_ids = list(shard_ids)
        self.source = source
        self.dest = dest
        self.catchup_threshold = catchup_threshold
        self.stats = MigrationStats()
        self._tm_txn = None  # in-flight T_m handle for 2PC crash recovery
        # Destination WAL position when the migration began: a replicated
        # shard's post-handover pump starts here, covering every record the
        # migration lands on the destination without rescanning history.
        self._dest_wal_floor = cluster.nodes[dest].wal.tail_lsn
        for shard_id in self.shard_ids:
            if cluster.shard_owner(shard_id) != source:
                raise ValueError(
                    "shard {!r} not on source {!r}".format(shard_id, source)
                )

    @property
    def source_node(self):
        return self.cluster.nodes[self.source]

    @property
    def dest_node(self):
        return self.cluster.nodes[self.dest]

    def run(self):
        """Generator: execute the whole migration protocol."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def update_shard_map(self, label="tm"):
        """Generator: run T_m — the distributed transaction that updates the
        shard map row for every migrating shard on every node, committed with
        2PC (§3.5.1). Returns T_m's commit timestamp.

        The transaction handle is stashed on the migration (``_tm_txn``) so
        that crash recovery (§3.7) can resolve an in-doubt T_m with standard
        2PC recovery if the migration machinery dies mid-flight.
        """
        session = self.cluster.session(self.source)
        txn = yield from session.begin(label="__{}__".format(label), internal=True)
        self._tm_txn = txn
        for node_id in self.cluster.node_ids():
            node = self.cluster.nodes[node_id]
            if node_id != self.source:
                yield from self.cluster.rpc_send(self.source, node_id, 256)
            for shard_id in self.shard_ids:
                yield from node.manager.update(
                    txn, SHARDMAP_SHARD, shard_id, self.dest, size=64
                )
        commit_ts = yield from session.commit(txn)
        for shard_id in self.shard_ids:
            self.cluster.record_ownership(shard_id, self.dest)
        self.stats.tm_commit_ts = commit_ts
        return commit_ts

    def broadcast_cache_refresh(self, commit_ts):
        """Generator: push the new owner into every coordinator cache.

        Persistent delivery: T_m has committed, so the new ownership is a
        decided fact — like a 2PC decision it is retransmitted until every
        node hears it rather than ever being given up."""
        yield from self.cluster.rpc_broadcast(self.source, 128, persistent=True)
        for shard_id in self.shard_ids:
            self.cluster.refresh_caches(shard_id, self.dest, commit_ts)

    def cleanup_source(self):
        """Drop the migrated shards' data on the source node.

        Replicated shards are kept: after the epoch-bumped handover the old
        leader stays in the replication group as a follower, so its copy is
        live state, not junk."""
        for shard_id in self.shard_ids:
            if self.cluster.replication.is_replicated(shard_id):
                continue
            self.source_node.drop_shard(shard_id)

    def rehome_replicated_shards(self):
        """Generator: epoch-bumped leadership handover to the destination
        for every migrated shard that has a replication group (the atomic
        group reconfiguration closing a replicated-shard migration)."""
        for shard_id in self.shard_ids:
            group = self.cluster.replication.group_for(shard_id)
            if group is not None:
                yield from group.rehome(self.dest, from_lsn=self._dest_wal_floor)

    def cleanup_dest(self):
        """Drop partially migrated data on the destination (failed runs)."""
        for shard_id in self.shard_ids:
            self.dest_node.drop_shard(shard_id)

    def active_writers_of_shards(self):
        """Active transactions that have written any migrating shard."""
        shard_set = set(self.shard_ids)
        writers = []
        for txn in self.cluster.snapshot_active_txns():
            if txn.is_shadow:
                continue
            if any(shard_set & p.wrote_shards for p in txn.participants.values()):
                writers.append(txn)
        return writers


class MigrationPlan:
    """A sequence of migration batches executed back to back, as in §4.4
    ("two shards are migrated together each time, resulting in 30
    consecutive migrations")."""

    def __init__(self, approach_cls, batches, pause=0.0, **kwargs):
        """``batches`` is a list of (shard_ids, source, dest)."""
        self.approach_cls = approach_cls
        self.batches = batches
        self.pause = pause
        self.kwargs = kwargs
        self.stats = MigrationStats()
        self.migrations = []


def run_plan(cluster, plan):
    """Generator: run every batch in ``plan`` sequentially.

    Marks ``migration_start`` / ``migration_end`` (whole plan) and
    ``batch_start`` / ``batch_end`` (each batch) in the cluster metrics, as
    the vertical lines in the paper's figures do.
    """
    cluster.metrics.mark("migration_start")
    for shard_ids, source, dest in plan.batches:
        cluster.metrics.mark("batch_start")
        migration = plan.approach_cls(cluster, shard_ids, source, dest, **plan.kwargs)
        plan.migrations.append(migration)
        yield from migration.run()
        plan.stats.merge(migration.stats)
        cluster.metrics.mark("batch_end")
        if plan.pause:
            yield plan.pause
    cluster.metrics.mark("migration_end")
    return plan.stats


class Migration:
    """The one front door to every migration approach.

    Historically each family had its own entry point (``IscMigration``
    subclasses, ``SquallMigration``, ``StopAndCopyMigration``) and callers
    wired classes, plans and ``run_plan`` together by hand. This facade
    unifies them: resolve an approach by name or class, build a plan, and
    launch it — ``experiments/common.py::approach_class`` and every
    experiment harness delegate here.
    """

    @staticmethod
    def resolve(approach):
        """Approach name (or migration class, passed through) -> class."""
        if isinstance(approach, type) and issubclass(approach, BaseMigration):
            return approach
        from repro.migration import APPROACHES

        try:
            return APPROACHES[approach]
        except KeyError:
            raise ValueError(
                "unknown approach {!r}; pick one of {}".format(
                    approach, sorted(APPROACHES)
                )
            ) from None

    @staticmethod
    def plan(approach, batches, pause=0.0, **kwargs):
        """Build a :class:`MigrationPlan` for an approach name or class."""
        return MigrationPlan(Migration.resolve(approach), batches, pause=pause, **kwargs)

    @staticmethod
    def launch(cluster, plan):
        """Generator: run ``plan`` on ``cluster``; returns the plan's
        :class:`MigrationStats`. Spawn it to run in the background::

            plan = Migration.plan("remus", batches)
            proc = cluster.spawn(Migration.launch(cluster, plan), name="consolidation")
        """
        return run_plan(cluster, plan)


def consolidation_batches(cluster, source, table=None, group_size=2):
    """Batches that empty ``source``, spreading shards over the other nodes
    round-robin (the cluster consolidation scenario, §4.4)."""
    shards = cluster.shards_on_node(source, table=table)
    targets = [n for n in cluster.node_ids() if n != source]
    batches = []
    for i in range(0, len(shards), group_size):
        group = shards[i : i + group_size]
        dest = targets[(i // group_size) % len(targets)]
        batches.append((group, source, dest))
    return batches


def reserved_min_ts():
    return RESERVED_MIN_TS
