"""Wait-and-remaster ownership transfer (§2.3.3; DynaMast [1]).

After the shared ISC phases, the transfer phase suspends routing of newly
arrived transactions (the cluster routing gate), waits for **all** ongoing
transactions to complete — the write set of an interactive transaction is
unknown up front, so every on-the-fly transaction must be waited for, even
ones that never touch the migrating data — replays the final updates, flips
the shard map (remastering) and reopens the gate.

No transaction is ever aborted, but a single long-running transaction (a
batch ingest or an analytical query) keeps the gate closed for its entire
remaining lifetime, producing the zero-throughput troughs of Figures 6b/7b.
"""

from repro.migration.isc import IscMigration


class WaitAndRemasterMigration(IscMigration):
    name = "wait_and_remaster"

    def run(self):
        # STAR-style asymmetric path (shared ISC machinery): shards whose
        # replication group already has a member on the destination are
        # handed over with a pure remastering handshake — no copy, no
        # propagation. Only the rest pays for the full transfer.
        rest = yield from self.remaster_prepositioned()
        if not rest:
            return
        yield from self.phase_snapshot_copy()
        yield from self.phase_async_propagation()
        yield from self._phase_ownership_transfer()
        yield from self._finish()

    def _phase_ownership_transfer(self):
        stats = self.stats
        stats.phase_start(self.sim, "ownership_transfer")
        self.cluster.close_routing_gate()
        try:
            # Wait for every on-the-fly transaction (unknown write sets).
            ongoing = [
                txn.tid
                for txn in self.cluster.snapshot_active_txns()
                if not txn.is_shadow
            ]
            stats.sync_waits += len(ongoing)
            wait_start = self.sim.now
            yield self.cluster.wait_for_txns(ongoing)
            stats.sync_wait_total += self.sim.now - wait_start
            # Nothing is running: replay the final updates, then remaster.
            yield self.propagation.wait_applied_through(self.source_node.wal.tail_lsn)
            yield from self.propagation.drain()
            tm_cts = yield from self.update_shard_map()
            yield from self.broadcast_cache_refresh(tm_cts)
        finally:
            self.cluster.open_routing_gate()
        stats.phase_end(self.sim, "ownership_transfer")

    def _finish(self):
        yield from self.teardown_propagation()
        yield from self.rehome_replicated_shards()
        self.cleanup_source()
