"""Self-healing migration supervision.

:func:`~repro.migration.base.run_plan` assumes every migration runs to
completion. Under fault injection that is no longer true: the migration
machinery can crash (nemesis interrupt), wedge behind a partition, or fail a
T_m commit. The :class:`MigrationSupervisor` runs a plan batch by batch with
a watchdog per migration:

* a **crashed** migration (interrupted, or killed by an exception) is put
  through standard crash recovery (§3.7: ``crash_migration`` +
  ``recover_migration``);
* a **stalled** migration — no observable progress for ``stall_timeout``
  simulated seconds, or a propagation pipeline wounded by an RPC failure —
  is treated exactly like a crash;
* a migration recovered as ``rolled_back`` is **retried** with capped
  exponential backoff; after ``max_retries`` failed attempts the batch is
  skipped (recorded in the plan stats) and the plan degrades gracefully
  instead of wedging;
* a migration recovered as ``completed`` (T_m had committed) needs no retry —
  the destination already owns the shards.

The supervisor emits the same plan-level metric marks as ``run_plan``
(``migration_start``/``batch_start``/...) plus fault-handling marks
(``migration_crash``, ``migration_recovered:<outcome>``, ``batch_skipped``)
so recovery timelines can be read straight out of the metrics.
"""

from dataclasses import dataclass

from repro.migration.recovery import crash_migration, recover_migration


@dataclass
class SupervisorConfig:
    """Watchdog and retry knobs (simulated seconds)."""

    check_interval: float = 0.1  # watchdog poll period
    stall_timeout: float = 3.0  # no progress for this long => crash it
    grace: float = 0.4  # settle time between crash and recovery
    max_retries: int = 3  # rolled-back batch retry budget
    retry_backoff: float = 0.25  # base delay before retrying a batch
    retry_backoff_cap: float = 2.0


class MigrationSupervisor:
    """Run a :class:`~repro.migration.base.MigrationPlan` under supervision."""

    def __init__(self, cluster, plan, config=None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.plan = plan
        self.config = config or SupervisorConfig()
        self.current = None  # in-flight migration, for the nemesis
        self.current_proc = None
        self.events = []  # (time, description) recovery timeline
        self._phase_waiters = {}  # phase name -> [Event]

    # ------------------------------------------------------------------
    # Nemesis interface
    # ------------------------------------------------------------------
    def crash_current(self, reason="nemesis"):
        """Crash the in-flight migration process (fault injection hook).

        Returns True if a migration was running and got interrupted."""
        proc = self.current_proc
        if proc is None or proc.finished:
            return False
        proc.interrupt(reason)
        return True

    def current_phase(self):
        """Name of the started-but-unfinished phase of the in-flight
        migration, or None."""
        migration = self.current
        if migration is None:
            return None
        for name, (_start, end) in reversed(list(migration.stats.phase_times.items())):
            if end is None:
                return name
        return None

    def phase_event(self, phase):
        """Event that fires the next time any supervised migration enters
        ``phase`` — how the nemesis targets faults at named phases that are
        far shorter than any polling interval."""
        event = self.sim.event(name="phase:{}".format(phase))
        self._phase_waiters.setdefault(phase, []).append(event)
        return event

    def _on_phase(self, name):
        for event in self._phase_waiters.pop(name, []):
            event.succeed(name)

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------
    def run(self):
        """Generator: run every batch, recovering and retrying as needed."""
        self.cluster.metrics.mark("migration_start")
        for shard_ids, source, dest in self.plan.batches:
            yield from self._run_batch(shard_ids, source, dest)
            if self.plan.pause:
                yield self.plan.pause
        self.cluster.metrics.mark("migration_end")
        return self.plan.stats

    def _run_batch(self, shard_ids, source, dest):
        cfg = self.config
        attempt = 0
        while True:
            pending = [
                s for s in shard_ids if self.cluster.shard_owner(s) != dest
            ]
            if not pending:
                return  # a recovered attempt already completed the move
            # Re-resolve the source each attempt: a replication failover may
            # have remastered a shard onto a follower while the batch was
            # down, and retrying against the deposed leader would wedge.
            source_now = self.cluster.shard_owner(pending[0])
            group = [
                s for s in pending if self.cluster.shard_owner(s) == source_now
            ]
            self.cluster.metrics.mark("batch_start")
            migration = self.plan.approach_cls(
                self.cluster, group, source_now, dest, **self.plan.kwargs
            )
            migration.stats.on_phase = self._on_phase
            self.plan.migrations.append(migration)
            outcome = yield from self._supervise(migration)
            self.plan.stats.merge(migration.stats)
            self.cluster.metrics.mark("batch_end")
            if outcome in ("ok", "completed"):
                if all(
                    self.cluster.shard_owner(s) == dest for s in shard_ids
                ):
                    return
                continue  # shards scattered by an election: move the rest
            attempt += 1
            if attempt > cfg.max_retries:
                self.plan.stats.batches_skipped += 1
                self.cluster.metrics.mark("batch_skipped")
                self._note("batch {} -> {} skipped after {} attempts".format(
                    pending, dest, attempt))
                return
            self.plan.stats.migration_retries += 1
            yield min(cfg.retry_backoff_cap, cfg.retry_backoff * (2 ** (attempt - 1)))

    def _supervise(self, migration):
        """Generator: run one migration under the watchdog.

        Returns "ok" (clean finish), "completed" or "rolled_back" (the
        recovery outcome after a crash/stall)."""
        cfg = self.config
        proc = self.sim.spawn(
            self._guarded_run(migration), name="supervised-{}".format(migration.name)
        )
        self.current = migration
        self.current_proc = proc
        last_sig = self._progress_signature(migration)
        last_progress = self.sim.now
        try:
            while not proc.finished:
                yield cfg.check_interval
                if proc.finished:
                    break
                prop = getattr(migration, "propagation", None)
                if prop is not None and getattr(prop, "wounded", None) is not None:
                    proc.interrupt("propagation wounded: {}".format(prop.wounded))
                    break
                sig = self._progress_signature(migration)
                if sig != last_sig:
                    last_sig = sig
                    last_progress = self.sim.now
                elif self.sim.now - last_progress >= cfg.stall_timeout:
                    proc.interrupt(
                        "stalled for {:.2f}s".format(self.sim.now - last_progress)
                    )
                    break
            while not proc.finished:
                yield cfg.check_interval  # let a just-delivered interrupt land
        finally:
            self.current = None
            self.current_proc = None
        status, cause = proc.result()
        if status == "ok":
            return "ok"
        # Crash path: tear down, settle, recover (§3.7).
        self._note("migration crashed: {}".format(cause))
        self.cluster.metrics.mark("migration_crash")
        residual = crash_migration(migration)
        yield cfg.grace  # let straggler 2PC workers resolve before recovery
        outcome = yield from recover_migration(self.cluster, migration, residual)
        migration.stats.crash_recoveries += 1
        self.cluster.metrics.mark("migration_recovered:{}".format(outcome))
        self._note("recovered as {!r}".format(outcome))
        return outcome

    def _guarded_run(self, migration):
        """Generator wrapper so a crashed migration finishes its process
        normally (with an outcome value) instead of polluting
        ``sim.failed_processes``."""
        try:
            result = yield from migration.run()
        except BaseException as exc:  # noqa: BLE001 - includes Interrupt
            return ("crashed", exc)
        return ("ok", result)

    def _progress_signature(self, migration):
        """Snapshot of everything that should move while a migration is
        healthy; if two watchdog ticks see the same signature for too long,
        the migration is declared stalled.

        Only migration-driven counters belong here: the WAL reader's lsn and
        backlog grow whenever the *workload* writes, so including them would
        make a dead snapshot copy look alive as long as clients keep
        committing."""
        stats = migration.stats
        return (
            stats.tuples_copied,
            stats.records_propagated,
            stats.records_applied,
            stats.shadow_txns,
            stats.chunks_pulled,
            tuple(sorted(
                (name, end is not None)
                for name, (_start, end) in stats.phase_times.items()
            )),
        )

    def _note(self, description):
        self.events.append((self.sim.now, description))


def run_supervised_plan(cluster, plan, config=None):
    """Generator: drop-in, fault-tolerant replacement for
    :func:`~repro.migration.base.run_plan`."""
    supervisor = MigrationSupervisor(cluster, plan, config=config)
    result = yield from supervisor.run()
    return result
