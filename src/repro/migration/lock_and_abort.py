"""Lock-and-abort ownership transfer (§2.3.3; Citus [16], Huawei LibrA [8]).

After the shared ISC phases, the ownership transfer phase:

1. locks the migrating shards against writes (new writers block on a gate),
2. terminates active transactions that hold conflicting (write) access to
   the migrating shards,
3. replays the remaining final updates on the destination,
4. updates the shard map on every node with 2PC, and
5. aborts the blocked writers — they retry and are routed to the destination.

Long-running batch writers are the victims: a batch insert that has spent
minutes writing a migrating shard is killed and must start over, which is
what produces the 97 % abort ratio and collapsed ingest throughput of
Table 2.
"""

from repro.migration.isc import IscMigration
from repro.txn.errors import MigrationAbort
from repro.txn.transaction import TxnState


class _WriteGate:
    """Access hook: blocks writes during transfer, then aborts them."""

    def __init__(self, migration):
        self.migration = migration
        self.sim = migration.sim
        self.blocking = True  # True while transfer in progress
        self.gate = self.sim.event(name="lock-transfer-gate")
        self.blocked = 0

    def release(self):
        self.blocking = False
        self.gate.succeed(None)

    def before_access(self, txn, shard_id, owner, key, is_write):
        if txn.is_shadow or txn.label.startswith("__"):
            return
        if not is_write:
            return
        if self.blocking:
            self.blocked += 1
            start = self.sim.now
            yield self.gate
            self.migration.stats.sync_waits += 1
            self.migration.stats.sync_wait_total += self.sim.now - start
        if owner != self.migration.source:
            return  # routed to the destination already: proceed normally
        # Ownership has moved but this transaction was routed with a
        # pre-transfer snapshot: abort (the client retries on the destination).
        self.migration.stats.txns_aborted_by_migration += 1
        raise MigrationAbort(
            "shard {!r} migrated during lock-and-abort transfer".format(shard_id),
            txn_id=txn.tid,
        )


class LockAndAbortMigration(IscMigration):
    name = "lock_and_abort"

    def run(self):
        rest = yield from self.remaster_prepositioned()
        if not rest:
            return
        yield from self.phase_snapshot_copy()
        yield from self.phase_async_propagation()
        yield from self._phase_ownership_transfer()
        yield from self._finish()

    def _phase_ownership_transfer(self):
        stats = self.stats
        stats.phase_start(self.sim, "ownership_transfer")
        gate = _WriteGate(self)
        self._gate = gate
        for shard_id in self.shard_ids:
            self.cluster.add_access_hook(shard_id, gate)

        # Terminate transactions holding conflicting (write) access.
        victims = []
        for txn in self.active_writers_of_shards():
            if txn.state is TxnState.ACTIVE:
                exc = MigrationAbort(
                    "killed by lock-and-abort ownership transfer", txn_id=txn.tid
                )
                txn.doom(exc)
                if txn.process is not None:
                    txn.process.interrupt(exc)
                stats.txns_aborted_by_migration += 1
                victims.append(txn.tid)
            else:
                victims.append(txn.tid)  # already committing: wait it out
        yield self.cluster.wait_for_txns(victims)

        # Replay the remaining final updates before handing over ownership.
        yield self.propagation.wait_applied_through(self.source_node.wal.tail_lsn)

        yield from self.cluster.rpc_broadcast(self.source, 64)
        self.cluster.set_cache_read_through(self.shard_ids)
        tm_cts = yield from self.update_shard_map()
        yield from self.broadcast_cache_refresh(tm_cts)
        self.cluster.clear_cache_read_through(self.shard_ids)

        # Transfer done: blocked writers wake up and abort.
        gate.release()
        stats.phase_end(self.sim, "ownership_transfer")

    def _finish(self):
        # The migration is over once ownership moved; the residual cleanup —
        # waiting out old-snapshot readers of the source copy, tearing down
        # propagation, dropping the data — runs detached so consecutive
        # migrations proceed back to back (which is why a long batch
        # transaction keeps dying on every transfer: the next one arrives
        # before the batch can finish, §4.4.1).
        self.sim.spawn(self._deferred_cleanup(), name="lock-cleanup")
        return
        yield  # pragma: no cover - keeps this a generator like its peers

    def _deferred_cleanup(self):
        tm_cts = self.stats.tm_commit_ts
        while True:
            old = [
                txn.tid
                for txn in self.cluster.snapshot_active_txns()
                if not txn.is_shadow and txn.start_ts < tm_cts
            ]
            if not old:
                break
            yield self.cluster.wait_for_txns(old)
        for shard_id in self.shard_ids:
            self.cluster.remove_access_hook(shard_id, self._gate)
        yield from self.teardown_propagation()
        self.cleanup_source()
