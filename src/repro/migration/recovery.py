"""Crash recovery of in-flight migrations (§3.7).

A failure during a migration leaves residual state: a possibly-in-doubt T_m,
prepared shadow transactions on the destination, source transactions blocked
in their validation stage, and partially copied data. Recovery proceeds as
the paper describes:

1. Source transactions waiting for a validation outcome are terminated.
2. T_m is resolved with ordinary 2PC recovery: committed iff it entered its
   second phase (here: a commit timestamp was assigned).
3. Each prepared shadow transaction takes the same action as its source
   transaction: commit with the source's commit timestamp, or roll back.
4. If T_m did not commit, no transaction was ever diverted: the partially
   migrated data on the destination is dropped and the migration can be
   initiated again. If T_m committed, the destination owns the shards and
   the migration is *continued*: a repair pass copies whatever committed
   data is still missing, then the source copy is dropped.
"""

from repro import fastpath
from repro.storage.clog import TxnStatus
from repro.txn.errors import MigrationAbort
from repro.txn.transaction import TxnState


def crash_migration(migration):
    """Simulate a crash of the migration machinery mid-flight.

    Stops the send process, removes the sync barrier, and terminates source
    transactions blocked in their validation stage. Returns the residual
    prepared shadows for recovery to resolve.
    """
    propagation = getattr(migration, "propagation", None)
    if propagation is not None:
        propagation.stop(kill_tasks=True)
    for task in getattr(migration, "copy_tasks", []):
        if not task.finished:
            task.interrupt("crash")
    mocc = getattr(migration, "mocc", None)
    residual = {}
    if mocc is not None:
        mocc.active = False
        migration.source_node.manager.remove_commit_hook(mocc)
        # Terminate validation-stage waiters (§3.7).
        for xid, waiter in list(mocc._waiters.items()):
            del mocc._waiters[xid]
            waiter.fail(MigrationAbort("terminated by crash during validation"))
    if propagation is not None:
        residual = dict(propagation._validated)
        propagation._validated.clear()
    return residual


def _resolve_tm(cluster, migration, tm_txn, tm_committed):
    """Generator: drive an in-doubt T_m to its 2PC outcome.

    The migration process owning T_m died mid-commit; its spawned per-node
    prepare/commit workers may still be in flight. Participant resolution is
    idempotent (redelivered 2PC decisions are no-ops), so recovery simply
    applies the decided outcome everywhere and retires the handle.
    """
    for participant in list(tm_txn.participants.values()):
        node = cluster.nodes[participant.node_id]
        if participant.node_id != tm_txn.coordinator_node:
            yield from cluster.rpc_send(
                tm_txn.coordinator_node, participant.node_id, 64, persistent=True
            )
        if tm_committed:
            yield from node.manager.local_commit(tm_txn, tm_txn.commit_ts)
        else:
            yield from node.manager.local_abort(tm_txn)
    tm_txn.state = TxnState.COMMITTED if tm_committed else TxnState.ABORTED
    cluster.finish_txn(tm_txn, committed=tm_committed)


def recover_migration(cluster, migration, residual_shadows=None):
    """Generator: bring the cluster back to a consistent state (§3.7).

    Returns "rolled_back" when T_m had not committed (the migration may be
    retried from scratch) or "completed" when T_m had committed and the
    migration was driven to completion.
    """
    residual_shadows = residual_shadows or {}
    dest_node = migration.dest_node
    source_node = migration.source_node

    # Step 1: resolve residual prepared shadows by their source's outcome.
    for source_xid, (shadow, _entry) in residual_shadows.items():
        participant = shadow.participant(dest_node.node_id)
        if participant is None:
            continue
        if dest_node.clog.status(participant.xid) is not TxnStatus.PREPARED:
            continue
        source_status = source_node.clog.status(source_xid)
        if source_status is TxnStatus.COMMITTED:
            commit_ts = source_node.clog.commit_ts(source_xid)
            yield from cluster.rpc_send(
                dest_node.node_id, source_node.node_id, 64, persistent=True
            )
            yield from dest_node.manager.local_commit(shadow, commit_ts)
        else:
            yield from dest_node.manager.local_abort(shadow)
        cluster.active_txns.pop(shadow.tid, None)

    # Step 2: resolve T_m (2PC recovery). T_m committed iff it entered its
    # second phase, i.e. a commit timestamp was assigned — the assignment may
    # have happened just before the crash, so the in-flight handle is
    # authoritative even when the migration never recorded tm_commit_ts.
    tm_txn = getattr(migration, "_tm_txn", None)
    tm_committed = migration.stats.tm_commit_ts is not None or (
        tm_txn is not None and tm_txn.commit_ts is not None
    )
    if tm_txn is not None and not tm_txn.finished:
        yield from _resolve_tm(cluster, migration, tm_txn, tm_committed)
    if tm_committed and migration.stats.tm_commit_ts is None:
        migration.stats.tm_commit_ts = tm_txn.commit_ts
    if not tm_committed:
        # No transaction was diverted; drop the partial destination copy —
        # unless the destination hosts a live replica of the shard, whose
        # data belongs to the replication group, not to this migration.
        for shard_id in migration.shard_ids:
            group = cluster.replication.group_for(shard_id)
            if group is not None and group.replica_on(migration.dest) is not None:
                continue
            migration.dest_node.drop_shard(shard_id)
        for shard_id in migration.shard_ids:
            # Restore routing to the authoritative owner. For a replicated
            # shard that is the group's *current* leader — an election may
            # have moved leadership while the migration was down, and
            # recovery must not stomp it back onto the deposed source.
            owner = cluster.replication.leader_of(shard_id) or migration.source
            if cluster.shard_owner(shard_id) != owner:
                cluster.record_ownership(shard_id, owner)
        cluster.clear_cache_read_through(migration.shard_ids)
        return "rolled_back"

    # Step 3: T_m committed — the destination owns the shards. Continue the
    # migration: repair-copy any committed rows that never made it across,
    # then retire the source copy.
    for shard_id in migration.shard_ids:
        cluster.record_ownership(shard_id, migration.dest)
    repair_ts = yield from cluster.oracle.start_timestamp(migration.source)
    snapshot = source_node.manager.read_snapshot(repair_ts)
    for shard_id in migration.shard_ids:
        source_heap = source_node.heap_for(shard_id)
        dest_heap = dest_node.heap_for(shard_id)
        missing = []
        if fastpath.migration_scan:
            # Crash-recovery retries repeat this scan; the maintained index
            # makes each retry O(n) instead of a fresh O(n log n) sort.
            repair_keys = list(source_heap.sorted_keys())
        else:
            repair_keys = sorted(source_heap.keys())
        for key in repair_keys:
            version, _n = yield from source_heap.visible_version(key, snapshot)
            if version is None:
                continue
            dest_version, _n2 = yield from dest_heap.visible_version(key, snapshot)
            if dest_version is None:
                missing.append((key, version.value))
        if missing:
            yield from cluster.rpc_send(
                migration.source, migration.dest, len(missing) * 64, persistent=True
            )
            dest_node.bulk_install(shard_id, missing)
        cluster.refresh_caches(shard_id, migration.dest, migration.stats.tm_commit_ts)
    cluster.clear_cache_read_through(migration.shard_ids)
    # Replicated shards: finish the epoch-bumped handover the crashed
    # migration never reached, so the group keeps replicating under the
    # destination's leadership.
    yield from migration.rehome_replicated_shards()
    migration.cleanup_source()
    return "completed"
