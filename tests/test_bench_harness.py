"""The benchmark harness: parallel determinism and the kernel microbench.

The load-bearing test here is the parallel-vs-serial identity: fanning the
same (scenario, approach, seed) cells across 4 worker processes must yield
canonical JSON payloads byte-identical to running them serially in-process.
Simulation results may depend only on the seed, never on worker scheduling.
"""

import pytest

from repro.bench.sweep import (
    SMOKE_OVERRIDES,
    canonical_json,
    default_cells,
    make_jobs,
    run_jobs,
    run_sweep,
)

#: A tiny two-cell, two-seed matrix that still crosses scenario boundaries.
_CELLS = [("hybrid_a", "remus"), ("high_contention", "remus")]
_SEEDS = [0, 1]


def _tiny_jobs():
    return make_jobs(_CELLS, _SEEDS, overrides_by_scenario=SMOKE_OVERRIDES)


def test_parallel_matches_serial_byte_for_byte():
    jobs = _tiny_jobs()
    serial = run_jobs(jobs, jobs_in_parallel=1)
    parallel = run_jobs(jobs, jobs_in_parallel=4)
    assert len(serial) == len(parallel) == len(jobs)
    for s, p in zip(serial, parallel):
        assert (s["scenario"], s["approach"], s["seed"]) == (
            p["scenario"], p["approach"], p["seed"],
        )
        assert canonical_json(s["payload"]) == canonical_json(p["payload"])


def test_run_sweep_verify_serial_and_aggregates():
    payload = run_sweep(
        _CELLS,
        seeds=_SEEDS,
        jobs_in_parallel=2,
        overrides_by_scenario=SMOKE_OVERRIDES,
        verify_serial=True,
    )
    assert payload["serial_identical"] is True
    assert set(payload["cells"]) == {"hybrid_a/remus", "high_contention/remus"}
    for cell in payload["cells"].values():
        assert cell["seeds"] == _SEEDS
        assert len(cell["runtime_sec"]["per_seed"]) == len(_SEEDS)
        stats = cell["metrics"]["downtime_longest"]
        assert stats["p5"] <= stats["mean"] <= stats["p95"]


def test_default_cells_respect_scenario_support():
    cells = default_cells()
    assert ("scale_out", "squall") not in cells
    assert ("scale_out", "remus") in cells
    assert ("high_contention", "stop_and_copy") in cells
    smoke = default_cells(smoke=True)
    # Smoke keeps one approach per scenario.
    assert len(smoke) == len({scenario for scenario, _ in smoke})


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": [1, 2]}) == canonical_json({"a": [1, 2], "b": 1})


def test_run_jobs_falls_back_to_serial_when_pool_cannot_start(monkeypatch):
    """Sandboxes without semaphores/fork must degrade, not crash.

    The fallback claims byte-identical aggregation — assert it: a sweep
    whose Pool constructor raises must produce the same cell bytes as a
    plain serial sweep.
    """
    import repro.bench.sweep as sweep_module

    serial = run_sweep(
        _CELLS, seeds=_SEEDS, jobs_in_parallel=1,
        overrides_by_scenario=SMOKE_OVERRIDES,
    )

    class _BrokenPool:
        def __init__(self, processes=None):
            raise OSError("no usable semaphores in this sandbox")

    monkeypatch.setattr(sweep_module.multiprocessing, "Pool", _BrokenPool)
    fallback = run_sweep(
        _CELLS, seeds=_SEEDS, jobs_in_parallel=4,
        overrides_by_scenario=SMOKE_OVERRIDES,
    )
    # Runtime wall-clock differs per run; the simulated metrics may not.
    def cell_metrics(payload):
        return {
            key: {"seeds": cell["seeds"], "metrics": cell["metrics"]}
            for key, cell in payload["cells"].items()
        }

    assert canonical_json(cell_metrics(fallback)) == canonical_json(
        cell_metrics(serial)
    )


def test_aggregate_reports_report_quantiles():
    from repro.bench.stats import REPORT_QUANTILES, distribution, percentile
    from repro.bench.sweep import _aggregate

    values = [3.0, 1.0, 2.0, 10.0]
    stats = _aggregate(values)
    assert set(stats) == {"mean", "p5", "p50", "p95", "p99"}
    assert stats["p50"] == percentile(values, 50) == 2.5
    assert stats["p5"] <= stats["p50"] <= stats["p95"] <= stats["p99"]
    assert REPORT_QUANTILES == (50, 95, 99)
    assert set(distribution(values)) == {"p50", "p95", "p99"}
    assert percentile([7.0], 99) == 7.0


@pytest.mark.bench
def test_kernel_microbench_smoke():
    """The fast kernel must hold >=1.5x over the frozen legacy kernel.

    Marked ``bench`` because it measures wall-clock time; CI runs it in the
    dedicated bench-smoke job rather than the unit-test matrix.
    """
    from repro.bench.kernel_bench import check_against_baseline, run_kernel_bench

    payload = run_kernel_bench(smoke=True)
    storm = payload["storms"]["callback_storm"]
    assert storm["events"] == storm["legacy"]["events"], (
        "fast and legacy kernels must execute the identical storm"
    )
    assert payload["speedup_vs_legacy"] >= 1.5, (
        "kernel fast path regressed below the 1.5x bar: {}x".format(
            payload["speedup_vs_legacy"]
        )
    )
    # The baseline gate logic: identical payload never regresses vs itself.
    assert check_against_baseline(payload, payload, max_regression=0.30) == []
    slowed = {
        "storms": {
            "callback_storm": {
                "events_per_sec": storm["events_per_sec"] * 2.0,
            }
        }
    }
    assert check_against_baseline(payload, slowed, max_regression=0.30)


@pytest.mark.bench
def test_txn_microbench_smoke():
    """The MVCC fast path must hold >=2x over the frozen legacy read path.

    The bar applies to the visibility storm (hint bits + the inline
    non-blocking check vs per-version generator frames + CLOG probes); the
    commit and lock storms are reported and baseline-gated but have no
    fixed multiplier. Best-of-5 timing keeps the ratio stable in CI.
    """
    from repro.bench.kernel_bench import check_against_baseline
    from repro.bench.txn_bench import run_txn_bench

    payload = run_txn_bench(smoke=True, repeats=5)
    for storm in payload["storms"].values():
        assert storm["events"] == storm["legacy"]["events"], (
            "fast and legacy paths must execute the identical storm"
        )
    assert payload["speedup_vs_legacy"] >= 2.0, (
        "txn fast path regressed below the 2x visibility bar: {}x".format(
            payload["speedup_vs_legacy"]
        )
    )
    # The kernel gate function reads the shared storms->events_per_sec shape.
    assert check_against_baseline(payload, payload, max_regression=0.30) == []


@pytest.mark.bench
def test_migration_microbench_smoke():
    """The migration fast path must hold >=2x on the snapshot-copy storm.

    The bar applies to the copy storm (indexed scan + inline visibility +
    coalesced CPU charges vs per-tuple sort/events in the frozen
    ``_legacy_migration`` loop); the pump and crash-retry storms are
    reported and baseline-gated without a fixed multiplier. Best-of-5
    timing keeps the ratio stable in CI.
    """
    from repro.bench.kernel_bench import check_against_baseline
    from repro.bench.migration_bench import run_migration_bench

    payload = run_migration_bench(smoke=True, repeats=5)
    for storm in payload["storms"].values():
        assert storm["events"] == storm["legacy"]["events"], (
            "fast and legacy paths must move the identical data"
        )
    assert payload["speedup_vs_legacy"] >= 2.0, (
        "migration fast path regressed below the 2x copy-storm bar: {}x".format(
            payload["speedup_vs_legacy"]
        )
    )
    assert check_against_baseline(payload, payload, max_regression=0.30) == []


@pytest.mark.bench
def test_network_microbench_smoke():
    """The contended storms run deterministically and feed the shared gate.

    No speedup multiplier applies — the contended path is a new subsystem
    with no legacy twin; the committed BENCH_network.json baseline-gates
    its events/sec. Determinism is the load-bearing assertion: two runs of
    a storm must move the identical event count.
    """
    from repro.bench.kernel_bench import check_against_baseline
    from repro.bench.network_bench import run_network_bench

    first = run_network_bench(smoke=True, repeats=1)
    second = run_network_bench(smoke=True, repeats=1)
    for name, storm in first["storms"].items():
        assert storm["events"] == second["storms"][name]["events"]
        assert storm["events"] > 0
    assert check_against_baseline(first, first, max_regression=0.30) == []


@pytest.mark.bench
def test_cluster_bench_smoke():
    """The storm bench: vectorized engine >= 5x the per-client reference.

    Also asserts the batch and partitioned storms complete the identical
    transaction population (same spec, same seed — only the driving
    machinery differs), that wall-clock percentile columns are present,
    and that the payload feeds the shared baseline gate.
    """
    from repro.bench.cluster_bench import MIN_BATCH_SPEEDUP, run_cluster_bench
    from repro.bench.kernel_bench import check_against_baseline

    payload = run_cluster_bench(smoke=True, repeats=2)
    storms = payload["storms"]
    batch = storms["batch_storm"]
    partitioned = storms["partitioned_storm"]
    assert batch["events"] == partitioned["events"] > 0
    assert batch["committed"] == partitioned["committed"]
    assert batch["population"] == payload["spec"]["population"]
    assert storms["per_client_storm"]["population"] == payload["reference_population"]
    assert batch["migration_finished_at"] is not None, (
        "the storm must complete its in-flight migration"
    )
    for storm in storms.values():
        assert set(storm["wall"]) == {"p50", "p95", "p99", "best", "repeats"}
        assert set(storm["latency"]) == {"p50", "p95", "p99"}
        assert storm["capped_arrivals"] == 0
    assert payload["speedup_batch_vs_per_client"] >= MIN_BATCH_SPEEDUP, (
        "vectorized workload engine below the {}x floor: {}x".format(
            MIN_BATCH_SPEEDUP, payload["speedup_batch_vs_per_client"]
        )
    )
    assert check_against_baseline(payload, payload, max_regression=0.30) == []
