"""Fast checks of the ablation harness code paths (full runs live in
benchmarks/test_ablations.py)."""

from repro.experiments.ablations import (
    run_counter_correctness,
    run_timestamp_scheme_ablation,
)


def test_counter_correctness_with_prepare_wait_is_exact():
    result = run_counter_correctness(prepare_wait=True, duration=0.5, num_clients=4)
    assert result["committed"] > 20
    assert result["lost_updates"] == 0


def test_counter_correctness_without_prepare_wait_loses_updates():
    result = run_counter_correctness(
        prepare_wait=False, duration=1.0, num_keys=4, num_clients=8
    )
    assert result["lost_updates"] > 0


def test_timestamp_ablation_prefers_dts():
    dts = run_timestamp_scheme_ablation("dts", duration=0.5)
    gts = run_timestamp_scheme_ablation("gts", duration=0.5)
    assert dts["throughput"] > gts["throughput"]
    assert dts["avg_latency"] < gts["avg_latency"]
