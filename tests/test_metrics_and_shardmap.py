"""Unit tests for metrics collection/reporting and the shard map cache."""

import pytest

from repro.cluster.shardmap import ShardMapCache
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import render_multi_series, render_series, render_table
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def metrics(sim):
    return MetricsCollector(sim)


# ----------------------------------------------------------------------
# Collector
# ----------------------------------------------------------------------
def test_throughput_series_bins_commits(sim, metrics):
    for t in (0.1, 0.2, 1.5, 2.9):
        sim.now = t
        metrics.record_commit("ycsb", latency=0.001)
    sim.now = 3.0
    series = metrics.throughput_series(label="ycsb", bin_width=1.0, end=3.0)
    assert series == [(0.0, 2.0), (1.0, 1.0), (2.0, 1.0)]


def test_weighted_throughput_counts_tuples(sim, metrics):
    sim.now = 0.5
    metrics.record_commit("batch", latency=1.0, weight=1000)
    series = metrics.throughput_series(label="batch", bin_width=1.0, end=1.0, weighted=True)
    assert series == [(0.0, 1000.0)]


def test_label_filter_uses_prefix(sim, metrics):
    metrics.record_commit("ycsb", 0.1)
    metrics.record_commit("batch", 0.1)
    assert metrics.commit_count(label="ycsb") == 1
    assert metrics.commit_count() == 2


def test_abort_ratio(sim, metrics):
    metrics.record_commit("batch", 0.1)
    metrics.record_abort("batch", "migration")
    metrics.record_abort("batch", "migration")
    metrics.record_abort("batch", "ww_conflict")
    assert metrics.abort_ratio(label="batch") == pytest.approx(0.75)
    assert metrics.abort_ratio(label="batch", kind="migration") == pytest.approx(2 / 3)
    assert metrics.abort_kinds(label="batch") == {"migration": 2, "ww_conflict": 1}


def test_average_latency_windows(sim, metrics):
    sim.now = 1.0
    metrics.record_commit("t", latency=0.010)
    sim.now = 5.0
    metrics.record_commit("t", latency=0.030)
    assert metrics.average_latency(label="t", end=2.0) == pytest.approx(0.010)
    assert metrics.average_latency(label="t", start=2.0) == pytest.approx(0.030)
    assert metrics.average_latency(label="t") == pytest.approx(0.020)


def test_latency_percentile(sim, metrics):
    for latency in (0.001, 0.002, 0.003, 0.004, 0.100):
        metrics.record_commit("t", latency=latency)
    assert metrics.latency_percentile(0.5, label="t") == pytest.approx(0.003)
    assert metrics.latency_percentile(0.99, label="t") == pytest.approx(0.100)


def test_downtime_detects_gap(sim, metrics):
    for t in (0.1, 0.2, 0.3, 4.0, 4.1):
        sim.now = t
        metrics.record_commit("t", 0.001)
    sim.now = 5.0
    longest, total = metrics.downtime(label="t", start=0.0, end=5.0, min_window=0.5)
    assert longest == pytest.approx(3.7)
    assert total == pytest.approx(3.7 + 0.9)  # plus the trailing 4.1->5.0 gap


def test_marks(sim, metrics):
    sim.now = 1.0
    metrics.mark("migration_start")
    sim.now = 2.0
    metrics.mark("migration_end")
    sim.now = 3.0
    metrics.mark("migration_end")
    assert metrics.first_mark("migration_start") == 1.0
    assert metrics.last_mark("migration_end") == 3.0
    assert metrics.first_mark("missing") is None


# ----------------------------------------------------------------------
# Report rendering
# ----------------------------------------------------------------------
def test_render_table_aligns_columns():
    text = render_table("T", ["a", "long_header"], [[1, 2], ["xx", "yyyy"]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "long_header" in lines[1]
    assert len(lines) == 5


def test_render_series_scales_bars():
    text = render_series("S", [(0.0, 10.0), (1.0, 5.0)], width=10)
    lines = text.splitlines()
    assert lines[1].count("#") == 10
    assert lines[2].count("#") == 5


def test_render_series_empty():
    assert "(empty series)" in render_series("S", [])


def test_render_multi_series_columns():
    text = render_multi_series(
        "M", [("a", [(0.0, 1.0), (1.0, 2.0)]), ("b", [(0.0, 3.0)])]
    )
    lines = text.splitlines()
    assert len(lines) == 4  # title, header, two rows


# ----------------------------------------------------------------------
# Shard map cache
# ----------------------------------------------------------------------
def test_cache_lookup_and_update():
    cache = ShardMapCache("n1")
    cache.install("s1", "node-1")
    assert cache.lookup("s1") == "node-1"
    assert cache.maybe_update("s1", "node-2", cts=10)
    assert cache.lookup("s1") == "node-2"
    # An older version never overwrites a newer entry.
    assert not cache.maybe_update("s1", "node-9", cts=5)
    assert cache.lookup("s1") == "node-2"


def test_cache_entry_returns_version():
    cache = ShardMapCache("n1")
    cache.install("s1", "node-1", cts=3)
    assert cache.entry("s1") == ("node-1", 3)


def test_cache_read_through_state():
    cache = ShardMapCache("n1")
    cache.install("s1", "node-1")
    assert not cache.is_read_through("s1")
    cache.set_read_through(["s1"])
    assert cache.is_read_through("s1")
    cache.clear_read_through(["s1"])
    assert not cache.is_read_through("s1")


def test_cache_missing_shard_raises():
    cache = ShardMapCache("n1")
    with pytest.raises(KeyError):
        cache.lookup("nope")
