"""Unit tests for the DES kernel: scheduling, processes, events."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, SimulationError, Simulator, Timeout


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_run_fifo():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(1.0, seen.append, i)
    sim.run()
    assert seen == list(range(10))


def test_cancelled_entry_is_skipped():
    sim = Simulator()
    seen = []
    handle = sim.schedule(1.0, seen.append, "x")
    sim.cancel(handle)
    sim.run()
    assert seen == []


def test_cancel_is_idempotent_and_pending_count_is_live():
    sim = Simulator()
    handles = [sim.schedule(1.0, lambda: None) for _ in range(5)]
    assert sim.pending_events == 5
    sim.cancel(handles[0])
    sim.cancel(handles[0])  # double-cancel must not double-count
    sim.cancel(handles[3])
    assert sim.pending_events == 3
    sim.run()
    assert sim.pending_events == 0


def test_run_until_executes_boundary_events_before_advancing():
    """Events at exactly t == until run — including cascades scheduled *at*
    the boundary by callbacks already running at t == until — in FIFO
    order, before run() returns with now == until."""
    sim = Simulator()
    seen = []

    def at_boundary(tag):
        seen.append(tag)
        if tag == "first":
            # Scheduled during the last step, landing exactly on `until`.
            sim.schedule(0.0, at_boundary, "cascade")

    sim.schedule(1.0, at_boundary, "early")
    sim.schedule(2.0, at_boundary, "first")
    sim.schedule(2.0, at_boundary, "second")
    sim.schedule(2.0 + 1e-9, seen.append, "late")
    sim.run(until=2.0)
    assert seen == ["early", "first", "second", "cascade"]
    assert sim.now == 2.0
    assert sim.pending_events == 1  # "late" still pending
    sim.run()
    assert seen[-1] == "late"


def test_run_until_stops_at_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(5.0, seen.append, "b")
    sim.run(until=2.0)
    assert seen == ["a"]
    assert sim.now == 2.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_process_timeout_and_return_value():
    sim = Simulator()

    def worker():
        yield 1.5
        yield Timeout(0.5)
        return 42

    proc = sim.spawn(worker())
    value = sim.run_until_complete(proc)
    assert value == 42
    assert sim.now == 2.0


def test_process_join_propagates_value():
    sim = Simulator()

    def child():
        yield 1.0
        return "done"

    def parent():
        value = yield sim.spawn(child())
        return value + "!"

    proc = sim.spawn(parent())
    assert sim.run_until_complete(proc) == "done!"


def test_process_exception_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield 1.0
        raise ValueError("boom")

    def parent():
        yield sim.spawn(child())

    proc = sim.spawn(parent())
    with pytest.raises(ValueError, match="boom"):
        sim.run_until_complete(proc)


def test_event_wakes_waiter_with_value():
    sim = Simulator()
    ready = sim.event("ready")

    def waiter():
        value = yield ready
        return value

    def trigger():
        yield 3.0
        ready.succeed("payload")

    proc = sim.spawn(waiter())
    sim.spawn(trigger())
    assert sim.run_until_complete(proc) == "payload"
    assert sim.now == 3.0


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ready = sim.event()

    def waiter():
        yield ready

    proc = sim.spawn(waiter())
    sim.schedule(1.0, lambda: ready.fail(RuntimeError("bad")))
    with pytest.raises(RuntimeError, match="bad"):
        sim.run_until_complete(proc)


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_callback_after_trigger_fires():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["v"]


def test_allof_waits_for_every_member():
    sim = Simulator()

    def child(delay, value):
        yield delay
        return value

    def parent():
        values = yield AllOf([sim.spawn(child(2.0, "a")), sim.spawn(child(1.0, "b"))])
        return values

    proc = sim.spawn(parent())
    assert sim.run_until_complete(proc) == ["a", "b"]
    assert sim.now == 2.0


def test_allof_empty_completes_immediately():
    sim = Simulator()

    def parent():
        values = yield AllOf([])
        return values

    assert sim.run_until_complete(sim.spawn(parent())) == []


def test_anyof_returns_first_completion():
    sim = Simulator()

    def child(delay, value):
        yield delay
        return value

    def parent():
        index, value = yield AnyOf([sim.spawn(child(5.0, "slow")), sim.spawn(child(1.0, "fast"))])
        return index, value

    proc = sim.spawn(parent())
    assert sim.run_until_complete(proc) == (1, "fast")
    assert sim.now == 1.0


def test_interrupt_raises_inside_process():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield 100.0
        except Interrupt as exc:
            log.append(exc.cause)
            return "interrupted"

    proc = sim.spawn(victim())
    sim.schedule(1.0, proc.interrupt, "migration abort")
    assert sim.run_until_complete(proc) == "interrupted"
    assert log == ["migration abort"]
    assert sim.now == pytest.approx(1.0)


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield 0.1
        return "ok"

    proc = sim.spawn(quick())
    sim.run()
    proc.interrupt("late")
    sim.run()
    assert proc.result() == "ok"


def test_interrupt_detaches_from_event():
    sim = Simulator()
    never = sim.event()

    def victim():
        try:
            yield never
        except Interrupt:
            return "freed"

    proc = sim.spawn(victim())
    sim.schedule(1.0, proc.interrupt)
    assert sim.run_until_complete(proc) == "freed"


def test_yielding_garbage_fails_process():
    sim = Simulator()

    def bad():
        yield object()

    proc = sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run_until_complete(proc)


def test_deadlock_detected_by_run_until_complete():
    sim = Simulator()
    never = sim.event()

    def stuck():
        yield never

    proc = sim.spawn(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(proc)


def test_rng_streams_are_independent_and_reproducible():
    sim_a = Simulator(seed=7)
    sim_b = Simulator(seed=7)
    assert [sim_a.rng("x").random() for _ in range(3)] == [
        sim_b.rng("x").random() for _ in range(3)
    ]
    assert sim_a.rng("x").random() != sim_a.rng("y").random()
