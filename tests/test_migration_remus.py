"""Integration tests for Remus migrations under live workloads."""

from repro.cluster import Cluster
from repro.config import ClusterConfig
from repro.migration import MigrationPlan, RemusMigration, run_plan
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


def build(num_nodes=3, num_tuples=600, num_shards=6, num_clients=6, seed=0):
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes, seed=seed))
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(
            num_tuples=num_tuples,
            num_shards=num_shards,
            num_clients=num_clients,
            tuple_size=256,
            think_time=0.004,
        ),
    )
    workload.create()
    return cluster, workload


def migrate_one(cluster, shard_ids, source, dest, runtime=10.0, approach=RemusMigration, **kwargs):
    plan = MigrationPlan(approach, [(shard_ids, source, dest)], **kwargs)
    proc = cluster.spawn(run_plan(cluster, plan), name="migration")
    cluster.run(until=runtime)
    assert proc.finished, "migration did not finish within the run window"
    proc.result()  # re-raise failures
    return plan


def test_remus_idle_migration_moves_all_data():
    cluster, workload = build()
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    before = cluster.dump_table("ycsb")
    migrate_one(cluster, [shard], "node-1", "node-2")
    assert cluster.shard_owner(shard) == "node-2"
    assert cluster.dump_table("ycsb") == before
    assert not cluster.nodes["node-1"].has_shard_data(shard)
    assert cluster.nodes["node-2"].has_shard_data(shard)


def test_remus_under_load_loses_no_data_and_aborts_nothing():
    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=1.0)
    shards = cluster.shards_on_node("node-1", table="ycsb")[:2]
    migrate_one(cluster, shards, "node-1", "node-3", runtime=20.0)
    pool.stop()
    cluster.run(until=25.0)
    dump = cluster.dump_table("ycsb")
    assert len(dump) == workload.config.num_tuples
    assert cluster.metrics.abort_count(kind="migration") == 0
    for shard in shards:
        assert cluster.shard_owner(shard) == "node-3"


def test_remus_txn_started_before_tm_commits_on_source():
    """A long transaction spanning T_m keeps running and commits via MOCC."""
    cluster, workload = build(num_clients=0)
    session = cluster.session("node-2")
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    heap = cluster.nodes["node-1"].heap_for(shard)
    victim_key = sorted(heap.keys())[0]
    outcome = {}

    def long_txn():
        txn = yield from session.begin(label="long")
        value = yield from session.read(txn, "ycsb", victim_key)
        yield from session.update(txn, "ycsb", victim_key, {"f0": "long-write"})
        yield 3.0  # straddle the whole migration
        yield from session.commit(txn)
        outcome["committed"] = True
        outcome["value"] = value

    cluster.spawn(long_txn())
    cluster.run(until=0.1)
    migrate_one(cluster, [shard], "node-1", "node-2", runtime=20.0)
    cluster.run()
    assert outcome.get("committed")
    dump = cluster.dump_table("ycsb")
    assert dump[victim_key] == {"f0": "long-write"}


def test_remus_new_txns_route_to_destination_after_tm():
    cluster, workload = build(num_clients=0)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    key = sorted(cluster.nodes["node-1"].heap_for(shard).keys())[0]
    migrate_one(cluster, [shard], "node-1", "node-2")
    session = cluster.session("node-3")
    seen = {}

    def reader_and_writer():
        txn = yield from session.begin()
        seen["value"] = yield from session.read(txn, "ycsb", key)
        yield from session.update(txn, "ycsb", key, {"f0": "post-tm"})
        seen["participants"] = txn.participant_nodes
        yield from session.commit(txn)

    cluster.sim.run_until_complete(cluster.spawn(reader_and_writer()))
    # The source copy is gone, so the value can only have come from node-2,
    # and the write participant must be the destination.
    assert seen["value"] == {"f0": key}
    assert not cluster.nodes["node-1"].has_shard_data(shard)
    assert seen["participants"] == ["node-2"]


def test_remus_mocc_ww_conflict_aborts_source_and_keeps_dest():
    """A destination txn and a straddling source txn write the same key:
    MOCC detects the WW conflict and aborts the source pair."""
    cluster, workload = build(num_clients=0)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    keys = sorted(cluster.nodes["node-1"].heap_for(shard).keys())
    key = keys[0]
    source_session = cluster.session("node-1")
    dest_session = cluster.session("node-3")
    outcome = {}

    def straddler():
        txn = yield from source_session.begin(label="straddler")
        # Touch another key first so the txn exists before T_m but writes the
        # contended key after the destination txn committed.
        yield from source_session.update(txn, "ycsb", keys[1], {"f0": "other"})
        yield 4.0
        try:
            yield from source_session.update(txn, "ycsb", key, {"f0": "source"})
            yield from source_session.commit(txn)
            outcome["source"] = "committed"
        except Exception as exc:  # SerializationFailure from MOCC
            yield from source_session.abort(txn, reason=exc)
            outcome["source"] = type(exc).__name__

    def dest_writer():
        yield 2.0  # after T_m (migration is fast when idle)
        txn = yield from dest_session.begin(label="dest")
        yield from dest_session.update(txn, "ycsb", key, {"f0": "dest"})
        yield from dest_session.commit(txn)
        outcome["dest"] = "committed"

    cluster.spawn(straddler())
    cluster.spawn(dest_writer())
    cluster.run(until=0.05)
    migrate_one(cluster, [shard], "node-1", "node-2", runtime=30.0)
    cluster.run()
    assert outcome["dest"] == "committed"
    assert outcome["source"] == "SerializationFailure"
    assert cluster.dump_table("ycsb")[key] == {"f0": "dest"}


def test_remus_records_sync_wait_stats():
    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    cluster.run(until=0.5)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    plan = migrate_one(cluster, [shard], "node-1", "node-2", runtime=20.0)
    pool.stop()
    cluster.run(until=22.0)
    stats = plan.stats
    assert stats.tuples_copied > 0
    # Phase bookkeeping exists for all four phases.
    migration = plan.migrations[0]
    for phase in ("snapshot_copy", "async_propagation", "mode_change", "dual_execution"):
        assert migration.stats.phase_duration(phase) >= 0.0
        assert phase in migration.stats.phase_times


def test_remus_collocated_group_migrates_together():
    cluster = Cluster(ClusterConfig(num_nodes=3))
    for name in ("left", "right"):
        cluster.create_table(
            name, num_shards=3, tuple_size=128, collocation_group="pair"
        )
        cluster.bulk_load(name, [((name, k), k) for k in range(60)])
    shard_left = cluster.shards_on_node("node-1", table="left")[0]
    group = cluster.collocated_shards(shard_left)
    assert len(group) == 2
    migrate_one(cluster, group, "node-1", "node-3")
    for shard in group:
        assert cluster.shard_owner(shard) == "node-3"
    assert len(cluster.dump_table("left")) == 60
    assert len(cluster.dump_table("right")) == 60


def test_remus_consecutive_migrations_drain_a_node():
    from repro.migration.base import consolidation_batches

    cluster, workload = build(num_nodes=3, num_shards=6)
    batches = consolidation_batches(cluster, "node-1", table="ycsb", group_size=1)
    assert batches, "node-1 should own shards"
    plan = MigrationPlan(RemusMigration, batches)
    proc = cluster.spawn(run_plan(cluster, plan))
    cluster.run(until=30.0)
    assert proc.finished
    assert cluster.shards_on_node("node-1", table="ycsb") == []
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples
