"""Self-healing migration supervision tests (watchdog + crash recovery)."""

from repro.cluster import Cluster
from repro.config import ClusterConfig, CostModel
from repro.migration import (
    MigrationPlan,
    MigrationSupervisor,
    RemusMigration,
    SupervisorConfig,
    run_supervised_plan,
)
from repro.workloads.ycsb import YcsbConfig, YcsbWorkload


def build(num_nodes=3, snapshot_cost=2e-3):
    # Stretch the snapshot copy so crash injection has a window to hit.
    cluster = Cluster(
        ClusterConfig(
            num_nodes=num_nodes, costs=CostModel(snapshot_scan_per_tuple=snapshot_cost)
        )
    )
    workload = YcsbWorkload(
        cluster,
        YcsbConfig(num_tuples=600, num_shards=6, num_clients=4,
                   tuple_size=256, think_time=0.004),
    )
    workload.create()
    return cluster, workload


def test_clean_plan_behaves_like_run_plan():
    cluster, workload = build()
    shards = cluster.shards_on_node("node-1", table="ycsb")[:2]
    plan = MigrationPlan(RemusMigration, [(shards, "node-1", "node-2")])
    proc = cluster.spawn(run_supervised_plan(cluster, plan))
    cluster.run(until=30.0)
    stats = proc.result()
    assert stats.crash_recoveries == 0
    assert stats.batches_skipped == 0
    for shard in shards:
        assert cluster.shard_owner(shard) == "node-2"
    names = [name for _t, name in cluster.metrics.marks]
    assert "migration_start" in names and "migration_end" in names


def test_crash_mid_copy_recovers_and_retries_to_completion():
    cluster, workload = build()
    pool = workload.make_clients()
    pool.start()
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    plan = MigrationPlan(RemusMigration, [([shard], "node-1", "node-2")])
    supervisor = MigrationSupervisor(
        cluster, plan, SupervisorConfig(grace=0.2, retry_backoff=0.1)
    )
    proc = cluster.spawn(supervisor.run())

    def nemesis():
        yield supervisor.phase_event("snapshot_copy")
        yield 0.1  # well inside the stretched copy
        assert supervisor.crash_current("test crash")

    cluster.spawn(nemesis())
    cluster.run(until=60.0)
    pool.stop()
    cluster.run(until=cluster.sim.now + 1.0)
    stats = proc.result()
    assert stats.crash_recoveries >= 1
    assert stats.migration_retries >= 1
    assert stats.batches_skipped == 0
    assert cluster.shard_owner(shard) == "node-2"
    names = [name for _t, name in cluster.metrics.marks]
    assert "migration_crash" in names
    assert any(n.startswith("migration_recovered:") for n in names)
    assert len(cluster.dump_table("ycsb")) == workload.config.num_tuples
    assert not cluster.sim.failed_processes


def test_unreachable_destination_degrades_batch_without_hanging():
    cluster, _workload = build()
    cluster.network.partition("node-1", "node-2")  # never healed
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    plan = MigrationPlan(RemusMigration, [([shard], "node-1", "node-2")])
    supervisor = MigrationSupervisor(
        cluster, plan, SupervisorConfig(grace=0.1, retry_backoff=0.1, max_retries=2)
    )
    proc = cluster.spawn(supervisor.run())
    cluster.run(until=60.0)
    stats = proc.result()  # finished: degraded, not wedged
    assert stats.batches_skipped == 1
    assert stats.crash_recoveries >= 1
    assert cluster.shard_owner(shard) == "node-1"
    assert any("skipped" in desc for _t, desc in supervisor.events)


def test_phase_events_fire_once_per_registration():
    cluster, _workload = build(snapshot_cost=0.0)
    shard = cluster.shards_on_node("node-1", table="ycsb")[0]
    plan = MigrationPlan(RemusMigration, [([shard], "node-1", "node-3")])
    supervisor = MigrationSupervisor(cluster, plan)
    seen = {}

    def watcher(phase):
        event = supervisor.phase_event(phase)

        def wait():
            yield event
            seen[phase] = cluster.sim.now

        cluster.spawn(wait())

    for phase in ("snapshot_copy", "mode_change", "dual_execution"):
        watcher(phase)
    proc = cluster.spawn(supervisor.run())
    cluster.run(until=30.0)
    proc.result()
    assert set(seen) == {"snapshot_copy", "mode_change", "dual_execution"}
    assert seen["snapshot_copy"] <= seen["mode_change"] <= seen["dual_execution"]
