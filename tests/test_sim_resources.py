"""Unit tests for CPU and generic resources, and the network model."""

import pytest

from repro.sim import (
    CpuResource,
    LinkProfile,
    Network,
    NetworkConfig,
    Resource,
    SimulationError,
    Simulator,
    Topology,
)


def flat_network(sim, config=None):
    """An uncontended single-rack network priced by flat ``config`` numbers."""
    config = config or NetworkConfig()
    topology = Topology.single(LinkProfile(config.base_latency, config.bandwidth))
    return Network.from_topology(sim, topology, config=config)


def test_resource_grants_up_to_capacity_then_queues():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    order = []

    def worker(i):
        yield res.acquire()
        order.append(("start", i, sim.now))
        yield 1.0
        res.release()
        order.append(("end", i, sim.now))

    for i in range(3):
        sim.spawn(worker(i))
    sim.run()
    starts = {i: t for kind, i, t in order if kind == "start"}
    assert starts[0] == 0.0 and starts[1] == 0.0
    assert starts[2] == 1.0


def test_resource_release_without_acquire_errors():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_cancel_acquire_releases_granted_and_withdraws_queued():
    """An abandoned acquire must not leak: a granted request is released,
    a still-queued request is withdrawn (never handed to a dead waiter)."""
    sim = Simulator()
    res = Resource(sim, capacity=1)
    granted = res.acquire()
    assert res.in_use == 1
    queued = res.acquire()
    assert res.queued == 1

    res.cancel_acquire(queued)
    assert res.queued == 0
    res.cancel_acquire(granted)
    assert res.in_use == 0
    res.cancel_acquire(None)  # no-op for a request that never happened

    # The freed unit is immediately grantable again.
    assert res.acquire().triggered
    assert res.in_use == 1


def test_cpu_serializes_beyond_capacity():
    sim = Simulator()
    cpu = CpuResource(sim, capacity=1)
    done_times = []

    def work():
        yield cpu.use(2.0)
        done_times.append(sim.now)

    sim.spawn(work())
    sim.spawn(work())
    sim.run()
    assert done_times == [2.0, 4.0]


def test_cpu_parallel_within_capacity():
    sim = Simulator()
    cpu = CpuResource(sim, capacity=4)
    done_times = []

    def work():
        yield cpu.use(2.0)
        done_times.append(sim.now)

    for _ in range(4):
        sim.spawn(work())
    sim.run()
    assert done_times == [2.0] * 4


def test_cpu_usage_series_accounts_busy_time():
    sim = Simulator()
    cpu = CpuResource(sim, capacity=2, bin_width=1.0)

    def work():
        yield cpu.use(1.5)

    sim.spawn(work())
    sim.run()
    sim.run(until=3.0)
    series = dict(cpu.usage_series(0.0, 3.0))
    # one of two slots busy for the whole first bin, half of the second.
    assert series[0.0] == pytest.approx(0.5)
    assert series[1.0] == pytest.approx(0.25)
    assert series[2.0] == pytest.approx(0.0)
    assert cpu.total_busy_time == pytest.approx(1.5)


def test_cpu_usage_between_average():
    sim = Simulator()
    cpu = CpuResource(sim, capacity=1, bin_width=1.0)
    sim.spawn(iter([cpu.use(1.0)]))

    def work():
        yield cpu.use(1.0)

    sim.spawn(work())
    sim.run()
    sim.run(until=4.0)
    assert cpu.usage_between(0.0, 4.0) == pytest.approx(0.5)


def test_network_local_send_is_free():
    sim = Simulator()
    net = flat_network(sim)
    assert net.delay_for("n1", "n1", size=10**9) == 0.0


def test_network_delay_scales_with_size():
    sim = Simulator()
    net = flat_network(sim, NetworkConfig(base_latency=0.001, bandwidth=1000.0))
    assert net.delay_for("a", "b", size=0) == pytest.approx(0.001)
    assert net.delay_for("a", "b", size=1000) == pytest.approx(1.001)


def test_network_send_delivers_after_delay():
    sim = Simulator()
    net = flat_network(sim, NetworkConfig(base_latency=0.5, bandwidth=1e9))
    arrival = []

    def sender():
        yield net.send("a", "b", size=0)
        arrival.append(sim.now)

    sim.spawn(sender())
    sim.run()
    assert arrival == [pytest.approx(0.5)]


def test_network_roundtrip_is_two_legs():
    sim = Simulator()
    net = flat_network(sim, NetworkConfig(base_latency=0.25, bandwidth=1e9))
    arrival = []

    def caller():
        yield net.roundtrip("a", "b")
        arrival.append(sim.now)

    sim.spawn(caller())
    sim.run()
    assert arrival == [pytest.approx(0.5)]
    assert net.messages_sent == 2


def test_network_broadcast_waits_for_all():
    sim = Simulator()
    net = flat_network(sim, NetworkConfig(base_latency=0.1, bandwidth=1e9))
    arrival = []

    def caller():
        yield net.broadcast("a", ["b", "c", "a"])
        arrival.append(sim.now)

    sim.spawn(caller())
    sim.run()
    assert arrival == [pytest.approx(0.1)]
