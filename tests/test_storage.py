"""Unit tests for the MVCC storage engine: CLOG, WAL, heap, visibility."""

import pytest

from repro.sim import Simulator
from repro.storage import (
    Clog,
    HeapTable,
    Snapshot,
    TxnStatus,
    Wal,
    WalRecord,
    WalRecordKind,
)


@pytest.fixture
def sim():
    return Simulator(seed=1)


@pytest.fixture
def clog(sim):
    return Clog(sim, node_id="n1")


@pytest.fixture
def heap(sim, clog):
    return HeapTable(sim, clog, shard_id=("t", 0))


def run(sim, gen):
    return sim.run_until_complete(sim.spawn(gen))


# ----------------------------------------------------------------------
# CLOG
# ----------------------------------------------------------------------
def test_clog_lifecycle(clog):
    clog.begin(1)
    assert clog.status(1) is TxnStatus.IN_PROGRESS
    clog.set_prepared(1)
    assert clog.status(1) is TxnStatus.PREPARED
    clog.set_committed(1, commit_ts=100)
    assert clog.status(1) is TxnStatus.COMMITTED
    assert clog.commit_ts(1) == 100


def test_clog_unknown_xid_reads_aborted(clog):
    assert clog.status(999) is TxnStatus.ABORTED


def test_clog_commit_without_prepare_is_allowed(clog):
    clog.begin(2)
    clog.set_committed(2, commit_ts=5)
    assert clog.status(2) is TxnStatus.COMMITTED


def test_clog_cannot_abort_committed(clog):
    clog.begin(3)
    clog.set_committed(3, 1)
    with pytest.raises(ValueError):
        clog.set_aborted(3)


def test_clog_cannot_begin_twice(clog):
    clog.begin(4)
    with pytest.raises(ValueError):
        clog.begin(4)


def test_clog_wait_completion_wakes_on_commit(sim, clog):
    clog.begin(5)
    clog.set_prepared(5)
    results = []

    def reader():
        status = yield clog.wait_completion(5)
        results.append((status, sim.now))

    sim.spawn(reader())
    sim.schedule(2.0, clog.set_committed, 5, 42)
    sim.run()
    assert results == [(TxnStatus.COMMITTED, 2.0)]


def test_clog_wait_completion_already_done_fires_immediately(sim, clog):
    clog.begin(6)
    clog.set_aborted(6)

    def reader():
        status = yield clog.wait_completion(6)
        return status

    assert run(sim, reader()) is TxnStatus.ABORTED


# ----------------------------------------------------------------------
# WAL
# ----------------------------------------------------------------------
def test_wal_assigns_monotonic_lsns(sim):
    wal = Wal(sim)
    lsns = [
        wal.append(WalRecord(WalRecordKind.INSERT, xid=1, key=k)) for k in range(3)
    ]
    assert lsns == [0, 1, 2]
    assert wal.tail_lsn == 3


def test_wal_reader_consumes_in_order(sim):
    wal = Wal(sim)
    for k in range(3):
        wal.append(WalRecord(WalRecordKind.INSERT, xid=1, key=k))
    reader = wal.reader()
    assert [reader.poll().key for _ in range(3)] == [0, 1, 2]
    assert reader.poll() is None
    assert reader.lag == 0


def test_wal_reader_blocks_until_append(sim):
    wal = Wal(sim)
    reader = wal.reader()
    got = []

    def consume():
        record = yield from reader.next_record()
        got.append((record.key, sim.now))

    sim.spawn(consume())
    sim.schedule(3.0, wal.append, WalRecord(WalRecordKind.COMMIT, xid=7, key="k"))
    sim.run()
    assert got == [("k", 3.0)]


def test_wal_reader_from_middle(sim):
    wal = Wal(sim)
    for k in range(5):
        wal.append(WalRecord(WalRecordKind.UPDATE, xid=1, key=k))
    reader = wal.reader(from_lsn=3)
    assert reader.poll().key == 3


def test_wal_records_between(sim):
    wal = Wal(sim)
    for k in range(5):
        wal.append(WalRecord(WalRecordKind.UPDATE, xid=1, key=k))
    middle = wal.records_between(1, 3)
    assert [r.key for r in middle] == [1, 2]


def test_wal_record_kind_is_change():
    assert WalRecordKind.INSERT.is_change
    assert WalRecordKind.LOCK.is_change
    assert not WalRecordKind.COMMIT.is_change
    assert not WalRecordKind.PREPARE.is_change


# ----------------------------------------------------------------------
# Heap / visibility
# ----------------------------------------------------------------------
def committed_insert(heap, clog, xid, key, value, cts):
    clog.begin(xid)
    heap.put_version(key, value, xmin=xid)
    clog.set_committed(xid, cts)


def test_read_sees_committed_before_snapshot(sim, heap, clog):
    committed_insert(heap, clog, xid=1, key="a", value=10, cts=5)

    def reader():
        value, _ = yield from heap.read("a", Snapshot(start_ts=5))
        return value

    assert run(sim, reader()) == 10


def test_read_skips_committed_after_snapshot(sim, heap, clog):
    committed_insert(heap, clog, xid=1, key="a", value=10, cts=50)

    def reader():
        value, _ = yield from heap.read("a", Snapshot(start_ts=5))
        return value

    assert run(sim, reader()) is None


def test_read_skips_aborted_and_in_progress(sim, heap, clog):
    clog.begin(1)
    heap.put_version("a", 1, xmin=1)
    clog.set_aborted(1)
    clog.begin(2)
    heap.put_version("a", 2, xmin=2)  # still in progress

    def reader():
        value, _ = yield from heap.read("a", Snapshot(start_ts=100))
        return value

    assert run(sim, reader()) is None


def test_read_sees_own_uncommitted_write(sim, heap, clog):
    clog.begin(9)
    heap.put_version("a", "mine", xmin=9)

    def reader():
        value, _ = yield from heap.read("a", Snapshot(start_ts=0, xid=9))
        return value

    assert run(sim, reader()) == "mine"


def test_read_sees_newest_visible_version(sim, heap, clog):
    committed_insert(heap, clog, xid=1, key="a", value="v1", cts=5)
    old = heap.chain("a")[0]
    clog.begin(2)
    heap.mark_deleted(old, 2)
    heap.put_version("a", "v2", xmin=2)
    clog.set_committed(2, 8)

    def read_at(ts):
        def reader():
            value, _ = yield from heap.read("a", Snapshot(start_ts=ts))
            return value

        return run(sim, reader())

    assert read_at(5) == "v1"
    assert read_at(8) == "v2"


def test_read_deleted_row_invisible_after_delete_commit(sim, heap, clog):
    committed_insert(heap, clog, xid=1, key="a", value="v1", cts=5)
    version = heap.chain("a")[0]
    clog.begin(2)
    heap.mark_deleted(version, 2)
    clog.set_committed(2, 7)

    def read_at(ts):
        def reader():
            value, _ = yield from heap.read("a", Snapshot(start_ts=ts))
            return value

        return run(sim, reader())

    assert read_at(6) == "v1"
    assert read_at(7) is None


def test_prepare_wait_blocks_reader_until_commit(sim, heap, clog):
    clog.begin(1)
    heap.put_version("a", "w", xmin=1)
    clog.set_prepared(1)
    results = []

    def reader():
        value, _ = yield from heap.read("a", Snapshot(start_ts=100))
        results.append((value, sim.now))

    sim.spawn(reader())
    sim.schedule(4.0, clog.set_committed, 1, 10)
    sim.run()
    assert results == [("w", 4.0)]


def test_prepare_wait_reader_skips_if_commit_ts_too_new(sim, heap, clog):
    clog.begin(1)
    heap.put_version("a", "w", xmin=1)
    clog.set_prepared(1)
    results = []

    def reader():
        value, _ = yield from heap.read("a", Snapshot(start_ts=100))
        results.append(value)

    sim.spawn(reader())
    sim.schedule(1.0, clog.set_committed, 1, 500)
    sim.run()
    assert results == [None]


def test_prepare_wait_on_deleting_txn(sim, heap, clog):
    committed_insert(heap, clog, xid=1, key="a", value="v1", cts=5)
    version = heap.chain("a")[0]
    clog.begin(2)
    heap.mark_deleted(version, 2)
    clog.set_prepared(2)
    results = []

    def reader():
        value, _ = yield from heap.read("a", Snapshot(start_ts=100))
        results.append((value, sim.now))

    sim.spawn(reader())
    sim.schedule(2.5, clog.set_committed, 2, 50)
    sim.run()
    assert results == [(None, 2.5)]


def test_scan_at_returns_consistent_pairs(sim, heap, clog):
    for i in range(5):
        committed_insert(heap, clog, xid=10 + i, key=i, value=i * 100, cts=i)

    def scanner():
        pairs = yield from heap.scan_at(Snapshot(start_ts=2))
        return pairs

    assert run(sim, scanner()) == [(0, 0), (1, 100), (2, 200)]


def test_vacuum_reclaims_dead_versions(sim, heap, clog):
    committed_insert(heap, clog, xid=1, key="a", value="v1", cts=1)
    old = heap.chain("a")[0]
    clog.begin(2)
    heap.mark_deleted(old, 2)
    heap.put_version("a", "v2", xmin=2)
    clog.set_committed(2, 3)
    clog.begin(3)
    heap.put_version("b", "junk", xmin=3)
    clog.set_aborted(3)

    assert heap.chain_length("a") == 2
    removed = heap.vacuum(horizon_ts=10)
    assert removed == 2
    assert heap.chain_length("a") == 1
    assert "b" not in heap


def test_vacuum_respects_horizon(sim, heap, clog):
    committed_insert(heap, clog, xid=1, key="a", value="v1", cts=1)
    old = heap.chain("a")[0]
    clog.begin(2)
    heap.mark_deleted(old, 2)
    heap.put_version("a", "v2", xmin=2)
    clog.set_committed(2, 30)
    # A snapshot at ts=10 still needs v1: horizon below 30 keeps it.
    assert heap.vacuum(horizon_ts=10) == 0
    assert heap.chain_length("a") == 2


def test_unmark_deleted_restores_version(sim, heap, clog):
    committed_insert(heap, clog, xid=1, key="a", value="v1", cts=1)
    version = heap.chain("a")[0]
    heap.mark_deleted(version, 2)
    heap.unmark_deleted(version, 2)
    assert version.xmax is None
    heap.mark_deleted(version, 3)
    heap.unmark_deleted(version, 2)  # someone else's stamp stays
    assert version.xmax == 3


def test_latest_committed_or_locked_skips_aborted(sim, heap, clog):
    committed_insert(heap, clog, xid=1, key="a", value="v1", cts=1)
    clog.begin(2)
    heap.put_version("a", "junk", xmin=2)
    clog.set_aborted(2)
    latest = heap.latest_committed_or_locked("a")
    assert latest.value == "v1"
