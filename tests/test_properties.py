"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.hashing import (
    HASH_SPACE,
    consistent_hash,
    shard_index_for_hash,
    split_hash_space,
)
from repro.metrics.series import bin_series, downtime_windows, moving_average
from repro.sim import Simulator
from repro.storage import Clog, HeapTable, Snapshot
from repro.txn.timestamps import HybridLogicalClock, decode_hlc, encode_hlc
from repro.workloads.zipf import ZipfGenerator


# ----------------------------------------------------------------------
# Hybrid logical clocks
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=10**15), min_size=1, max_size=50))
def test_hlc_now_is_strictly_monotonic(observed):
    sim = Simulator()
    clock = HybridLogicalClock(sim)
    last = 0
    for ts in observed:
        clock.update(ts)
        current = clock.now()
        assert current > last
        assert current > ts  # causality: after observing ts, we are past it
        last = current


@given(
    st.integers(min_value=0, max_value=2**40),
    st.integers(min_value=0, max_value=2**16 - 1),
)
def test_hlc_encode_decode_roundtrip(physical, logical):
    ts = encode_hlc(physical, logical)
    assert decode_hlc(ts) == (physical, logical)


@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_hlc_tracks_physical_time(now):
    sim = Simulator()
    sim.now = now
    clock = HybridLogicalClock(sim)
    physical, _logical = decode_hlc(clock.now())
    assert physical == int(now * 1e6)


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=64), st.integers())
def test_every_key_maps_to_exactly_one_shard_range(num_shards, key):
    ranges = split_hash_space(num_shards)
    h = consistent_hash(key)
    containing = [i for i, r in enumerate(ranges) if h in r]
    assert len(containing) == 1
    assert containing[0] == shard_index_for_hash(h, num_shards)


@given(st.integers(min_value=1, max_value=64))
def test_shard_ranges_tile_the_ring(num_shards):
    ranges = split_hash_space(num_shards)
    assert ranges[0].lo == 0
    assert ranges[-1].hi == HASH_SPACE
    for left, right in zip(ranges, ranges[1:]):
        assert left.hi == right.lo


@given(st.integers(min_value=1, max_value=32), st.integers(min_value=1, max_value=32))
def test_chunk_split_tiles_the_shard_range(num_shards, chunks):
    shard_range = split_hash_space(num_shards)[0]
    pieces = shard_range.split(chunks)
    assert pieces[0].lo == shard_range.lo
    assert pieces[-1].hi == shard_range.hi
    assert sum(p.width for p in pieces) == shard_range.width


@given(st.data())
def test_consistent_hash_is_deterministic(data):
    key = data.draw(st.one_of(st.integers(), st.text(max_size=20), st.tuples(st.integers())))
    assert consistent_hash(key) == consistent_hash(key)
    assert 0 <= consistent_hash(key) < HASH_SPACE


# ----------------------------------------------------------------------
# MVCC visibility against a reference model
# ----------------------------------------------------------------------
@given(
    st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=20),
    st.integers(min_value=0, max_value=120),
)
@settings(max_examples=60)
def test_visible_version_matches_reference_model(gaps, read_ts):
    """Committed versions at strictly increasing timestamps: a read at ts
    must return the newest version with commit_ts <= ts."""
    sim = Simulator()
    clog = Clog(sim)
    heap = HeapTable(sim, clog)
    commit_times = []
    cursor = 0
    for i, gap in enumerate(gaps):
        cursor += gap
        xid = i + 1
        clog.begin(xid)
        previous = heap.chain("k")[0] if "k" in heap else None
        if previous is not None:
            heap.mark_deleted(previous, xid)
        heap.put_version("k", "v{}".format(cursor), xid)
        clog.set_committed(xid, cursor)
        commit_times.append(cursor)

    def read():
        value, _n = yield from heap.read("k", Snapshot(read_ts))
        return value

    value = sim.run_until_complete(sim.spawn(read()))
    visible = [t for t in commit_times if t <= read_ts]
    expected = "v{}".format(max(visible)) if visible else None
    assert value == expected


# ----------------------------------------------------------------------
# Metrics helpers
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=99.99, allow_nan=False),
            st.integers(min_value=1, max_value=10),
        ),
        max_size=50,
    )
)
def test_bin_series_preserves_totals(points):
    series = bin_series(points, bin_width=1.0, start=0.0, end=100.0)
    assert len(series) == 100
    total_in = sum(w for _t, w in points)
    total_out = sum(rate * 1.0 for _t, rate in series)
    assert abs(total_in - total_out) < 1e-6


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=30)
)
def test_downtime_never_exceeds_window(times):
    longest, total = downtime_windows(sorted(times), 0.0, 100.0, min_window=0.5)
    assert 0.0 <= longest <= 100.0
    assert 0.0 <= total <= 100.0 + 1e-9
    assert longest <= total or total == 0.0


@given(
    st.lists(
        st.tuples(st.integers(0, 100), st.floats(0, 1000, allow_nan=False)),
        min_size=1,
        max_size=30,
    ),
    st.integers(min_value=1, max_value=10),
)
def test_moving_average_stays_within_bounds(series, window):
    smoothed = moving_average(series, window)
    lo = min(v for _t, v in series)
    hi = max(v for _t, v in series)
    assert all(lo - 1e-9 <= v <= hi + 1e-9 for _t, v in smoothed)
    assert len(smoothed) == len(series)


# ----------------------------------------------------------------------
# Zipf
# ----------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=2000), st.integers(min_value=0, max_value=2**31))
def test_zipf_samples_in_domain(n, seed):
    from repro.sim.rng import RngStream

    gen = ZipfGenerator(n)
    rng = RngStream(seed)
    for _ in range(10):
        assert 0 <= gen.sample(rng) < n
