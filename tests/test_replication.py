"""Per-shard replication groups: quorum commit, election, rehoming.

Covers the replicated-shard robustness layer: WAL-shipped group logs,
quorum-acknowledged 2PC, deterministic lease-based leader election, the
epoch-bumped migration handover, and the STAR-style remaster fast path for
destinations that already replicate the data.
"""

import pytest

from repro.cluster import Cluster
from repro.cluster.shard import ShardId
from repro.config import ClusterConfig
from repro.faults import Fault, FaultPlan, InvariantChecker
from repro.faults.plan import PHASES
from repro.migration import RemusMigration, WaitAndRemasterMigration
from repro.profiling import COUNTERS
from repro.sim import SeedSequence
from repro.workloads.client import run_transaction

TABLE = "counters"
NUM_KEYS = 90
NUM_SHARDS = 3


def build(num_nodes=4, n_followers=2, seed=0):
    COUNTERS.reset()
    cluster = Cluster(ClusterConfig(num_nodes=num_nodes, seed=seed))
    cluster.create_table(TABLE, num_shards=NUM_SHARDS, tuple_size=64)
    cluster.bulk_load(TABLE, [(k, {"n": 0}) for k in range(NUM_KEYS)])
    cluster.enable_replication(TABLE, n_followers=n_followers)
    return cluster


def increment_body(key):
    def body(session, txn):
        row = yield from session.read(txn, TABLE, key)
        yield from session.update(txn, TABLE, key, {"n": row["n"] + 1})

    return body


def run_clients(cluster, state, num_clients=4, think=0.002):
    node_ids = cluster.node_ids()

    def client(client_id):
        rng = cluster.sim.rng("repl-client-{}".format(client_id))
        session = cluster.session(node_ids[client_id % len(node_ids)])

        def loop():
            while state["running"]:
                key = rng.randint(0, NUM_KEYS - 1)
                ok, _err = yield from run_transaction(
                    session, increment_body(key), label="inc"
                )
                if ok:
                    state["committed"] += 1
                yield think

        return loop()

    for i in range(num_clients):
        cluster.spawn(client(i), name="repl-client-{}".format(i))


def committed_map(group, node_id):
    cluster = group.cluster
    return dict(group._committed_rows(cluster.nodes[node_id]))


def assert_group_converged(group):
    assert all(r.next_index == len(group.log) for r in group.live_replicas())
    want = committed_map(group, group.leader_node_id)
    for replica in group.live_replicas():
        assert committed_map(group, replica.node_id) == want, replica.node_id


def assert_no_orphaned_prepares(cluster):
    from repro.storage.clog import TxnStatus

    for node_id, node in cluster.nodes.items():
        prepared = [
            xid for xid, status in node.clog.statuses()
            if status is TxnStatus.PREPARED
        ]
        assert not prepared, (node_id, prepared)


# ----------------------------------------------------------------------
# Group replication basics
# ----------------------------------------------------------------------
def test_groups_replicate_committed_writes():
    cluster = build()
    state = {"running": True, "committed": 0}
    run_clients(cluster, state)
    cluster.run(until=1.0)
    state["running"] = False
    cluster.run(until=2.0)
    assert state["committed"] > 0
    assert COUNTERS.repl_ship_batches > 0
    for group in cluster.replication.sorted_groups():
        assert len(group.replicas) == 3
        assert group.quorum == 2
        assert group.epoch == 1
        assert len(group.log) > 0
        assert_group_converged(group)
    assert not cluster.sim.failed_processes


def test_replication_is_deterministic():
    def run_once():
        cluster = build(seed=3)
        state = {"running": True, "committed": 0}
        run_clients(cluster, state)
        cluster.run(until=0.8)
        state["running"] = False
        cluster.run(until=1.6)
        group = cluster.replication.group_for(ShardId(TABLE, 0))
        return (
            tuple(cluster.metrics.marks),
            state["committed"],
            tuple(e.sig for e in group.log),
        )

    assert run_once() == run_once()


# ----------------------------------------------------------------------
# Leader election
# ----------------------------------------------------------------------
def test_leader_crash_elects_lowest_live_replica():
    cluster = build()
    state = {"running": True, "committed": 0}
    run_clients(cluster, state)
    cluster.run(until=0.4)
    shard_id = ShardId(TABLE, 0)
    group = cluster.replication.group_for(shard_id)
    old_leader = group.leader_node_id
    expected = min(
        (r for r in group.replicas if r.node_id != old_leader),
        key=lambda r: r.replica_id,
    )
    group.crash_replica(old_leader)
    cluster.run(until=1.5)
    assert group.epoch == 2
    assert group.leader_node_id == expected.node_id
    assert cluster.shard_owner(shard_id) == expected.node_id
    assert COUNTERS.failover_elections == 1
    # The deposed leader heals as a follower and catches up.
    group.heal_replica(old_leader)
    cluster.run(until=2.5)
    state["running"] = False
    cluster.run(until=3.5)
    assert group.leader_node_id == expected.node_id
    assert_group_converged(group)
    assert_no_orphaned_prepares(cluster)
    assert not cluster.sim.failed_processes


def test_no_lost_updates_across_election():
    cluster = build(seed=5)
    state = {"running": True, "committed": 0}
    run_clients(cluster, state, num_clients=6)
    shard_id = ShardId(TABLE, 0)
    group = cluster.replication.group_for(shard_id)

    def crasher():
        yield 0.3
        group.crash_replica(group.leader_node_id)
        yield 1.0
        group.heal_replica("node-1")

    cluster.spawn(crasher(), name="crasher")
    cluster.run(until=2.0)
    state["running"] = False
    cluster.run(until=3.5)
    total = sum(row["n"] for row in cluster.dump_table(TABLE).values())
    assert total == state["committed"]
    checker = InvariantChecker(cluster)
    checker.check_once()
    checker.final_replication_check()
    assert checker.violations == []


# ----------------------------------------------------------------------
# Migration of a replicated shard
# ----------------------------------------------------------------------
def test_remus_rehomes_group_onto_nonmember_dest():
    cluster = build()
    state = {"running": True, "committed": 0}
    run_clients(cluster, state)
    cluster.run(until=0.3)
    shard_id = cluster.shards_on_node("node-1", table=TABLE)[0]
    group = cluster.replication.group_for(shard_id)
    members = {r.node_id for r in group.replicas}
    dest = min(n for n in cluster.node_ids() if n not in members)
    migration = RemusMigration(cluster, [shard_id], "node-1", dest)
    proc = cluster.spawn(migration.run(), name="migration")
    cluster.run(until=20.0)
    assert proc.finished
    proc.result()
    state["running"] = False
    cluster.run(until=cluster.sim.now + 1.5)
    # Epoch-bumped handover: the destination joined the group and leads it.
    assert cluster.shard_owner(shard_id) == dest
    assert group.leader_node_id == dest
    assert group.epoch == 2
    assert group.replica_on(dest) is not None
    assert migration.stats.bytes_copied > 0
    assert_group_converged(group)
    total = sum(row["n"] for row in cluster.dump_table(TABLE).values())
    assert total == state["committed"]
    assert not cluster.sim.failed_processes


def test_member_dest_takes_remaster_path_and_stays_consistent():
    """Regression: a Remus migration onto a node that already hosts a
    follower replica must NOT snapshot-copy/propagate into that heap (the
    copied stale rows would shadow newer replicated versions = lost
    updates). It remasters through the group feed instead."""
    cluster = build()
    state = {"running": True, "committed": 0}
    run_clients(cluster, state, num_clients=6)
    cluster.run(until=0.3)
    shard_id = cluster.shards_on_node("node-1", table=TABLE)[0]
    group = cluster.replication.group_for(shard_id)
    dest = min(r.node_id for r in group.replicas if r.node_id != "node-1")
    migration = RemusMigration(cluster, [shard_id], "node-1", dest)
    proc = cluster.spawn(migration.run(), name="migration")
    cluster.run(until=20.0)
    assert proc.finished
    proc.result()
    state["running"] = False
    cluster.run(until=cluster.sim.now + 1.5)
    assert migration.stats.bytes_copied == 0
    assert migration.stats.tuples_copied == 0
    assert cluster.shard_owner(shard_id) == dest
    assert group.leader_node_id == dest
    total = sum(row["n"] for row in cluster.dump_table(TABLE).values())
    assert total == state["committed"]
    assert_group_converged(group)
    assert not cluster.sim.failed_processes


def test_wait_and_remaster_prepositioned_is_near_free():
    """STAR-style acceptance: wait-and-remaster onto an in-sync follower
    moves strictly less data than a full Remus copy onto a fresh node."""
    bytes_moved = {}
    for approach, cls, member_dest in (
        ("remus", RemusMigration, False),
        ("remaster", WaitAndRemasterMigration, True),
    ):
        cluster = build()
        state = {"running": True, "committed": 0}
        run_clients(cluster, state)
        cluster.run(until=0.3)
        shard_id = cluster.shards_on_node("node-1", table=TABLE)[0]
        group = cluster.replication.group_for(shard_id)
        members = {r.node_id for r in group.replicas}
        if member_dest:
            dest = min(n for n in members if n != group.leader_node_id)
        else:
            dest = min(n for n in cluster.node_ids() if n not in members)
        migration = cls(cluster, [shard_id], "node-1", dest)
        proc = cluster.spawn(migration.run(), name="migration")
        cluster.run(until=20.0)
        assert proc.finished
        proc.result()
        state["running"] = False
        cluster.run(until=cluster.sim.now + 1.0)
        assert cluster.shard_owner(shard_id) == dest
        bytes_moved[approach] = migration.stats.bytes_copied
        assert not cluster.sim.failed_processes
    assert bytes_moved["remaster"] == 0
    assert bytes_moved["remaster"] < bytes_moved["remus"]


# ----------------------------------------------------------------------
# Fault-plan grammar and random replicated plans
# ----------------------------------------------------------------------
def test_fault_plan_grammar_replica_crashes():
    plan = FaultPlan.parse(
        "crash_leader:counters:0@0.5+1.0; "
        "crash_follower:counters:2@1.0+0.5; "
        "crash_leader:counters:1:snapshot_copy@0.2+2.0"
    )
    kinds = sorted(f.kind for f in plan.faults)
    assert kinds == ["crash_follower", "crash_leader", "crash_leader"]
    phased = [f for f in plan.faults if f.phase is not None]
    assert len(phased) == 1 and phased[0].shard == ("counters", 1)
    assert all(f.shard is not None for f in plan.faults)
    assert "crash_leader" in plan.describe()
    with pytest.raises(ValueError):
        FaultPlan.parse("crash_leader:counters@0.5")
    with pytest.raises(ValueError):
        FaultPlan.parse("crash_leader:counters:x@0.5")
    with pytest.raises(ValueError):
        FaultPlan.parse("crash_leader:counters:0:bogus_phase@0.5")


def test_random_replicated_plan_mix_and_determinism():
    nodes = ["node-1", "node-2", "node-3", "node-4"]
    shards = [("counters", i) for i in range(3)]

    def draw(seed):
        plan = FaultPlan.random_replicated(
            SeedSequence(seed).stream("fault-plan"), nodes, shards, 3.0
        )
        return plan

    plan = draw(0)
    assert {"crash_leader", "crash_follower", "crash_migration"} <= plan.kinds()
    for fault in plan.faults:
        if fault.kind in ("crash_leader", "crash_follower"):
            assert fault.shard in shards
            assert fault.duration > 0
        if fault.kind == "crash_migration":
            assert fault.phase in PHASES
    assert draw(1).describe() == draw(1).describe()
    assert [f.describe() for f in draw(2).faults] != [
        f.describe() for f in draw(3).faults
    ]


def test_crash_node_on_downed_node_is_idempotent_noop():
    """Satellite: re-crashing an already-failed node must be a logged no-op
    instead of restarting its failover clock or double-firing recovery."""
    from repro.faults import Nemesis

    cluster = build()
    plan = FaultPlan(
        [
            Fault("crash_node", at=0.2, node="node-3", failover=0.5),
            Fault("crash_node", at=0.3, node="node-3", failover=0.5),
        ]
    )
    nemesis = Nemesis(cluster, plan)
    cluster.spawn(nemesis.run(), name="nemesis")
    cluster.run(until=2.0)
    notes = [d for _t, d in nemesis.timeline]
    assert "fault:crash_node:node-3" in notes
    assert "fault:crash_node:node-3:noop (already down)" in notes
    # Exactly one failover cycle: the second crash did not re-fail the node.
    fail_marks = [
        name for _t, name in cluster.metrics.marks
        if name.startswith("node_failed")
    ]
    assert len(fail_marks) == 1
    assert not cluster.sim.failed_processes


# ----------------------------------------------------------------------
# Yield-point races (simrace regressions)
# ----------------------------------------------------------------------
def test_monitor_revalidates_leader_after_probe_yield():
    """Regression (SIM101): the lease monitor checks leader liveness, then
    suspends on the probe RPC. If the leader heals while the probe is in
    flight, acting on the pre-probe check would depose a healthy leader and
    burn an epoch. The monitor must re-validate after the yield."""
    import math

    cluster = build()
    cluster.run(until=0.2)
    shard_id = ShardId(TABLE, 0)
    group = cluster.replication.group_for(shard_id)
    old_leader = group.leader_node_id
    interval = cluster.config.repl_lease_interval
    needed = math.ceil(cluster.config.repl_lease_timeout / interval)

    real_send = cluster.rpc_send
    probes = {"count": 0}

    def healing_send(src, dst, size=0, persistent=False):
        # Heal the leader at the exact probe whose accrued silence crosses
        # the lease timeout: the monitor's pre-probe check already saw the
        # leader down, so only a post-probe re-validation can notice.
        if dst == old_leader and size == 32:
            probes["count"] += 1
            if probes["count"] == needed:
                group.heal_replica(old_leader)
        yield from real_send(src, dst, size=size, persistent=persistent)

    cluster.rpc_send = healing_send
    group.crash_replica(old_leader)
    cluster.run(until=2.0)
    cluster.rpc_send = real_send

    assert probes["count"] >= needed
    assert group.epoch == 1, "healed leader was deposed on a stale check"
    assert group.leader_node_id == old_leader
    assert COUNTERS.failover_elections == 0
    assert_group_converged(group)
    assert not cluster.sim.failed_processes


def test_feeder_never_rewinds_cursor_overtaken_during_apply():
    """Regression (SIM101, loop-carried): the feeder captures a log entry,
    then suspends inside the apply. A catch-up (election/rehome) advancing
    ``replica.next_index`` during that suspension must not be overwritten
    by the feeder's stale ``entry.seq + 1`` — the rewind would re-ship and
    re-apply entries the catch-up already applied."""
    cluster = build()
    cluster.run(until=0.2)
    group = cluster.replication.group_for(ShardId(TABLE, 0))
    follower = group.live_followers()[0]
    base = len(group.log)

    applied = []
    real_apply = group._apply_entry

    def racing_apply(replica, entry):
        applied.append((replica.node_id, entry.seq))
        if replica is follower and entry.seq == base:
            # Simulate an election catch-up applying both entries directly
            # while this feeder's ship/apply is still in flight.
            follower.next_index = base + 2
            follower.applied_sig = group.log[base + 1].sig
        yield from real_apply(replica, entry)

    group._apply_entry = racing_apply
    # Two abort entries: their apply is pure bookkeeping (idempotent), so
    # the injected race is observable purely through the cursor.
    group._append_entry("abort", group.leader_node_id, 7001, None, None)
    group._append_entry("abort", group.leader_node_id, 7002, None, None)
    cluster.run(until=1.0)
    group._apply_entry = real_apply

    follower_applies = [seq for node, seq in applied if node == follower.node_id]
    assert follower_applies == [base], follower_applies
    assert follower.next_index == base + 2
    assert_group_converged(group)
    assert not cluster.sim.failed_processes
