"""Unit tests for the simrace analyzer: yield-aware CFGs and SIM101–SIM104.

The fixture corpus (tests/test_simrace_corpus.py) pins end-to-end verdicts
on realistic modules; this file exercises the machinery at close range —
CFG shapes around try/finally, loops and yield-from, each rule's firing
condition and each calibrated exemption, and the engine integration
(scoping, suppression, CLI formats).
"""

import ast
import textwrap

from repro.analysis import analyze_source, default_config
from repro.analysis.cfg import FINALLY_GATE, RAISE_EXIT, build_cfg
from repro.cli import main as cli_main

PROTOCOL_PATH = "src/repro/txn/fixture.py"


def lint(source, path=PROTOCOL_PATH, config=None):
    return analyze_source(
        textwrap.dedent(source), path=path, config=config or default_config()
    )


def codes(source, **kwargs):
    return [violation.rule for violation in lint(source, **kwargs)]


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------
def make_cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


def stmt_node(cfg, needle):
    """The unique stmt node whose source line contains ``needle``."""
    matches = [
        node
        for node in cfg.stmt_nodes()
        if needle in ast.unparse(node.stmt).split("\n")[0]
    ]
    assert len(matches) == 1, "expected one node matching {!r}: {}".format(needle, matches)
    return matches[0]


def reachable(node):
    """Every CFG node reachable from ``node`` via normal or exception flow."""
    seen = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if current.index in seen:
            continue
        seen.add(current.index)
        stack.extend(current.succ)
        stack.extend(current.exc_succ)
        yield current


def test_cfg_yield_is_a_preemption_point():
    cfg = make_cfg(
        """
        def f(sim):
            yield sim.timeout(1)
        """
    )
    node = stmt_node(cfg, "yield")
    assert node.yields
    assert node.exc_succ == [cfg.raise_exit]


def test_cfg_yield_from_is_a_preemption_point():
    cfg = make_cfg(
        """
        def f(self):
            yield from self.helper()
        """
    )
    assert stmt_node(cfg, "yield from").yields


def test_cfg_try_finally_routes_interrupt_through_finally():
    cfg = make_cfg(
        """
        def f(sim, res):
            try:
                yield sim.timeout(1)
            finally:
                res.release()
        """
    )
    yield_node = stmt_node(cfg, "yield")
    assert len(yield_node.exc_succ) == 1
    gate = yield_node.exc_succ[0]
    assert gate.kind == FINALLY_GATE
    release = stmt_node(cfg, "res.release")
    assert release in gate.succ
    # The finally body continues to BOTH outcomes the gate joined: normal
    # fall-through (exit) and the re-raised Interrupt (raise_exit).
    assert cfg.exit in release.succ
    assert cfg.raise_exit in release.succ


def test_cfg_single_fault_model_in_cleanup():
    cfg = make_cfg(
        """
        def f(sim):
            try:
                yield sim.timeout(1)
            except Interrupt:
                yield sim.timeout(2)
        """
    )
    cleanup_yield = stmt_node(cfg, "timeout(2)")
    assert cleanup_yield.in_cleanup
    assert cleanup_yield.exc_succ == []  # the one fault already fired


def test_cfg_loop_carried_yield_has_back_edge():
    cfg = make_cfg(
        """
        def f(self, sim):
            while self.running:
                yield sim.timeout(1)
        """
    )
    header = stmt_node(cfg, "while")
    body_yield = stmt_node(cfg, "yield")
    assert header in body_yield.succ  # back edge
    assert body_yield.exc_succ == [cfg.raise_exit]


def test_cfg_return_chains_through_nested_finally_gates():
    cfg = make_cfg(
        """
        def f(sim, res):
            try:
                try:
                    yield sim.timeout(1)
                    return
                finally:
                    res.inner()
            finally:
                res.outer()
        """
    )
    return_node = stmt_node(cfg, "return")
    assert [succ.kind for succ in return_node.succ] == [FINALLY_GATE]
    seen = list(reachable(return_node))
    assert stmt_node(cfg, "res.inner") in seen
    assert stmt_node(cfg, "res.outer") in seen
    assert cfg.exit in seen


def test_cfg_unused_finally_grows_no_phantom_exits():
    # Nothing in the try can escape, so the finally body's only
    # continuation is plain fall-through.
    cfg = make_cfg(
        """
        def f(res):
            try:
                res.step()
            finally:
                res.cleanup()
        """
    )
    cleanup = stmt_node(cfg, "res.cleanup")
    assert cleanup.succ == [cfg.exit]
    assert all(node.kind != RAISE_EXIT for node in cleanup.succ)


# ----------------------------------------------------------------------
# SIM101 — stale read across yield
# ----------------------------------------------------------------------
SIM101_PREAMBLE = """
class Mover:
    def rehome(self, node_id):
        self.owner = node_id

"""


def test_sim101_fires_on_capture_yield_use():
    assert codes(
        SIM101_PREAMBLE
        + """
    def migrate(self, sim, shard):
        owner = self.owner
        yield sim.timeout(1)
        self.transfer(owner, shard)
"""
    ) == ["SIM101"]


def test_sim101_message_names_variable_and_source():
    (violation,) = lint(
        SIM101_PREAMBLE
        + """
    def migrate(self, sim, shard):
        owner = self.owner
        yield sim.timeout(1)
        self.transfer(owner, shard)
"""
    )
    assert "'owner'" in violation.message
    assert "self.owner" in violation.message


def test_sim101_silent_without_yield_between():
    assert (
        codes(
            SIM101_PREAMBLE
            + """
    def migrate(self, sim, shard):
        owner = self.owner
        self.transfer(owner, shard)
        yield sim.timeout(1)
"""
        )
        == []
    )


def test_sim101_revalidation_kills_the_path():
    assert (
        codes(
            SIM101_PREAMBLE
            + """
    def migrate(self, sim, shard):
        owner = self.owner
        yield sim.timeout(1)
        if owner != self.owner:
            return
        self.transfer(owner, shard)
"""
        )
        == []
    )


def test_sim101_rebind_after_yield_is_a_fresh_read():
    assert (
        codes(
            SIM101_PREAMBLE
            + """
    def run(self, sim):
        budget = self.owner
        while self.running:
            yield sim.timeout(1)
            budget = self.owner
            self.ship(budget)
"""
        )
        == []
    )


def test_sim101_loop_carried_use_fires():
    assert codes(
        SIM101_PREAMBLE
        + """
    def run(self, sim):
        budget = self.owner
        while self.running:
            yield sim.timeout(1)
            self.ship(budget)
"""
    ) == ["SIM101"]


def test_sim101_return_use_is_exempt():
    assert (
        codes(
            SIM101_PREAMBLE
            + """
    def migrate(self, sim):
        owner = self.owner
        yield sim.timeout(1)
        return owner
"""
        )
        == []
    )


def test_sim101_restore_idiom_is_exempt():
    assert (
        codes(
            SIM101_PREAMBLE
            + """
    def suspend(self, sim):
        owner = self.owner
        yield sim.timeout(1)
        self.owner = owner
"""
        )
        == []
    )


def test_sim101_use_at_the_yielding_statement_is_pre_suspension():
    # ``yield from helper(entry)`` evaluates its arguments before
    # suspending — that use is not stale.
    assert (
        codes(
            SIM101_PREAMBLE
            + """
    def pump(self):
        entry = self.owner
        yield from self.apply(entry)
"""
        )
        == []
    )


def test_sim101_augassign_only_attrs_are_counters():
    assert (
        codes(
            """
class Alloc:
    def bump(self):
        self.seq += 1

    def take(self, sim):
        seq = self.seq
        yield sim.timeout(1)
        self.grant(seq)
"""
        )
        == []
    )


def test_sim101_single_writer_cursor_is_stable():
    # The only plain writer of ``cursor`` is the reading function itself:
    # a pump cursor no concurrent process moves.
    assert (
        codes(
            """
class Pump:
    def run(self, sim):
        cursor = self.cursor
        yield sim.timeout(1)
        self.ship(cursor)
        self.cursor = cursor + 1
"""
        )
        == []
    )


def test_sim101_stable_attrs_config_escape_hatch():
    config = default_config()
    config.simrace_stable_attrs = frozenset({"owner"})
    assert (
        codes(
            SIM101_PREAMBLE
            + """
    def migrate(self, sim, shard):
        owner = self.owner
        yield sim.timeout(1)
        self.transfer(owner, shard)
""",
            config=config,
        )
        == []
    )


# ----------------------------------------------------------------------
# SIM102 — leaked acquire
# ----------------------------------------------------------------------
def test_sim102_interrupt_path_leak_fires():
    (violation,) = lint(
        """
class Replayer:
    def replay(self, sim, batch):
        slot = self._slots.acquire()
        yield slot
        yield from self.apply(batch)
        self._slots.release()
"""
    )
    assert violation.rule == "SIM102"
    assert "Interrupt/exception path" in violation.message
    assert "normal path" not in violation.message


def test_sim102_early_return_leak_fires():
    (violation,) = lint(
        """
class Replayer:
    def replay(self, sim, batch):
        slot = self._slots.acquire()
        yield slot
        if not batch:
            return
        self._slots.release()
"""
    )
    assert violation.rule == "SIM102"
    assert "normal path" in violation.message


def test_sim102_finally_with_holding_flag_is_clean():
    assert (
        codes(
            """
class Replayer:
    def replay(self, sim, batch):
        slot = None
        holding = False
        try:
            slot = self._slots.acquire()
            yield slot
            holding = True
            yield from self.apply(batch)
        finally:
            if holding:
                self._slots.release()
            else:
                self._slots.cancel_acquire(slot)
"""
        )
        == []
    )


def test_sim102_except_without_finally_still_leaks():
    # Type-blind over-approximation: an exception the handler does not
    # match unwinds straight past the cleanup. Use a finally.
    assert "SIM102" in codes(
        """
class Replayer:
    def replay(self, sim, batch):
        slot = self._slots.acquire()
        try:
            yield slot
        except Interrupt:
            self._slots.cancel_acquire(slot)
            raise
        self._slots.release()
"""
    )


def test_sim102_helper_release_is_seen_interprocedurally():
    assert (
        codes(
            """
class Replayer:
    def replay(self, sim, batch):
        slot = self._slots.acquire()
        try:
            yield slot
            yield from self.apply(batch)
        finally:
            self._drop(slot)

    def _drop(self, slot):
        if slot.triggered:
            self._slots.release()
        else:
            self._slots.cancel_acquire(slot)
"""
        )
        == []
    )


def test_sim102_returned_handle_escapes_tracking():
    assert (
        codes(
            """
class Replayer:
    def begin(self):
        slot = self._slots.acquire()
        return slot
"""
        )
        == []
    )


def test_sim102_handle_stored_in_container_escapes_tracking():
    assert (
        codes(
            """
class Replayer:
    def enqueue(self, sim):
        slot = self._slots.acquire()
        self.pending.append(slot)
        yield sim.timeout(1)
"""
        )
        == []
    )


# ----------------------------------------------------------------------
# SIM103 — unfenced epoch / stale route
# ----------------------------------------------------------------------
def test_sim103_unfenced_epoch_fires():
    (violation,) = lint(
        """
class Preparer:
    def prepare(self, dest, payload):
        epoch = self.epoch
        self.note(epoch)
        yield from self.replicate(payload)
        yield self.cluster.rpc_send(dest, self.node_id, payload)
"""
    )
    assert violation.rule == "SIM103"
    assert "does not carry the epoch fence" in violation.message


def test_sim103_carried_epoch_is_clean():
    assert (
        codes(
            """
class Preparer:
    def prepare(self, dest, payload):
        epoch = self.epoch
        yield from self.replicate(payload)
        yield self.cluster.rpc_send(dest, self.node_id, payload, epoch=epoch)
"""
        )
        == []
    )


def test_sim103_epoch_reread_kills_the_path():
    assert (
        codes(
            """
class Preparer:
    def prepare(self, dest, payload):
        epoch = self.epoch
        yield from self.replicate(payload)
        if epoch != self.epoch:
            return
        yield self.cluster.rpc_send(dest, self.node_id, payload)
"""
        )
        == []
    )


def test_sim103_stale_route_fires():
    (violation,) = lint(
        """
class Forwarder:
    def forward(self, payload):
        leader = self.leader_node_id
        yield from self.flush()
        yield self.cluster.rpc_send(leader, self.node_id, payload)
"""
    )
    assert violation.rule == "SIM103"
    assert "may be stale" in violation.message


def test_sim103_route_resolved_after_yield_is_clean():
    assert (
        codes(
            """
class Forwarder:
    def forward(self, payload):
        yield from self.flush()
        leader = self.leader_node_id
        yield self.cluster.rpc_send(leader, self.node_id, payload)
"""
        )
        == []
    )


# ----------------------------------------------------------------------
# SIM104 — unguarded event settle
# ----------------------------------------------------------------------
def test_sim104_two_unguarded_settlers_both_fire():
    violations = lint(
        """
class Rendezvous:
    def __init__(self, sim):
        self.done = sim.event()

    def complete(self, value):
        self.done.succeed(value)

    def abort(self, error):
        self.done.fail(error)
"""
    )
    assert [violation.rule for violation in violations] == ["SIM104", "SIM104"]
    assert "triggered twice" in violations[0].message


def test_sim104_triggered_guard_and_ownership_transfer_are_clean():
    assert (
        codes(
            """
class Rendezvous:
    def __init__(self, sim):
        self.done = sim.event()

    def complete(self, value):
        if not self.done.triggered:
            self.done.succeed(value)

    def abort(self, error):
        armed, self.done = self.done, None
        if armed is not None:
            armed.fail(error)
"""
        )
        == []
    )


def test_sim104_single_settler_is_clean():
    assert (
        codes(
            """
class Rendezvous:
    def __init__(self, sim):
        self.done = sim.event()

    def complete(self, value):
        self.done.succeed(value)
"""
        )
        == []
    )


def test_sim104_guard_inside_loop_body_is_found():
    assert (
        codes(
            """
class Rendezvous:
    def __init__(self, sim):
        self.done = sim.event()

    def complete(self, waiters):
        for _ in waiters:
            if not self.done.triggered:
                self.done.succeed(None)

    def abort(self, error):
        if not self.done.triggered:
            self.done.fail(error)
"""
        )
        == []
    )


# ----------------------------------------------------------------------
# Engine integration: scoping and suppression
# ----------------------------------------------------------------------
SIM101_BAD = (
    SIM101_PREAMBLE
    + """
    def migrate(self, sim, shard):
        owner = self.owner
        yield sim.timeout(1)
        self.transfer(owner, shard)
"""
)


def test_simrace_rules_scoped_to_protocol_paths():
    assert codes(SIM101_BAD, path="src/repro/migration/fixture.py") == ["SIM101"]
    assert codes(SIM101_BAD, path="src/repro/sim/kernel.py") == []
    assert codes(SIM101_BAD, path="src/repro/analysis/fixture.py") == []


def test_simrace_suppression_comment():
    suppressed = SIM101_BAD.replace(
        "self.transfer(owner, shard)",
        "self.transfer(owner, shard)  # simlint: ignore[SIM101]",
    )
    assert codes(suppressed) == []


# ----------------------------------------------------------------------
# CLI: --format github and --stats
# ----------------------------------------------------------------------
def run_cli(*argv):
    return cli_main(list(argv))


def test_cli_github_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    assert run_cli("lint", "--format", "github", str(bad)) == 1
    out = capsys.readouterr().out
    assert "::error file=" in out
    assert "title=simlint SIM002" in out
    assert "\n\n" not in out.strip()  # one annotation line per finding


def test_cli_stats_text(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nimport random as r\n")
    assert run_cli("lint", "--stats", str(bad)) == 1
    out = capsys.readouterr().out
    assert "SIM002     2" in out
    assert "SIM101     0" in out  # zero-filled over the whole catalogue


def test_cli_stats_json(tmp_path, capsys):
    import json

    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    assert run_cli("lint", "--format", "json", "--stats", str(bad)) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["stats"]["SIM002"] == 1
    assert document["stats"]["SIM104"] == 0  # zero-filled over the catalogue
